//! # DeepSeq — deep sequential circuit learning, reproduced in Rust
//!
//! A full reproduction of *"DeepSeq: Deep Sequential Circuit Learning"*
//! (Khan, Shi, Li, Xu — DATE 2024): a graph neural network that learns
//! general representations of sequential netlists, pre-trained to predict
//! per-gate logic and transition probabilities and fine-tuned for dynamic
//! power estimation and reliability analysis.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`netlist`] | `deepseq-netlist` | sequential AIGs, generic netlists, `.bench` I/O, lowering |
//! | [`sim`] | `deepseq-sim` | 64-lane bit-parallel simulation, workloads, fault injection |
//! | [`nn`] | `deepseq-nn` | matrices, blocked GEMM kernels, autograd tape, layers, ADAM |
//! | [`core`] | `deepseq-core` | **the DeepSeq model**, propagation schemes, training |
//! | [`data`] | `deepseq-data` | benchmark families, the six Table IV designs |
//! | [`power`] | `deepseq-power` | power pipeline: probabilistic + Grannite baselines, SAIF |
//! | [`reliability`] | `deepseq-reliability` | analytical baseline, reliability fine-tuning |
//! | [`serve`] | `deepseq-serve` | batched tape-free inference engine, binary checkpoints, embedding cache |
//!
//! # Quickstart
//!
//! ```
//! use deepseq::core::{DeepSeq, DeepSeqConfig, TrainOptions, TrainSample};
//! use deepseq::core::train::{evaluate, train};
//! use deepseq::netlist::SeqAig;
//! use deepseq::sim::{SimOptions, Workload};
//!
//! // Build a sequential circuit.
//! let mut aig = SeqAig::new("quickstart");
//! let a = aig.add_pi("a");
//! let q = aig.add_ff("q", false);
//! let g = aig.add_and(a, q);
//! let n = aig.add_not(g);
//! aig.connect_ff(q, n)?;
//! aig.set_output(g, "y");
//!
//! // Simulate a workload, train, predict.
//! let config = DeepSeqConfig { hidden_dim: 8, iterations: 2, ..Default::default() };
//! let mut model = DeepSeq::new(config);
//! let sample = TrainSample::generate(&aig, &Workload::uniform(1, 0.5),
//!                                    config.hidden_dim, &SimOptions::default(), 0);
//! train(&mut model, std::slice::from_ref(&sample),
//!       &TrainOptions { epochs: 2, ..Default::default() });
//! let metrics = evaluate(&model, std::slice::from_ref(&sample));
//! assert!(metrics.pe_lg <= 1.0);
//! # Ok::<(), deepseq::netlist::NetlistError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harnesses regenerating every table of the paper.

#![warn(missing_docs)]

pub use deepseq_core as core;
pub use deepseq_data as data;
pub use deepseq_netlist as netlist;
pub use deepseq_nn as nn;
pub use deepseq_power as power;
pub use deepseq_reliability as reliability;
pub use deepseq_serve as serve;
pub use deepseq_sim as sim;
