//! Cross-crate integration tests: the full train → predict → downstream
//! pipelines at miniature scale.

use deepseq::core::train::{evaluate, train, TrainOptions};
use deepseq::core::{Aggregator, DeepSeq, DeepSeqConfig, PropagationScheme, TrainSample};
use deepseq::data::dataset::Corpus;
use deepseq::data::random::{random_circuit, CircuitSpec};
use deepseq::netlist::lower_to_aig;
use deepseq::power::{run_pipeline, PipelineConfig};
use deepseq::reliability::{analyze, predict_reliability, reliability_sample, AnalyticalOptions};
use deepseq::sim::{inject_faults, FaultOptions, SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_sim() -> SimOptions {
    SimOptions {
        cycles: 96,
        warmup: 8,
        seed: 0,
    }
}

fn tiny_config() -> DeepSeqConfig {
    DeepSeqConfig {
        hidden_dim: 12,
        iterations: 2,
        ..DeepSeqConfig::default()
    }
}

fn corpus_samples(n: usize, hidden: usize) -> Vec<TrainSample> {
    let corpus = Corpus::generate(n, 42);
    let mut rng = StdRng::seed_from_u64(1);
    corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            TrainSample::generate(aig, &w, hidden, &small_sim(), i as u64)
        })
        .collect()
}

#[test]
fn pretraining_improves_both_tasks() {
    let samples = corpus_samples(8, 12);
    let mut model = DeepSeq::new(tiny_config());
    let before = evaluate(&model, &samples);
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 10,
            lr: 3e-3,
            ..TrainOptions::default()
        },
    );
    let after = evaluate(&model, &samples);
    assert!(after.pe_tr < before.pe_tr, "{before:?} -> {after:?}");
    assert!(after.pe_lg < before.pe_lg, "{before:?} -> {after:?}");
}

#[test]
fn model_generalizes_to_unseen_circuits() {
    // Train on 10 circuits, evaluate on 4 held-out ones: the trained model
    // must beat an untrained one out of distribution.
    let all = corpus_samples(14, 12);
    let (train_set, test_set) = all.split_at(10);
    let mut model = DeepSeq::new(tiny_config());
    let untrained = evaluate(&model, test_set);
    train(
        &mut model,
        train_set,
        &TrainOptions {
            epochs: 12,
            lr: 3e-3,
            ..TrainOptions::default()
        },
    );
    let trained = evaluate(&model, test_set);
    assert!(
        trained.pe_lg < untrained.pe_lg,
        "unseen LG error should improve: {untrained:?} -> {trained:?}"
    );
}

#[test]
fn checkpoint_roundtrip_through_training() {
    let samples = corpus_samples(4, 12);
    let mut model = DeepSeq::new(tiny_config());
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 3,
            ..TrainOptions::default()
        },
    );
    let text = model.save_to_string();
    let restored = DeepSeq::from_checkpoint(&text).expect("roundtrip");
    let m1 = evaluate(&model, &samples);
    let m2 = evaluate(&restored, &samples);
    assert!((m1.pe_tr - m2.pe_tr).abs() < 1e-9);
    assert!((m1.pe_lg - m2.pe_lg).abs() < 1e-9);
}

#[test]
fn power_pipeline_orders_methods_on_toy_design() {
    // On a small design with a trained model, DeepSeq should land closer to
    // GT than wildly wrong estimates; at minimum the pipeline must be
    // internally consistent (GT > 0, errors finite).
    use deepseq::netlist::netlist::{GateKind, Netlist};
    let mut nl = Netlist::new("toy");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let x = nl.add_named_gate(GateKind::Xor, vec![a, b], "x");
    let q = nl.add_dff("q", false);
    let m = nl.add_named_gate(GateKind::Mux, vec![x, q, a], "m");
    nl.connect_dff(q, m).unwrap();
    nl.set_output(m, "y");

    let lowered = lower_to_aig(&nl).unwrap();
    let w = Workload::uniform(2, 0.5);
    // Fine-tune directly on this design + workload.
    let sample = TrainSample::generate(&lowered.aig, &w, 12, &small_sim(), 0);
    let mut model = DeepSeq::new(tiny_config());
    train(
        &mut model,
        std::slice::from_ref(&sample),
        &TrainOptions {
            epochs: 200,
            lr: 5e-3,
            ..TrainOptions::default()
        },
    );
    let result = run_pipeline(
        &nl,
        &w,
        None,
        Some(&model),
        &PipelineConfig {
            sim: small_sim(),
            ..PipelineConfig::default()
        },
    );
    assert!(result.gt_mw > 0.0);
    let d = result.deepseq.expect("deepseq supplied");
    assert!(d.error_pct.is_finite());
    assert!(result.probabilistic.error_pct.is_finite());
    // The fine-tuned model should estimate power within 50% on its own
    // training workload.
    assert!(d.error_pct < 50.0, "deepseq error {:.2}%", d.error_pct);
}

#[test]
fn reliability_pipeline_is_consistent() {
    let mut rng = StdRng::seed_from_u64(3);
    let aig = random_circuit(
        "r",
        &CircuitSpec {
            num_pis: 6,
            num_ffs: 6,
            num_gates: 80,
            ..CircuitSpec::default()
        },
        &mut rng,
    );
    let w = Workload::uniform(6, 0.5);
    let fault_opts = FaultOptions {
        error_rate: 0.001,
        patterns: 256,
        cycles_per_pattern: 50,
        seed: 5,
    };
    let gt = inject_faults(&aig, &w, &fault_opts);
    let analytical = analyze(
        &aig,
        &w,
        &AnalyticalOptions {
            error_rate: 0.001,
            ..AnalyticalOptions::default()
        },
    );
    // Both estimates must land in a sane band around the GT.
    assert!(gt.output_reliability > 0.8);
    assert!((analytical.output_reliability - gt.output_reliability).abs() < 0.2);

    // Fine-tuned model beats the untrained one on reliability error.
    let sample = reliability_sample(&aig, &w, &fault_opts, 12, 0);
    let mut model = DeepSeq::new(tiny_config());
    let before = predict_reliability(&model, &aig, &w, 0);
    train(
        &mut model,
        std::slice::from_ref(&sample),
        &TrainOptions {
            epochs: 20,
            lr: 5e-3,
            ..TrainOptions::default()
        },
    );
    let after = predict_reliability(&model, &aig, &w, 0);
    let err_before = (before.output_reliability - gt.output_reliability).abs();
    let err_after = (after.output_reliability - gt.output_reliability).abs();
    assert!(err_after < err_before, "{err_before} -> {err_after}");
}

#[test]
fn all_schemes_and_aggregators_train_on_real_corpus() {
    let samples = corpus_samples(3, 12);
    for scheme in [
        PropagationScheme::DagConv,
        PropagationScheme::DagRec,
        PropagationScheme::Custom,
    ] {
        for aggregator in [
            Aggregator::ConvSum,
            Aggregator::Attention,
            Aggregator::DualAttention,
        ] {
            let mut config = tiny_config();
            config.scheme = scheme;
            config.aggregator = aggregator;
            let mut model = DeepSeq::new(config);
            let history = train(
                &mut model,
                &samples,
                &TrainOptions {
                    epochs: 2,
                    ..TrainOptions::default()
                },
            );
            assert_eq!(history.len(), 2);
            assert!(history.iter().all(|e| e.loss.is_finite()));
        }
    }
}

#[test]
fn six_designs_flow_through_simulation() {
    // Every Table IV design must lower and simulate cleanly.
    for netlist in deepseq::data::designs::all_designs() {
        let lowered = lower_to_aig(&netlist).expect("valid design");
        let w = Workload::uniform(lowered.aig.num_pis(), 0.4);
        let r = deepseq::sim::simulate(
            &lowered.aig,
            &w,
            &SimOptions {
                cycles: 32,
                warmup: 4,
                seed: 0,
            },
        );
        assert!(
            r.probs.check_consistency(0.2).is_ok(),
            "{} inconsistent",
            netlist.name()
        );
    }
}
