//! Reliability analysis — downstream task 2 (paper Section V-B).
//!
//! Injects transient faults into the `rtcclock` design at the paper's
//! 0.05 % error rate, compares Monte-Carlo ground truth against the
//! analytical baseline, then fine-tunes a DeepSeq model with
//! error-probability supervision and compares its estimate too.
//!
//! Run: `cargo run --release --example reliability_analysis`

use deepseq::core::train::{train, TrainOptions};
use deepseq::core::{DeepSeq, DeepSeqConfig};
use deepseq::data::dataset::Corpus;
use deepseq::data::designs::rtcclock;
use deepseq::netlist::lower_to_aig;
use deepseq::reliability::{analyze, predict_reliability, reliability_sample, AnalyticalOptions};
use deepseq::sim::{inject_faults, FaultOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hidden = 16;
    let fault_opts = FaultOptions {
        error_rate: 0.0005, // the paper's 0.05 %
        patterns: 512,
        cycles_per_pattern: 100,
        seed: 3,
    };

    // Fine-tune a model on a small corpus with fault labels (Section V-B1).
    println!("fine-tuning DeepSeq with error-probability supervision...");
    let corpus = Corpus::generate(16, 5);
    let mut rng = StdRng::seed_from_u64(2);
    let samples: Vec<_> = corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            reliability_sample(aig, &w, &fault_opts, hidden, i as u64)
        })
        .collect();
    let config = DeepSeqConfig {
        hidden_dim: hidden,
        iterations: 3,
        ..DeepSeqConfig::default()
    };
    let mut model = DeepSeq::new(config);
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 12,
            lr: 2e-3,
            ..TrainOptions::default()
        },
    );

    // Evaluate on the large unseen design.
    let netlist = rtcclock();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    let workload = Workload::random(netlist.inputs().len(), &mut rng);
    println!(
        "evaluating on {} ({} AIG nodes)...",
        netlist.name(),
        lowered.aig.len()
    );

    let gt = inject_faults(&lowered.aig, &workload, &fault_opts);
    let analytical = analyze(
        &lowered.aig,
        &workload,
        &AnalyticalOptions {
            error_rate: fault_opts.error_rate,
            ..AnalyticalOptions::default()
        },
    );
    let prediction = predict_reliability(&model, &lowered.aig, &workload, 0);

    println!("\n=== circuit reliability of {} ===", netlist.name());
    println!("Monte-Carlo GT: {:.4}", gt.output_reliability);
    println!(
        "analytical    : {:.4}  ({:.2}% error)",
        analytical.output_reliability,
        pct(analytical.output_reliability, gt.output_reliability)
    );
    println!(
        "deepseq       : {:.4}  ({:.2}% error)",
        prediction.output_reliability,
        pct(prediction.output_reliability, gt.output_reliability)
    );

    // Show a few per-node error probabilities.
    println!("\nnode  GT e01   pred e01");
    for v in (0..lowered.aig.len()).step_by(lowered.aig.len() / 5) {
        println!("n{v:<4} {:.4}   {:.4}", gt.e01[v], prediction.e01[v]);
    }
}

fn pct(estimate: f64, gt: f64) -> f64 {
    ((estimate - gt) / gt).abs() * 100.0
}
