//! Quickstart: build a sequential circuit, simulate a workload, train a
//! small DeepSeq model on the resulting labels, and inspect predictions.
//!
//! Run: `cargo run --release --example quickstart`

use deepseq::core::train::{evaluate, train};
use deepseq::core::{DeepSeq, DeepSeqConfig, TrainOptions, TrainSample};
use deepseq::netlist::{NetlistError, SeqAig};
use deepseq::sim::{simulate, SimOptions, Workload};

fn main() -> Result<(), NetlistError> {
    // 1. Build a small sequential circuit: a 2-bit counter with enable.
    //    (PIs, 2-input ANDs, inverters and D flip-flops — AIG form.)
    let mut aig = SeqAig::new("counter2");
    let en = aig.add_pi("en");
    let q0 = aig.add_ff("q0", false);
    let q1 = aig.add_ff("q1", false);
    // q0' = q0 XOR en  (XOR decomposed into AND/NOT)
    let nq0 = aig.add_not(q0);
    let nen = aig.add_not(en);
    let t0 = aig.add_and(q0, nen);
    let t1 = aig.add_and(nq0, en);
    let n0 = aig.add_not(t0);
    let n1 = aig.add_not(t1);
    let both = aig.add_and(n0, n1);
    let q0_next = aig.add_not(both);
    aig.connect_ff(q0, q0_next)?;
    // q1' = q1 XOR (q0 AND en)
    let carry = aig.add_and(q0, en);
    let nq1 = aig.add_not(q1);
    let ncarry = aig.add_not(carry);
    let u0 = aig.add_and(q1, ncarry);
    let u1 = aig.add_and(nq1, carry);
    let m0 = aig.add_not(u0);
    let m1 = aig.add_not(u1);
    let both2 = aig.add_and(m0, m1);
    let q1_next = aig.add_not(both2);
    aig.connect_ff(q1, q1_next)?;
    aig.set_output(q0, "count0");
    aig.set_output(q1, "count1");
    aig.validate()?;
    println!("circuit: {} nodes, {} FFs", aig.len(), aig.num_ffs());

    // 2. Define a workload (enable high 70% of cycles) and simulate it to
    //    obtain the multi-task supervision: logic-1 and transition
    //    probabilities per node.
    let workload = Workload::uniform(1, 0.7);
    let sim = simulate(&aig, &workload, &SimOptions::default());
    println!(
        "simulated: q0 p1 = {:.3} (expect 0.5), q0 toggles = {:.3} (expect 0.7)",
        sim.probs.p1[q0.index()],
        sim.probs.toggle_rate(q0.index()),
    );

    // 3. Train a small DeepSeq model on this circuit's labels.
    let config = DeepSeqConfig {
        hidden_dim: 16,
        iterations: 3,
        ..DeepSeqConfig::default()
    };
    let mut model = DeepSeq::new(config);
    let sample = TrainSample::generate(
        &aig,
        &workload,
        config.hidden_dim,
        &SimOptions::default(),
        0,
    );
    let before = evaluate(&model, std::slice::from_ref(&sample));
    let history = train(
        &mut model,
        std::slice::from_ref(&sample),
        &TrainOptions {
            epochs: 40,
            lr: 5e-3,
            ..TrainOptions::default()
        },
    );
    let after = evaluate(&model, std::slice::from_ref(&sample));
    println!(
        "training: loss {:.4} -> {:.4} over {} epochs",
        history.first().map(|e| e.loss).unwrap_or(0.0),
        history.last().map(|e| e.loss).unwrap_or(0.0),
        history.len()
    );
    println!(
        "avg prediction error: TR {:.4} -> {:.4}, LG {:.4} -> {:.4}",
        before.pe_tr, after.pe_tr, before.pe_lg, after.pe_lg
    );

    // 4. Predict and compare a few nodes.
    let preds = model.predict(&sample.graph, &sample.init_h);
    println!("\nnode    predicted p1   simulated p1");
    for (id, _) in aig.iter().take(6) {
        println!(
            "{:<6}  {:<13.3}  {:.3}",
            format!("{id}"),
            preds.lg.get(id.index(), 0),
            sim.probs.p1[id.index()]
        );
    }
    Ok(())
}
