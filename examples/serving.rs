//! End-to-end serving scenario: train-free checkpoint handoff into the
//! batched tape-free inference engine, with cache hit/miss statistics.
//!
//! 1. Build a model and write a **binary checkpoint** (the `DSQM` format).
//! 2. Reload it as a frozen [`InferenceModel`] — no tape, no optimizer.
//! 3. Serve a batch of circuits (synthetic design-suite blocks + random
//!    training-scale circuits) through the shared-pool [`Engine`] — the
//!    same `DEEPSEQ_THREADS`-sized pool runs request- and level-level
//!    parallelism, with bitwise-identical outputs at any thread count.
//! 4. Re-serve the same batch: every request is a content-addressed cache
//!    hit, including a *renumbered* copy of a circuit — the canonical
//!    structural hash sees through node reordering.
//!
//! Run: `cargo run --release --example serving`

use deepseq::core::{DeepSeq, DeepSeqConfig};
use deepseq::data::random::{random_circuit, CircuitSpec};
use deepseq::netlist::{AigNode, NodeId, SeqAig};
use deepseq::serve::{Engine, EngineOptions, InferenceModel, ServeRequest};
use deepseq::sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A (here: untrained) model, checkpointed in the binary format. A
    //    production flow would train first; the serving path is identical.
    let config = DeepSeqConfig {
        hidden_dim: 16,
        iterations: 3,
        ..DeepSeqConfig::default()
    };
    let model = DeepSeq::new(config);
    let checkpoint = model.save_binary();
    println!(
        "checkpoint: {} parameters, {} bytes binary (text would be {} bytes)",
        model.params().len(),
        checkpoint.len(),
        model.save_to_string().len()
    );

    // 2. Freeze for serving.
    let frozen = InferenceModel::from_binary_checkpoint(&checkpoint).expect("valid checkpoint");
    let engine = Engine::new(
        frozen,
        EngineOptions {
            workers: 4,
            cache_capacity: 64,
            ..EngineOptions::default()
        },
    );

    // 3. A batch of independent circuits.
    let mut rng = StdRng::seed_from_u64(42);
    let circuits: Vec<SeqAig> = (0..6)
        .map(|i| {
            random_circuit(
                &format!("design{i}"),
                &CircuitSpec {
                    num_gates: 120 + 30 * i,
                    ..CircuitSpec::default()
                },
                &mut rng,
            )
        })
        .collect();

    let requests = |base: u64, circuits: &[SeqAig]| -> Vec<ServeRequest> {
        circuits
            .iter()
            .enumerate()
            .map(|(i, aig)| ServeRequest {
                id: base + i as u64,
                aig: aig.clone(),
                workload: Workload::uniform(aig.num_pis(), 0.5),
                init_seed: 7,
            })
            .collect()
    };

    println!("\ncold batch ({} circuits):", circuits.len());
    serve_round(&engine, requests(0, &circuits));

    // 4. Warm batch: everything hits — including a *renumbered* copy of
    //    the first circuit, which the canonical structural hash identifies
    //    with the entry the cold batch populated. (The duplicate rides the
    //    warm batch: in the cold batch it could race a concurrent worker
    //    still computing the original and legitimately miss.)
    let mut warm = circuits.clone();
    warm.push(reverse_renumber(&circuits[0]));
    println!("\nwarm batch (same circuits + renumbered duplicate):");
    serve_round(&engine, requests(100, &warm));

    let stats = engine.cache_stats();
    println!(
        "\ncache: {} hits / {} misses ({:.0}% hit), {} entries resident, {} evictions",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_ratio(),
        stats.entries,
        stats.evictions
    );
    println!("requests served: {}", engine.requests_served());
    assert_eq!(
        stats.misses as usize,
        circuits.len(),
        "only the cold batch may miss; the renumbered duplicate must hit"
    );
    assert_eq!(stats.hits as usize, warm.len(), "every warm request hits");
}

fn serve_round(engine: &Engine, requests: Vec<ServeRequest>) {
    for response in engine.serve_batch(requests) {
        let served = response.result.expect("valid circuits");
        let lg = &served.data.predictions.lg;
        println!(
            "  {:<10} {:>4} nodes  mean p(1)={:.3}  {}",
            response.design,
            served.num_nodes,
            lg.sum() / lg.rows() as f32,
            if served.cache_hit { "HIT" } else { "miss" }
        );
    }
}

/// Rebuilds a circuit with PIs/FFs created in reverse order — a different
/// node numbering of the same structure.
fn reverse_renumber(aig: &SeqAig) -> SeqAig {
    let mut out = SeqAig::new(aig.name());
    let mut mapped: Vec<Option<NodeId>> = vec![None; aig.len()];
    // Sources in reverse id order first, then gates in id order (their
    // fanins are then always available).
    let sources: Vec<NodeId> = aig
        .iter()
        .filter(|(_, n)| n.is_pi() || n.is_ff())
        .map(|(id, _)| id)
        .collect();
    for &id in sources.iter().rev() {
        mapped[id.index()] = Some(match *aig.node(id) {
            AigNode::Pi => out.add_pi(aig.node_name(id).unwrap_or("pi")),
            AigNode::Ff { init, .. } => out.add_ff(aig.node_name(id).unwrap_or("ff"), init),
            _ => unreachable!(),
        });
    }
    for (id, node) in aig.iter() {
        match *node {
            AigNode::And(a, b) => {
                mapped[id.index()] =
                    Some(out.add_and(mapped[a.index()].unwrap(), mapped[b.index()].unwrap()));
            }
            AigNode::Not(a) => {
                mapped[id.index()] = Some(out.add_not(mapped[a.index()].unwrap()));
            }
            _ => {}
        }
    }
    for (id, node) in aig.iter() {
        if let AigNode::Ff { d: Some(d), .. } = *node {
            out.connect_ff(mapped[id.index()].unwrap(), mapped[d.index()].unwrap())
                .expect("renumbered FF");
        }
    }
    for (node, name) in aig.outputs() {
        out.set_output(mapped[node.index()].unwrap(), name.clone());
    }
    out
}
