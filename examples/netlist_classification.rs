//! Netlist classification from graph-level embeddings — the paper's
//! future-work direction ("it is possible to extend DeepSeq to embed
//! netlists at subcircuit level", Section VI), demonstrated with the Eq. 2
//! readout: circuits from different benchmark families are classified by
//! nearest-centroid over mean-pooled node embeddings.
//!
//! Run: `cargo run --release --example netlist_classification`

use deepseq::core::encoding::initial_states;
use deepseq::core::train::{train, TrainOptions};
use deepseq::core::{CircuitGraph, DeepSeq, DeepSeqConfig, TrainSample};
use deepseq::data::dataset::{generate_family, Family};
use deepseq::nn::Matrix;
use deepseq::sim::{SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hidden = 16;
    let sim = SimOptions {
        cycles: 96,
        warmup: 8,
        seed: 0,
    };
    let mut rng = StdRng::seed_from_u64(4);

    // 1. Pre-train briefly so embeddings carry functional information.
    println!("pre-training a small model for embeddings...");
    let train_circuits: Vec<_> = Family::all()
        .into_iter()
        .flat_map(|f| generate_family(f, 6, 21))
        .collect();
    let samples: Vec<TrainSample> = train_circuits
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            TrainSample::generate(aig, &w, hidden, &sim, i as u64)
        })
        .collect();
    let mut model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: hidden,
        iterations: 3,
        ..DeepSeqConfig::default()
    });
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 10,
            lr: 2e-3,
            ..TrainOptions::default()
        },
    );

    // 2. Compute family centroids from fresh circuits.
    let embed = |model: &DeepSeq, aig: &deepseq::netlist::SeqAig, seed: u64| -> Matrix {
        let graph = CircuitGraph::build(aig);
        let w = Workload::uniform(aig.num_pis(), 0.5);
        model.embed_graph(&graph, &initial_states(aig, &w, hidden, seed))
    };
    let families = Family::all();
    let mut centroids = Vec::new();
    for family in families {
        let circuits = generate_family(family, 8, 33);
        let mut centroid = Matrix::zeros(1, hidden);
        for (i, aig) in circuits.iter().enumerate() {
            centroid.add_assign(&embed(&model, aig, i as u64));
        }
        centroid.scale_assign(1.0 / circuits.len() as f32);
        centroids.push(centroid);
    }

    // 3. Classify held-out circuits by nearest centroid.
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut confusion = [[0usize; 3]; 3];
    for (true_idx, family) in families.into_iter().enumerate() {
        for (i, aig) in generate_family(family, 10, 77).iter().enumerate() {
            let e = embed(&model, aig, 1000 + i as u64);
            let mut best = 0;
            let mut best_dist = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dist: f32 = e
                    .data()
                    .iter()
                    .zip(centroid.data())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            confusion[true_idx][best] += 1;
            correct += usize::from(best == true_idx);
            total += 1;
        }
    }

    println!("\nnearest-centroid family classification over graph embeddings");
    println!(
        "accuracy: {correct}/{total} ({:.0}%)",
        100.0 * correct as f64 / total as f64
    );
    println!("\nconfusion (rows = true family):");
    println!(
        "{:<11} {:>9} {:>7} {:>10}",
        "", "ISCAS'89", "ITC'99", "Opencores"
    );
    for (i, family) in families.into_iter().enumerate() {
        println!(
            "{:<11} {:>9} {:>7} {:>10}",
            family.name(),
            confusion[i][0],
            confusion[i][1],
            confusion[i][2]
        );
    }
    println!("\n(chance is 33%; embeddings carrying structure should beat it)");
}
