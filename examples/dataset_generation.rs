//! Dataset generation — the Table I pipeline.
//!
//! Generates the three benchmark-family corpora, prints their statistics,
//! extracts subcircuit cones the way the paper does (150–300 node windows),
//! and round-trips a circuit through the ISCAS'89 `.bench` format.
//!
//! Run: `cargo run --release --example dataset_generation`

use deepseq::data::dataset::{Corpus, Family};
use deepseq::data::extract::{extract_random_cones, ExtractOptions};
use deepseq::data::random::{random_circuit, CircuitSpec};
use deepseq::netlist::bench_io::{parse_bench, write_bench};
use deepseq::netlist::{CircuitStats, Levels};
use deepseq::sim::{simulate, SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Family corpora with Table I statistics.
    println!("=== corpus statistics (cf. Table I) ===");
    let corpus = Corpus::generate(60, 0);
    for stat in corpus.stats() {
        println!("{stat}");
    }
    for family in Family::all() {
        let (mean, std) = family.size_distribution();
        println!(
            "  paper {}: {} subcircuits, {mean:.2} ± {std:.2} nodes",
            family.name(),
            family.paper_count()
        );
    }

    // 2. Cone extraction from a large random design.
    println!("\n=== subcircuit extraction (150-300 node cones) ===");
    let mut rng = StdRng::seed_from_u64(1);
    let parent = random_circuit(
        "parent",
        &CircuitSpec {
            num_pis: 16,
            num_ffs: 40,
            num_gates: 2000,
            ..CircuitSpec::default()
        },
        &mut rng,
    );
    println!("parent: {}", CircuitStats::of(&parent));
    let cones = extract_random_cones(&parent, 5, &ExtractOptions { max_nodes: 300 }, &mut rng);
    for cone in &cones {
        let levels = Levels::build(cone);
        println!(
            "  cone {}: {} nodes, {} FFs, depth {}",
            cone.name(),
            cone.len(),
            cone.num_ffs(),
            levels.depth()
        );
    }

    // 3. Simulate one cone to produce training labels.
    if let Some(cone) = cones.first() {
        let workload = Workload::random(cone.num_pis(), &mut rng);
        let result = simulate(cone, &workload, &SimOptions::default());
        let avg_toggle = result.probs.average_toggle_rate();
        println!(
            "\nsimulated {}: average toggle rate {avg_toggle:.4}",
            cone.name()
        );
    }

    // 4. `.bench` format round trip (drop-in path for real ISCAS'89 files).
    println!("\n=== .bench round trip ===");
    let text =
        "INPUT(G0)\nINPUT(G1)\nOUTPUT(G17)\nG10 = DFF(G14)\nG14 = NAND(G0, G10)\nG17 = NOT(G14)\n";
    let netlist = parse_bench(text).expect("valid bench text");
    println!(
        "parsed: {} gates, {} inputs, {} DFFs",
        netlist.len(),
        netlist.inputs().len(),
        netlist.dffs().len()
    );
    print!("{}", write_bench(&netlist));
}
