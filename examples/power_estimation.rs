//! Power estimation on a large design — the Fig. 3 pipeline end to end.
//!
//! Builds the `ptc` (PWM/timer/counter) test design, pre-trains a small
//! DeepSeq model on a synthetic corpus, fine-tunes it on the design's
//! workloads, and compares power estimates from ground-truth simulation,
//! the probabilistic baseline and DeepSeq — each flowing through a SAIF
//! file into the power model.
//!
//! Run: `cargo run --release --example power_estimation`

use deepseq::core::train::{train, TrainOptions};
use deepseq::core::{DeepSeq, DeepSeqConfig};
use deepseq::data::dataset::Corpus;
use deepseq::data::designs::ptc;
use deepseq::netlist::lower_to_aig;
use deepseq::power::{finetune_samples, run_pipeline, PipelineConfig};
use deepseq::sim::{SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hidden = 16;
    let sim_opts = SimOptions {
        cycles: 128,
        warmup: 12,
        seed: 0,
    };

    // 1. Pre-train on a small synthetic corpus (Table I pipeline, scaled).
    println!("pre-training DeepSeq on a small corpus...");
    let corpus = Corpus::generate(24, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let samples: Vec<_> = corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            deepseq::core::TrainSample::generate(aig, &w, hidden, &sim_opts, i as u64)
        })
        .collect();
    let config = DeepSeqConfig {
        hidden_dim: hidden,
        iterations: 3,
        ..DeepSeqConfig::default()
    };
    let mut model = DeepSeq::new(config);
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 10,
            lr: 2e-3,
            ..TrainOptions::default()
        },
    );

    // 2. Fine-tune on the test design under fresh workloads (Section V-A1).
    let netlist = ptc();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    println!(
        "fine-tuning on {} ({} AIG nodes)...",
        netlist.name(),
        lowered.aig.len()
    );
    let n_pis = netlist.inputs().len();
    let ft_workloads: Vec<Workload> = (0..4).map(|_| Workload::random(n_pis, &mut rng)).collect();
    let ft = finetune_samples(&lowered.aig, &ft_workloads, hidden, &sim_opts, 9);
    train(
        &mut model,
        &ft,
        &TrainOptions {
            epochs: 4,
            lr: 2e-3,
            ..TrainOptions::default()
        },
    );

    // 3. Run the pipeline on an unseen testbench workload.
    let test_workload = Workload::random(n_pis, &mut rng);
    let result = run_pipeline(
        &netlist,
        &test_workload,
        None,
        Some(&model),
        &PipelineConfig {
            sim: sim_opts,
            ..PipelineConfig::default()
        },
    );
    println!("\n=== power estimation on {} ===", result.design);
    println!("ground truth : {:.3} mW", result.gt_mw);
    println!(
        "probabilistic: {:.3} mW  ({:.2}% error)",
        result.probabilistic.mw, result.probabilistic.error_pct
    );
    if let Some(d) = result.deepseq {
        println!("deepseq      : {:.3} mW  ({:.2}% error)", d.mw, d.error_pct);
    }
}
