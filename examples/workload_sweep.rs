//! Workload sweep — how circuit activity and model predictions vary with
//! the applied workload (the scenario behind Table VI).
//!
//! Sweeps the enable probability of a counter-based design, simulating
//! ground-truth switching activity and showing that a trained model tracks
//! it, while the temporally-blind probabilistic estimate drifts.
//!
//! Run: `cargo run --release --example workload_sweep`

use deepseq::core::train::{train, TrainOptions};
use deepseq::core::{DeepSeq, DeepSeqConfig, TrainSample};
use deepseq::netlist::lower_to_aig;
use deepseq::power::{estimate, ProbabilisticOptions};
use deepseq::sim::{simulate, SimOptions, Workload};

fn main() {
    // The ptc design's timer logic reacts strongly to its inputs' activity.
    let netlist = deepseq::data::designs::ptc();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    let aig = &lowered.aig;
    let n_pis = aig.num_pis();
    let hidden = 16;
    let sim_opts = SimOptions {
        cycles: 128,
        warmup: 12,
        seed: 7,
    };

    // Train on a handful of workload points.
    println!("training on 5 workload points...");
    let train_points = [0.1, 0.3, 0.5, 0.7, 0.9];
    let samples: Vec<TrainSample> = train_points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            TrainSample::generate(
                aig,
                &Workload::uniform(n_pis, p),
                hidden,
                &sim_opts,
                i as u64,
            )
        })
        .collect();
    let mut model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: hidden,
        iterations: 3,
        ..DeepSeqConfig::default()
    });
    train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 30,
            lr: 3e-3,
            ..TrainOptions::default()
        },
    );

    // Sweep unseen workload points and compare average toggle rates.
    println!("\np(input=1)   GT toggle   DeepSeq toggle   Probabilistic toggle");
    for &p in &[0.2, 0.4, 0.6, 0.8] {
        let workload = Workload::uniform(n_pis, p);
        let gt = simulate(aig, &workload, &sim_opts);
        let graph = deepseq::core::CircuitGraph::build(aig);
        let h0 = deepseq::core::encoding::initial_states(aig, &workload, hidden, 1);
        let preds = model.predict(&graph, &h0);
        let model_avg: f64 = (0..aig.len())
            .map(|v| (preds.tr.get(v, 0) + preds.tr.get(v, 1)) as f64)
            .sum::<f64>()
            / aig.len() as f64;
        let prob = estimate(aig, &workload, &ProbabilisticOptions::default());
        println!(
            "{p:<11.1}  {:<10.4}  {:<15.4}  {:.4}",
            gt.probs.average_toggle_rate(),
            model_avg,
            prob.average_toggle_rate(),
        );
    }
    println!("\n(the learned model should track the GT column across unseen workloads)");
}
