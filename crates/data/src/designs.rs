//! Structured analogs of the six OpenCores test designs (paper Table IV).
//!
//! The real IPs are not available offline; these generators rebuild circuits
//! of the same *kind* (router, PLL, timer, RTC, audio controller, memory
//! controller) from the blocks in [`crate::blocks`], sized to land near the
//! paper's node counts after AIG decomposition:
//!
//! | Design | Paper # nodes | Content here |
//! |---|---|---|
//! | `noc_router` | 5 246 | input FIFOs, route decode, round-robin arbiters, crossbar |
//! | `pll` | 18 208 | phase accumulators, phase detector, FIR-style loop filter, dividers |
//! | `ptc` | 2 024 | prescaler, 32-bit timer, PWM compare/capture channels |
//! | `rtcclock` | 4 720 | prescaler, BCD time counters, alarm comparators, increment adder |
//! | `ac97_ctrl` | 14 004 | slot registers, frame serializer/deserializer, FIFOs, bit counter |
//! | `mem_ctrl` | 10 733 | command FSM, bank state, address path, timing counters, data muxes |

use deepseq_netlist::netlist::{GateId, GateKind, Netlist};

use crate::blocks::{
    and_tree, const_one, const_zero, counter, decoder, equals, less_than, mux_bus, mux_tree,
    or_tree, priority_arbiter, register, register_en, ripple_adder, round_robin_arbiter,
    shift_register,
};

/// Adds `n` named inputs.
fn inputs(nl: &mut Netlist, name: &str, n: usize) -> Vec<GateId> {
    (0..n).map(|i| nl.add_input(format!("{name}{i}"))).collect()
}

/// Network-on-chip router: 5 ports, 16-bit flits, 4-deep input FIFOs,
/// destination decode, per-output round-robin arbitration and a full
/// crossbar.
pub fn noc_router() -> Netlist {
    let mut nl = Netlist::new("noc_router");
    const PORTS: usize = 5;
    const WIDTH: usize = 12;
    const DEPTH: usize = 4;

    let mut port_data = Vec::new();
    let mut port_dest = Vec::new();
    for p in 0..PORTS {
        let data = inputs(&mut nl, &format!("in_p{p}_d"), WIDTH);
        let valid = nl.add_input(format!("in_p{p}_valid"));
        // Input FIFO: DEPTH stages of registered data, advancing on valid.
        let mut stage = data.clone();
        for s in 0..DEPTH {
            stage = register_en(&mut nl, &format!("p{p}_fifo{s}"), &stage, valid);
        }
        // Destination field: low 3 bits of the flit head.
        port_dest.push(vec![stage[0], stage[1], stage[2]]);
        port_data.push(stage);
    }

    // Route decode: one-hot request per (input port, output port).
    let mut requests: Vec<Vec<GateId>> = vec![Vec::new(); PORTS];
    for dest in &port_dest {
        let hot = decoder(&mut nl, dest);
        for (o, req_list) in requests.iter_mut().enumerate() {
            req_list.push(hot[o]);
        }
    }

    // Per-output arbitration + crossbar mux.
    for (o, reqs) in requests.iter().enumerate() {
        let grants = round_robin_arbiter(&mut nl, &format!("arb{o}"), reqs);
        // Select granted input: encode grants to binary selects.
        let sel0 = or_tree(&mut nl, &[grants[1], grants[3]]);
        let sel1 = or_tree(&mut nl, &[grants[2], grants[3]]);
        let sel2 = grants[4];
        let selected = mux_tree(&mut nl, &[sel0, sel1, sel2], &port_data);
        let any_grant = or_tree(&mut nl, &grants);
        let out = register_en(&mut nl, &format!("out{o}"), &selected, any_grant);
        for (b, q) in out.iter().enumerate() {
            nl.set_output(*q, format!("out_p{o}_d{b}"));
        }
    }
    nl
}

/// All-digital PLL model: reference divider, 32-bit phase accumulators,
/// phase detector (subtraction), an 8-tap FIR-style loop filter and a
/// feedback divider.
pub fn pll() -> Netlist {
    let mut nl = Netlist::new("pll");
    const W: usize = 40;
    const TAPS: usize = 18;

    let fcw = inputs(&mut nl, "fcw", W); // frequency control word
    let ref_toggle = nl.add_input("ref_in");
    let one = const_one(&mut nl, "pll");
    let zero = const_zero(&mut nl, "pll");

    // Reference phase accumulator: acc += fcw each cycle.
    let ref_acc = {
        let acc = register(&mut nl, "ref_acc", &[zero; W]);
        let (sum, _) = ripple_adder(&mut nl, &acc, &fcw, zero);
        for (q, s) in acc.iter().zip(&sum) {
            nl.connect_dff(*q, *s).expect("acc reg");
        }
        acc
    };

    // NCO phase accumulator driven by the filtered control word.
    let nco_acc = register(&mut nl, "nco_acc", &[zero; W]);

    // Phase detector: error = ref_acc - nco_acc (two's complement).
    let nco_inv: Vec<GateId> = nco_acc
        .iter()
        .map(|&q| nl.add_gate(GateKind::Not, vec![q]))
        .collect();
    let (error, _) = ripple_adder(&mut nl, &ref_acc, &nco_inv, one);

    // Loop filter: TAPS delayed error words accumulated pairwise (moving
    // average FIR); each tap is a W-bit register + adder.
    let mut taps = vec![error.clone()];
    for t in 1..TAPS {
        let prev = taps.last().expect("nonempty").clone();
        taps.push(register(&mut nl, &format!("tap{t}"), &prev));
    }
    let mut acc = taps[0].clone();
    for tap in taps.iter().skip(1) {
        let (sum, _) = ripple_adder(&mut nl, &acc, tap, zero);
        acc = sum;
    }
    let control = register(&mut nl, "control", &acc);

    // Close the NCO loop: nco += control.
    let (nco_next, _) = ripple_adder(&mut nl, &nco_acc, &control, zero);
    for (q, s) in nco_acc.iter().zip(&nco_next) {
        nl.connect_dff(*q, *s).expect("nco reg");
    }

    // Feedback divider: a 16-bit counter clock-enabled by the NCO MSB edge
    // (approximated by the MSB itself) plus a lock detector comparing the
    // high halves of both accumulators.
    let div = counter(&mut nl, "fbdiv", 16, nco_acc[W - 1]);
    let lock = equals(&mut nl, &ref_acc[W / 2..], &nco_acc[W / 2..]);
    let ref_sync = shift_register(&mut nl, "refsync", ref_toggle, 3);

    nl.set_output(lock, "locked");
    nl.set_output(*ref_sync.last().expect("stages"), "ref_sync");
    for (i, q) in div.iter().enumerate() {
        nl.set_output(*q, format!("clk_div{i}"));
    }
    for (i, q) in nco_acc.iter().enumerate().take(8) {
        nl.set_output(*q, format!("nco{i}"));
    }
    nl
}

/// PWM / timer / counter IP: prescaler, 32-bit main timer, and PWM
/// compare + capture channels.
pub fn ptc() -> Netlist {
    let mut nl = Netlist::new("ptc");
    const W: usize = 24;
    const CHANNELS: usize = 2;

    let one = const_one(&mut nl, "ptc");
    let capture_trig = nl.add_input("capture_trig");

    // Prescaler: 8-bit counter; timer ticks when prescaler wraps.
    let pre = counter(&mut nl, "prescaler", 8, one);
    let tick = and_tree(&mut nl, &pre);
    let timer = counter(&mut nl, "timer", W, tick);

    for ch in 0..CHANNELS {
        let compare = inputs(&mut nl, &format!("cmp{ch}_"), W);
        // PWM: high while timer < compare.
        let pwm = less_than(&mut nl, &timer, &compare);
        let pwm_q = register(&mut nl, &format!("pwm{ch}"), &[pwm]);
        nl.set_output(pwm_q[0], format!("pwm_out{ch}"));
        // Capture: latch the timer on the trigger input.
        let cap = register_en(&mut nl, &format!("cap{ch}"), &timer, capture_trig);
        for (i, q) in cap.iter().enumerate().take(8) {
            nl.set_output(*q, format!("cap{ch}_{i}"));
        }
        // Match interrupt: timer == compare.
        let eq = equals(&mut nl, &timer, &compare);
        nl.set_output(eq, format!("irq{ch}"));
    }
    nl
}

/// Real-time clock: prescaler divider, BCD seconds/minutes/hours chain,
/// alarm comparators and a date increment adder.
pub fn rtcclock() -> Netlist {
    let mut nl = Netlist::new("rtcclock");
    let one = const_one(&mut nl, "rtc");
    let zero = const_zero(&mut nl, "rtc");

    // Prescaler: 17-bit divider; the second-tick fires when all bits are 1.
    let pre = counter(&mut nl, "prescaler", 17, one);
    let sec_tick = and_tree(&mut nl, &pre);

    // BCD digit chain: (modulus, name); carry ripples through.
    let mut digits: Vec<Vec<GateId>> = Vec::new();
    let mut carry = sec_tick;
    for (modulus, name) in [
        (10usize, "sec_lo"),
        (6, "sec_hi"),
        (10, "min_lo"),
        (6, "min_hi"),
        (10, "hr_lo"),
        (3, "hr_hi"),
    ] {
        let bits = 4;
        let qs: Vec<GateId> = (0..bits)
            .map(|i| nl.add_dff(format!("{name}_{i}"), false))
            .collect();
        // limit = modulus - 1 encoded in constants.
        let limit: Vec<GateId> = (0..bits)
            .map(|i| {
                if ((modulus - 1) >> i) & 1 == 1 {
                    one
                } else {
                    zero
                }
            })
            .collect();
        let at_limit = equals(&mut nl, &qs, &limit);
        let wrap = nl.add_gate(GateKind::And, vec![at_limit, carry]);
        // Increment (binary +carry), reset to 0 on wrap.
        let mut c = carry;
        for (i, &q) in qs.iter().enumerate() {
            let sum = nl.add_gate(GateKind::Xor, vec![q, c]);
            if i + 1 < bits {
                c = nl.add_gate(GateKind::And, vec![q, c]);
            }
            let nw = nl.add_gate(GateKind::Not, vec![wrap]);
            let next = nl.add_gate(GateKind::And, vec![sum, nw]);
            nl.connect_dff(q, next).expect("digit reg");
        }
        carry = wrap;
        digits.push(qs);
    }
    let time_bus: Vec<GateId> = digits.iter().flatten().copied().collect();

    // Alarm channels: full-width comparators against programmable inputs.
    const ALARMS: usize = 8;
    for a in 0..ALARMS {
        let setpoint = inputs(&mut nl, &format!("alarm{a}_"), time_bus.len());
        let hit = equals(&mut nl, &time_bus, &setpoint);
        let hit_q = register(&mut nl, &format!("alarm{a}_hit"), &[hit]);
        nl.set_output(hit_q[0], format!("alarm{a}"));
    }

    // Day counter + date increment adder (16-bit).
    let day = counter(&mut nl, "day", 16, carry);

    // Interval timer channels: programmable thresholds over day ‖ time.
    let interval_bus: Vec<GateId> = day.iter().chain(time_bus.iter()).copied().collect();
    const TIMERS: usize = 2;
    for t in 0..TIMERS {
        let threshold = inputs(&mut nl, &format!("ivl{t}_"), interval_bus.len());
        let fire = less_than(&mut nl, &threshold, &interval_bus);
        let fire_q = register(&mut nl, &format!("ivl{t}_hit"), &[fire]);
        nl.set_output(fire_q[0], format!("interval{t}"));
    }

    let offset = inputs(&mut nl, "date_off", 16);
    let (date, _) = ripple_adder(&mut nl, &day, &offset, zero);
    for (i, d) in date.iter().enumerate().take(8) {
        nl.set_output(*d, format!("date{i}"));
    }
    for (i, q) in time_bus.iter().enumerate() {
        nl.set_output(*q, format!("time{i}"));
    }
    nl
}

/// AC'97 audio codec controller: 12 outgoing slot registers feeding a frame
/// serializer, an incoming deserializer with slot latches, sample FIFOs and
/// the frame bit counter.
pub fn ac97_ctrl() -> Netlist {
    let mut nl = Netlist::new("ac97_ctrl");
    const SLOTS: usize = 12;
    const SLOT_W: usize = 20;
    const FIFO_DEPTH: usize = 4;

    let one = const_one(&mut nl, "ac97");
    let sdata_in = nl.add_input("sdata_in");
    let slot_we: Vec<GateId> = (0..SLOTS)
        .map(|s| nl.add_input(format!("slot{s}_we")))
        .collect();

    // Frame bit counter (0..255) and slot-boundary decodes.
    let bitcnt = counter(&mut nl, "bitcnt", 8, one);
    let mut slot_sel = Vec::new();
    for s in 0..SLOTS {
        let boundary = (16 + s * SLOT_W) & 0xFF;
        let konst: Vec<GateId> = (0..8)
            .map(|i| {
                if (boundary >> i) & 1 == 1 {
                    one
                } else {
                    // Reuse NOT(one) lazily below; build constant zero per use.
                    const_zero(&mut nl, &format!("b{s}_{i}"))
                }
            })
            .collect();
        slot_sel.push(equals(&mut nl, &bitcnt, &konst));
    }

    // Outgoing slot registers + FIFO chains.
    let mut slot_buses = Vec::new();
    for s in 0..SLOTS {
        let data = inputs(&mut nl, &format!("slot{s}_d"), SLOT_W);
        let mut bus = register_en(&mut nl, &format!("slot{s}_reg"), &data, slot_we[s]);
        for depth in 0..FIFO_DEPTH {
            bus = register_en(&mut nl, &format!("slot{s}_fifo{depth}"), &bus, slot_sel[s]);
        }
        slot_buses.push(bus);
    }

    // Serializer: select the active slot bus, then shift out by bit index.
    let sel_bits = 4; // 12 slots
    let mut sels = Vec::new();
    for b in 0..sel_bits {
        // sel bit b = OR of slot_sel for slots with bit b set (held by a
        // set/advance register approximated as combinational decode).
        let members: Vec<GateId> = (0..SLOTS)
            .filter(|s| (s >> b) & 1 == 1)
            .map(|s| slot_sel[s])
            .collect();
        let raw = or_tree(&mut nl, &members);
        let held = register(&mut nl, &format!("sersel{b}"), &[raw]);
        sels.push(held[0]);
    }
    let active = mux_tree(&mut nl, &sels, &slot_buses);
    // Bit-select within the slot via a 5-bit sub-counter and mux tree.
    let subcnt = counter(&mut nl, "subbit", 5, one);
    let bit_lanes: Vec<Vec<GateId>> = active.iter().map(|&b| vec![b]).collect();
    let sdata_out = mux_tree(&mut nl, &subcnt, &bit_lanes);
    nl.set_output(sdata_out[0], "sdata_out");

    // Deserializer: a SLOT_W-deep shift register per input latch group.
    let shift_in = shift_register(&mut nl, "deser", sdata_in, SLOT_W);
    for (s, &sel) in slot_sel.iter().enumerate().take(4) {
        let latch = register_en(&mut nl, &format!("in_slot{s}"), &shift_in, sel);
        for (i, q) in latch.iter().enumerate().take(4) {
            nl.set_output(*q, format!("in{s}_{i}"));
        }
    }
    nl
}

/// Memory controller: command FSM, per-bank state registers, address
/// multiplexing, refresh and timing counters, and a 32-bit data path.
pub fn mem_ctrl() -> Netlist {
    let mut nl = Netlist::new("mem_ctrl");
    const BANKS: usize = 8;
    const ADDR_W: usize = 24;
    const DATA_W: usize = 64;
    const FIFO_DEPTH: usize = 4;

    let one = const_one(&mut nl, "mc");
    let req = nl.add_input("req");
    let we = nl.add_input("we");
    let addr = inputs(&mut nl, "addr", ADDR_W);
    let wdata = inputs(&mut nl, "wdata", DATA_W);

    // Command FSM: 3-bit state counter advancing on request, with decodes.
    let state = counter(&mut nl, "state", 3, req);
    let states = decoder(&mut nl, &state);

    // Refresh counter: refresh request when the high bits are all 1.
    let refresh = counter(&mut nl, "refresh", 12, one);
    let refresh_req = and_tree(&mut nl, &refresh[6..]);

    // Per-bank row registers + open-row comparators + row-buffer data cache.
    let bank_sel = &addr[ADDR_W - 3..];
    let bank_hot = decoder(&mut nl, bank_sel);
    let row_width = ADDR_W - 3;
    let mut hits = Vec::new();
    for (b, &hot) in bank_hot.iter().enumerate().take(BANKS) {
        let load = nl.add_gate(GateKind::And, vec![hot, states[1]]);
        let row = register_en(&mut nl, &format!("bank{b}_row"), &addr[..row_width], load);
        let same = equals(&mut nl, &row, &addr[..row_width]);
        let hit = nl.add_gate(GateKind::And, vec![same, bank_hot[b]]);
        // Row-buffer cache: last written word per bank.
        let wb = nl.add_gate(GateKind::And, vec![hit, we]);
        let cache = register_en(&mut nl, &format!("bank{b}_buf"), &wdata[..DATA_W / 2], wb);
        nl.set_output(cache[0], format!("bank{b}_buf0"));
        hits.push(hit);
    }
    let page_hit = or_tree(&mut nl, &hits);
    nl.set_output(page_hit, "page_hit");

    // Timing counters: tRCD/tRP/tRAS/tRC/tWR/tRFC-style counters cleared by
    // state decodes.
    for (t, name) in ["trcd", "trp", "tras", "trc", "twr", "trfc", "tfaw", "tcke"]
        .iter()
        .enumerate()
    {
        let cnt = counter(&mut nl, name, 6, states[t % states.len()]);
        let expired = and_tree(&mut nl, &cnt[3..]);
        nl.set_output(expired, format!("{name}_ok"));
    }

    // Write FIFO: FIFO_DEPTH stages of enable-muxed 64-bit registers.
    let mut wfifo = register_en(&mut nl, "wfifo0", &wdata, we);
    for s in 1..FIFO_DEPTH {
        wfifo = register_en(&mut nl, &format!("wfifo{s}"), &wfifo, we);
    }

    // Parity trees over write and FIFO data (ECC-style check bits).
    let wpar = reduce_xor(&mut nl, &wdata);
    let fpar = reduce_xor(&mut nl, &wfifo);
    let par_ok = nl.add_gate(GateKind::Xnor, vec![wpar, fpar]);
    nl.set_output(par_ok, "parity_ok");

    // Data path: byte-lane write mask muxing and a registered pipeline.
    let lane_sel: Vec<GateId> = (0..8)
        .map(|l| nl.add_input(format!("lane_en{l}")))
        .collect();
    let rreg = register(&mut nl, "rreg", &wfifo);
    let mut dq = Vec::with_capacity(DATA_W);
    for (i, (&w_bit, &r_bit)) in wfifo.iter().zip(&rreg).enumerate() {
        let lane = lane_sel[i / 8];
        dq.push(nl.add_gate(GateKind::Mux, vec![lane, r_bit, w_bit]));
    }
    let dq_q = register(&mut nl, "dq", &dq);
    for (i, q) in dq_q.iter().enumerate() {
        nl.set_output(*q, format!("dq{i}"));
    }

    // Address mux: row during activate, column otherwise; registered twice
    // (CAS latency pipeline).
    let col: Vec<GateId> = addr[..row_width].to_vec();
    let row_or_col = mux_bus(&mut nl, states[1], &col, &addr[..row_width]);
    let addr_q = register(&mut nl, "addr_q", &row_or_col);
    let addr_q2 = register(&mut nl, "addr_q2", &addr_q);
    for (i, q) in addr_q2.iter().enumerate().take(8) {
        nl.set_output(*q, format!("a{i}"));
    }

    // Grant logic: refresh beats requests.
    let reqs = vec![refresh_req, req, page_hit];
    let grants = priority_arbiter(&mut nl, &reqs);
    nl.set_output(grants[0], "do_refresh");
    nl.set_output(grants[1], "do_access");
    nl
}

/// Balanced XOR (parity) reduction.
fn reduce_xor(nl: &mut Netlist, xs: &[GateId]) -> GateId {
    let mut layer: Vec<GateId> = xs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.add_gate(GateKind::Xor, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// All six designs of Table IV, in the paper's order.
pub fn all_designs() -> Vec<Netlist> {
    vec![
        noc_router(),
        pll(),
        ptc(),
        rtcclock(),
        ac97_ctrl(),
        mem_ctrl(),
    ]
}

/// Looks a design up by its paper name.
pub fn design_by_name(name: &str) -> Option<Netlist> {
    match name {
        "noc_router" => Some(noc_router()),
        "pll" => Some(pll()),
        "ptc" => Some(ptc()),
        "rtcclock" => Some(rtcclock()),
        "ac97_ctrl" => Some(ac97_ctrl()),
        "mem_ctrl" => Some(mem_ctrl()),
        _ => None,
    }
}

/// Paper node counts (Table IV) for reference in reports.
pub fn paper_node_count(name: &str) -> Option<usize> {
    match name {
        "noc_router" => Some(5_246),
        "pll" => Some(18_208),
        "ptc" => Some(2_024),
        "rtcclock" => Some(4_720),
        "ac97_ctrl" => Some(14_004),
        "mem_ctrl" => Some(10_733),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::lower_to_aig;

    #[test]
    fn all_designs_validate_and_lower() {
        for nl in all_designs() {
            assert!(nl.validate().is_ok(), "{} invalid", nl.name());
            let lowered = lower_to_aig(&nl).unwrap();
            assert!(lowered.aig.validate().is_ok());
            assert!(!nl.outputs().is_empty(), "{} has no outputs", nl.name());
        }
    }

    #[test]
    fn design_sizes_report() {
        // Not a strict check (sizes are calibrated, not exact): assert the
        // AIG lands within a factor of 2.5 of the paper node count so gross
        // regressions are caught.
        for nl in all_designs() {
            let lowered = lower_to_aig(&nl).unwrap();
            let nodes = lowered.aig.len();
            let paper = paper_node_count(nl.name()).unwrap();
            let ratio = nodes as f64 / paper as f64;
            println!(
                "{}: {} AIG nodes (paper {paper}, ratio {ratio:.2})",
                nl.name(),
                nodes
            );
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: {} vs paper {} (ratio {:.2})",
                nl.name(),
                nodes,
                paper,
                ratio
            );
        }
    }

    #[test]
    fn ordering_matches_paper_relative_sizes() {
        // pll is the largest design, ptc the smallest — preserve that shape.
        let sizes: Vec<(String, usize)> = all_designs()
            .iter()
            .map(|nl| {
                let lowered = lower_to_aig(nl).unwrap();
                (nl.name().to_string(), lowered.aig.len())
            })
            .collect();
        let get = |n: &str| sizes.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(get("pll") > get("ptc"));
        assert!(get("ac97_ctrl") > get("rtcclock"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(design_by_name("ptc").is_some());
        assert!(design_by_name("nonexistent").is_none());
        assert_eq!(paper_node_count("pll"), Some(18_208));
    }

    #[test]
    fn designs_simulate() {
        use deepseq_sim::{simulate_netlist, SimOptions, Workload};
        // Smoke test on the two smallest designs.
        for nl in [ptc(), rtcclock()] {
            let w = Workload::uniform(nl.inputs().len(), 0.3);
            let r = simulate_netlist(
                &nl,
                &w,
                &SimOptions {
                    cycles: 64,
                    warmup: 8,
                    seed: 0,
                },
            );
            assert!(r.probs.check_consistency(0.1).is_ok());
        }
    }
}
