//! Output-cone subcircuit extraction (paper Section III: "we extract
//! sub-circuits of sizes in range 150 to 300 nodes from open source
//! benchmarks").
//!
//! A cone is grown backwards from a root node. Nodes whose fanins do not fit
//! the budget become *boundary* nodes and are converted into fresh primary
//! inputs of the subcircuit; flip-flops are kept as flip-flops when their D
//! cone is included, otherwise they also become PIs.

use std::collections::{HashMap, HashSet, VecDeque};

use deepseq_netlist::aig::{AigNode, NodeId, SeqAig};
use rand::Rng;

/// Options for cone extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractOptions {
    /// Stop growing once this many nodes are collected (paper: 150–300).
    pub max_nodes: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { max_nodes: 300 }
    }
}

/// Extracts the cone rooted at `root` from `aig`.
///
/// Returns `None` when the root is a PI (an empty cone).
pub fn extract_cone(aig: &SeqAig, root: NodeId, opts: &ExtractOptions) -> Option<SeqAig> {
    if aig.node(root).is_pi() {
        return None;
    }
    // Backward BFS with a node budget.
    let mut selected: HashSet<NodeId> = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(root);
    selected.insert(root);
    while let Some(v) = queue.pop_front() {
        if selected.len() >= opts.max_nodes {
            break;
        }
        let fanins: Vec<NodeId> = match *aig.node(v) {
            AigNode::And(a, b) => vec![a, b],
            AigNode::Not(a) => vec![a],
            AigNode::Ff { d: Some(d), .. } => vec![d],
            _ => Vec::new(),
        };
        for f in fanins {
            if selected.len() >= opts.max_nodes {
                break;
            }
            if selected.insert(f) {
                queue.push_back(f);
            }
        }
    }

    // A selected node stays internal only if all its fanins are selected;
    // otherwise it becomes a boundary PI.
    let is_internal = |v: NodeId| -> bool {
        match *aig.node(v) {
            AigNode::Pi => false,
            AigNode::And(a, b) => selected.contains(&a) && selected.contains(&b),
            AigNode::Not(a) => selected.contains(&a),
            AigNode::Ff { d: Some(d), .. } => selected.contains(&d),
            AigNode::Ff { d: None, .. } => false,
        }
    };

    // Rebuild in original id order (preserves topological validity).
    let mut sub = SeqAig::new(format!("{}_cone_{}", aig.name(), root.0));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut ordered: Vec<NodeId> = selected.iter().copied().collect();
    ordered.sort();
    let mut ffs_to_connect = Vec::new();
    for v in ordered {
        let new_id = if !is_internal(v) {
            sub.add_pi(format!("cut_{}", v.0))
        } else {
            match *aig.node(v) {
                AigNode::And(a, b) => {
                    let na = map[&a];
                    let nb = map[&b];
                    sub.add_and(na, nb)
                }
                AigNode::Not(a) => {
                    let na = map[&a];
                    sub.add_not(na)
                }
                AigNode::Ff { init, .. } => {
                    let ff = sub.add_ff(format!("ff_{}", v.0), init);
                    ffs_to_connect.push((v, ff));
                    ff
                }
                AigNode::Pi => unreachable!("PIs are never internal"),
            }
        };
        map.insert(v, new_id);
    }
    for (orig, new_ff) in ffs_to_connect {
        let d = aig.ff_fanin(orig).expect("internal FFs have D inputs");
        sub.connect_ff(new_ff, map[&d]).expect("new_ff is an FF");
    }
    sub.set_output(map[&root], "cone_out");
    debug_assert!(sub.validate().is_ok());
    Some(sub)
}

/// Extracts up to `count` cones from random gate roots.
pub fn extract_random_cones<R: Rng + ?Sized>(
    aig: &SeqAig,
    count: usize,
    opts: &ExtractOptions,
    rng: &mut R,
) -> Vec<SeqAig> {
    let candidates: Vec<NodeId> = aig
        .iter()
        .filter(|(_, n)| !n.is_pi())
        .map(|(id, _)| id)
        .collect();
    let mut cones = Vec::new();
    let mut attempts = 0;
    while cones.len() < count && attempts < count * 10 && !candidates.is_empty() {
        attempts += 1;
        let root = candidates[rng.gen_range(0..candidates.len())];
        if let Some(cone) = extract_cone(aig, root, opts) {
            if cone.len() >= 10 {
                cones.push(cone);
            }
        }
    }
    cones
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_circuit, CircuitSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big_circuit() -> SeqAig {
        let mut rng = StdRng::seed_from_u64(7);
        random_circuit(
            "big",
            &CircuitSpec {
                num_pis: 10,
                num_ffs: 20,
                num_gates: 900,
                ..CircuitSpec::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn cones_validate_and_respect_budget() {
        let aig = big_circuit();
        let mut rng = StdRng::seed_from_u64(8);
        let cones = extract_random_cones(&aig, 10, &ExtractOptions { max_nodes: 200 }, &mut rng);
        assert!(!cones.is_empty());
        for cone in &cones {
            assert!(cone.validate().is_ok());
            // Boundary conversion may add a few extra PIs beyond the budget.
            assert!(cone.len() <= 220, "cone too large: {}", cone.len());
            assert_eq!(cone.outputs().len(), 1);
        }
    }

    #[test]
    fn pi_root_yields_none() {
        let aig = big_circuit();
        let pi = aig.pis()[0];
        assert!(extract_cone(&aig, pi, &ExtractOptions::default()).is_none());
    }

    #[test]
    fn small_root_cone_is_complete() {
        // A cone from a shallow node of a tiny circuit includes everything.
        let mut aig = SeqAig::new("t");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        aig.set_output(n, "y");
        let cone = extract_cone(&aig, n, &ExtractOptions::default()).unwrap();
        assert_eq!(cone.len(), 4);
        assert_eq!(cone.num_pis(), 2);
        assert_eq!(cone.num_ands(), 1);
        assert_eq!(cone.num_nots(), 1);
    }

    #[test]
    fn ff_with_cut_cone_becomes_pi() {
        let aig = big_circuit();
        let mut rng = StdRng::seed_from_u64(9);
        // Tiny budget forces FF boundary conversion somewhere.
        let cones = extract_random_cones(&aig, 5, &ExtractOptions { max_nodes: 20 }, &mut rng);
        for cone in cones {
            assert!(cone.validate().is_ok());
        }
    }

    #[test]
    fn cone_preserves_local_function() {
        use deepseq_sim::{simulate, SimOptions, Workload};
        // A pure-combinational cone over the full circuit computes the same
        // probability at its root as the original circuit does.
        let mut aig = SeqAig::new("c");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let g2 = aig.add_and(n, a);
        aig.set_output(g2, "y");
        let cone = extract_cone(&aig, g2, &ExtractOptions::default()).unwrap();
        let o = SimOptions {
            cycles: 500,
            warmup: 10,
            seed: 3,
        };
        let w1 = Workload::uniform(2, 0.5);
        let r_orig = simulate(&aig, &w1, &o);
        let w2 = Workload::uniform(cone.num_pis(), 0.5);
        let r_cone = simulate(&cone, &w2, &o);
        let root_orig = r_orig.probs.p1[g2.index()];
        let root_cone = r_cone.probs.p1[cone.outputs()[0].0.index()];
        assert!((root_orig - root_cone).abs() < 0.05);
    }
}
