//! Training dataset assembly — the three benchmark families of Table I.
//!
//! | Benchmark | # Subcircuits | # Nodes (µ ± σ) |
//! |---|---|---|
//! | ISCAS'89 | 1 159 | 148.88 ± 87.56 |
//! | ITC'99 | 1 691 | 272.6 ± 108.33 |
//! | OpenCores | 7 684 | 211.41 ± 81.37 |
//!
//! [`Family`] encodes those statistics; [`generate_family`] draws synthetic
//! subcircuits matching them (see [`crate::random`] for why synthesis stands
//! in for the real files). Counts are scaled by a budget factor for CPU
//! training; the distribution parameters are untouched.

use deepseq_netlist::{FamilyStats, SeqAig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::random::{random_circuit, sample_spec};

/// The benchmark families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// ISCAS'89 sequential benchmarks (controller-heavy, small).
    Iscas89,
    /// ITC'99 benchmarks (larger, deeper).
    Itc99,
    /// OpenCores designs (datapath-heavy).
    Opencores,
}

impl Family {
    /// All families, in Table I order.
    pub fn all() -> [Family; 3] {
        [Family::Iscas89, Family::Itc99, Family::Opencores]
    }

    /// Display name as in Table I.
    pub fn name(self) -> &'static str {
        match self {
            Family::Iscas89 => "ISCAS'89",
            Family::Itc99 => "ITC'99",
            Family::Opencores => "Opencores",
        }
    }

    /// Paper subcircuit count (Table I).
    pub fn paper_count(self) -> usize {
        match self {
            Family::Iscas89 => 1_159,
            Family::Itc99 => 1_691,
            Family::Opencores => 7_684,
        }
    }

    /// Node count distribution `(mean, std)` from Table I.
    pub fn size_distribution(self) -> (f64, f64) {
        match self {
            Family::Iscas89 => (148.88, 87.56),
            Family::Itc99 => (272.6, 108.33),
            Family::Opencores => (211.41, 81.37),
        }
    }

    /// Structural flavour: `(pi_fraction, ff_fraction)` of total nodes.
    /// Controllers (ISCAS'89) carry relatively more state; datapath designs
    /// (OpenCores) more reconvergent logic.
    pub fn flavour(self) -> (f64, f64) {
        match self {
            Family::Iscas89 => (0.08, 0.10),
            Family::Itc99 => (0.05, 0.07),
            Family::Opencores => (0.06, 0.08),
        }
    }
}

/// Generates `count` random subcircuits following a family's statistics.
pub fn generate_family(family: Family, count: usize, seed: u64) -> Vec<SeqAig> {
    let mut rng = StdRng::seed_from_u64(seed ^ family_tag(family));
    let (mean, std) = family.size_distribution();
    let (pi_frac, ff_frac) = family.flavour();
    (0..count)
        .map(|i| {
            let spec = sample_spec(mean, std, pi_frac, ff_frac, &mut rng);
            random_circuit(&format!("{}_{i}", family.name()), &spec, &mut rng)
        })
        .collect()
}

fn family_tag(family: Family) -> u64 {
    match family {
        Family::Iscas89 => 0x1111,
        Family::Itc99 => 0x2222,
        Family::Opencores => 0x3333,
    }
}

/// A labelled training corpus: circuits grouped by family.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// `(family, circuits)` pairs in Table I order.
    pub families: Vec<(Family, Vec<SeqAig>)>,
}

impl Corpus {
    /// Generates a corpus with `budget` total circuits, distributed across
    /// families proportionally to the paper counts (Table I).
    pub fn generate(budget: usize, seed: u64) -> Self {
        let total_paper: usize = Family::all().iter().map(|f| f.paper_count()).sum();
        let families = Family::all()
            .into_iter()
            .map(|f| {
                let share = (budget as f64 * f.paper_count() as f64 / total_paper as f64)
                    .round()
                    .max(1.0) as usize;
                (f, generate_family(f, share, seed))
            })
            .collect();
        Corpus { families }
    }

    /// All circuits flattened.
    pub fn circuits(&self) -> Vec<&SeqAig> {
        self.families.iter().flat_map(|(_, cs)| cs.iter()).collect()
    }

    /// Total circuit count.
    pub fn len(&self) -> usize {
        self.families.iter().map(|(_, cs)| cs.len()).sum()
    }

    /// True if the corpus has no circuits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-family statistics (one row of Table I per entry).
    pub fn stats(&self) -> Vec<FamilyStats> {
        self.families
            .iter()
            .map(|(f, cs)| FamilyStats::of(f.name(), cs.iter()))
            .collect()
    }
}

/// Samples one random workload seed per circuit (the paper randomly
/// generates one workload per netlist).
pub fn workload_seeds(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_metadata_matches_table1() {
        assert_eq!(Family::Iscas89.paper_count(), 1_159);
        assert_eq!(Family::Itc99.paper_count(), 1_691);
        assert_eq!(Family::Opencores.paper_count(), 7_684);
        let (m, s) = Family::Itc99.size_distribution();
        assert_eq!(m, 272.6);
        assert_eq!(s, 108.33);
    }

    #[test]
    fn generated_family_tracks_distribution() {
        let circuits = generate_family(Family::Opencores, 120, 0);
        let stats = FamilyStats::of("test", circuits.iter());
        let (mean, _) = Family::Opencores.size_distribution();
        assert_eq!(stats.count, 120);
        assert!(
            (stats.mean_nodes - mean).abs() < 30.0,
            "mean {} vs target {mean}",
            stats.mean_nodes
        );
        assert!(stats.std_nodes > 30.0, "std too small: {}", stats.std_nodes);
    }

    #[test]
    fn all_generated_circuits_validate() {
        for family in Family::all() {
            for aig in generate_family(family, 15, 1) {
                assert!(aig.validate().is_ok());
            }
        }
    }

    #[test]
    fn corpus_distributes_proportionally() {
        let corpus = Corpus::generate(100, 0);
        assert_eq!(corpus.families.len(), 3);
        // OpenCores dominates Table I (73% of circuits).
        let opencores = corpus
            .families
            .iter()
            .find(|(f, _)| *f == Family::Opencores)
            .map(|(_, cs)| cs.len())
            .unwrap();
        assert!(opencores >= 60, "opencores share {opencores}");
        assert!((95..=105).contains(&corpus.len()), "total {}", corpus.len());
    }

    #[test]
    fn corpus_stats_have_three_rows() {
        let corpus = Corpus::generate(30, 2);
        let stats = corpus.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.count > 0));
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_family(Family::Iscas89, 5, 42);
        let b = generate_family(Family::Iscas89, 5, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn workload_seeds_are_distinct() {
        let seeds = workload_seeds(50, 0);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 50);
    }
}
