//! Benchmark circuit generation for the DeepSeq reproduction.
//!
//! The paper trains on subcircuits extracted from ISCAS'89 / ITC'99 /
//! OpenCores netlists (Table I) and evaluates downstream tasks on six large
//! OpenCores designs (Table IV). Neither corpus is available offline, so
//! this crate synthesizes stand-ins:
//!
//! * [`random`] — parameterized random sequential AIGs;
//! * [`dataset`] — family presets matching Table I statistics and corpus
//!   assembly;
//! * [`blocks`] / [`designs`] — structural analogs of the six Table IV test
//!   designs (router, PLL, timer, RTC, audio controller, memory controller)
//!   built from real hardware blocks;
//! * [`extract`] — output-cone subcircuit extraction (the paper's 150–300
//!   node windows), usable on real netlists parsed from `.bench` files.
//!
//! # Example
//!
//! ```
//! use deepseq_data::dataset::{Corpus, Family};
//!
//! let corpus = Corpus::generate(30, 0);
//! assert_eq!(corpus.families.len(), 3);
//! for stats in corpus.stats() {
//!     println!("{stats}");
//! }
//! let iscas = &corpus.families[0];
//! assert_eq!(iscas.0, Family::Iscas89);
//! ```

#![warn(missing_docs)]

pub mod blocks;
pub mod dataset;
pub mod designs;
pub mod extract;
pub mod random;

pub use dataset::{generate_family, Corpus, Family};
pub use designs::{all_designs, design_by_name, paper_node_count};
pub use extract::{extract_cone, extract_random_cones, ExtractOptions};
pub use random::{random_circuit, sample_spec, CircuitSpec};
