//! Parameterized random sequential-circuit generation.
//!
//! The paper trains on 10 534 subcircuits (150–300 nodes) extracted from
//! ISCAS'89, ITC'99 and OpenCores netlists (Table I). Those benchmark files
//! are not available offline, so this module generates random sequential
//! AIGs whose structural statistics (size distribution, FF fraction, depth,
//! reconvergence) are matched per family. Training consumes only the graph
//! structure and simulated probabilities, so the learning problem is
//! unchanged; a `.bench` parser exists for dropping in the real netlists.

use deepseq_netlist::{NodeId, SeqAig};
use rand::Rng;

/// Structural recipe for a random sequential AIG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitSpec {
    /// Primary input count.
    pub num_pis: usize,
    /// Flip-flop count.
    pub num_ffs: usize,
    /// Target gate (AND + NOT) count.
    pub num_gates: usize,
    /// Fraction of gates that are inverters (the rest are ANDs).
    pub not_fraction: f64,
    /// Locality window: fanins are drawn from the most recent `window`
    /// nodes with high probability, which produces deep circuits; larger
    /// windows flatten the circuit and add reconvergent fanout.
    pub window: usize,
    /// Probability of drawing a fanin uniformly from *all* nodes instead of
    /// the window (reconvergence / global signals such as resets).
    pub long_edge_prob: f64,
}

impl Default for CircuitSpec {
    fn default() -> Self {
        CircuitSpec {
            num_pis: 8,
            num_ffs: 8,
            num_gates: 180,
            not_fraction: 0.35,
            window: 24,
            long_edge_prob: 0.12,
        }
    }
}

impl CircuitSpec {
    /// Total node count this spec produces.
    pub fn total_nodes(&self) -> usize {
        self.num_pis + self.num_ffs + self.num_gates
    }
}

/// Generates a random sequential AIG following `spec`.
///
/// The result always validates: combinational fanins reference older nodes,
/// every FF gets a D input (drawn from the deepest quarter of the circuit so
/// feedback spans real logic), and the last few sink nodes are marked as
/// outputs.
pub fn random_circuit<R: Rng + ?Sized>(name: &str, spec: &CircuitSpec, rng: &mut R) -> SeqAig {
    let mut aig = SeqAig::new(name);
    for i in 0..spec.num_pis.max(1) {
        aig.add_pi(format!("pi{i}"));
    }
    let mut ffs = Vec::with_capacity(spec.num_ffs);
    for i in 0..spec.num_ffs {
        ffs.push(aig.add_ff(format!("ff{i}"), rng.gen_bool(0.5)));
    }

    let pick = |aig: &SeqAig, rng: &mut R| -> NodeId {
        let len = aig.len();
        if rng.gen_bool(spec.long_edge_prob) || len <= spec.window {
            NodeId(rng.gen_range(0..len) as u32)
        } else {
            let lo = len - spec.window;
            NodeId(rng.gen_range(lo..len) as u32)
        }
    };

    // Track an independence estimate of each node's logic-1 probability so
    // the generated logic keeps mid-range signal statistics, as real
    // (NAND-rich, parity-bearing) netlists do. Unchecked random AND chains
    // drive every deep signal to a constant, which makes the learning
    // labels degenerate.
    let mut p_est: Vec<f64> = vec![0.5; aig.len()];
    p_est.reserve(spec.total_nodes().saturating_sub(aig.len()));
    while aig.len() < spec.total_nodes() {
        let r: f64 = rng.gen();
        if r < spec.not_fraction {
            let a = pick(&aig, rng);
            aig.add_not(a);
            p_est.push(1.0 - p_est[a.index()]);
        } else if r < spec.not_fraction + 0.15 && aig.len() + 7 <= spec.total_nodes() {
            // XOR block (parity/adder-style logic keeps probabilities
            // balanced): x ^ y as 7 AIG nodes.
            let a = pick(&aig, rng);
            let b = pick(&aig, rng);
            let (pa, pb) = (p_est[a.index()], p_est[b.index()]);
            let na = aig.add_not(a);
            let nb = aig.add_not(b);
            let t0 = aig.add_and(a, nb);
            let t1 = aig.add_and(na, b);
            let n0 = aig.add_not(t0);
            let n1 = aig.add_not(t1);
            let x = aig.add_and(n0, n1); // == NOT(a^b)
            let p_t0 = pa * (1.0 - pb);
            let p_t1 = (1.0 - pa) * pb;
            p_est.extend([
                1.0 - pa,
                1.0 - pb,
                p_t0,
                p_t1,
                1.0 - p_t0,
                1.0 - p_t1,
                1.0 - (p_t0 + p_t1),
            ]);
            let _ = x;
        } else {
            // AND with probability balancing: if the estimated output would
            // be nearly constant, invert the weaker input first.
            let a = pick(&aig, rng);
            let b = pick(&aig, rng);
            let (mut a, mut pa) = (a, p_est[a.index()]);
            let (mut b, mut pb) = (b, p_est[b.index()]);
            if pa * pb < 0.08 && aig.len() + 2 <= spec.total_nodes() {
                if pa <= pb {
                    a = aig.add_not(a);
                    p_est.push(1.0 - pa);
                    pa = 1.0 - pa;
                } else {
                    b = aig.add_not(b);
                    p_est.push(1.0 - pb);
                    pb = 1.0 - pb;
                }
            }
            aig.add_and(a, b);
            p_est.push(pa * pb);
        }
    }

    // FF feedback from the deeper part of the circuit.
    let len = aig.len();
    let lo = len.saturating_sub(len / 4).max(1);
    for &ff in &ffs {
        let d = NodeId(rng.gen_range(lo..len) as u32);
        aig.connect_ff(ff, d).expect("ff connect");
    }

    // Mark a handful of late nodes as outputs.
    let num_outputs = (len / 40).clamp(1, 8);
    for k in 0..num_outputs {
        let id = NodeId((len - 1 - k) as u32);
        aig.set_output(id, format!("po{k}"));
    }
    aig
}

/// Draws a spec with sizes from a truncated normal distribution
/// (`mean ± std`, clamped to `[min, max]` nodes) with family-flavoured
/// PI/FF ratios.
pub fn sample_spec<R: Rng + ?Sized>(
    mean_nodes: f64,
    std_nodes: f64,
    pi_fraction: f64,
    ff_fraction: f64,
    rng: &mut R,
) -> CircuitSpec {
    // Box–Muller normal sample.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let nodes = (mean_nodes + std_nodes * z).clamp(40.0, mean_nodes + 3.0 * std_nodes) as usize;
    let num_pis = ((nodes as f64 * pi_fraction) as usize).max(2);
    let num_ffs = ((nodes as f64 * ff_fraction) as usize).max(1);
    let num_gates = nodes.saturating_sub(num_pis + num_ffs).max(8);
    CircuitSpec {
        num_pis,
        num_ffs,
        num_gates,
        not_fraction: rng.gen_range(0.25..0.45),
        window: rng.gen_range(12..40),
        long_edge_prob: rng.gen_range(0.05..0.2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::Levels;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_circuits_validate() {
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..20 {
            let spec = sample_spec(200.0, 80.0, 0.05, 0.05, &mut rng);
            let aig = random_circuit(&format!("c{i}"), &spec, &mut rng);
            assert!(aig.validate().is_ok(), "circuit {i} invalid");
            assert!(!aig.outputs().is_empty());
        }
    }

    #[test]
    fn spec_counts_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = CircuitSpec {
            num_pis: 5,
            num_ffs: 3,
            num_gates: 50,
            ..CircuitSpec::default()
        };
        let aig = random_circuit("c", &spec, &mut rng);
        assert_eq!(aig.num_pis(), 5);
        assert_eq!(aig.num_ffs(), 3);
        assert_eq!(aig.num_ands() + aig.num_nots(), 50);
        assert_eq!(aig.len(), spec.total_nodes());
    }

    #[test]
    fn locality_window_controls_depth() {
        let mut rng = StdRng::seed_from_u64(2);
        let deep_spec = CircuitSpec {
            window: 4,
            long_edge_prob: 0.0,
            num_gates: 300,
            ..CircuitSpec::default()
        };
        let flat_spec = CircuitSpec {
            window: 300,
            long_edge_prob: 0.0,
            num_gates: 300,
            ..CircuitSpec::default()
        };
        let deep = random_circuit("deep", &deep_spec, &mut rng);
        let flat = random_circuit("flat", &flat_spec, &mut rng);
        let d1 = Levels::build(&deep).depth();
        let d2 = Levels::build(&flat).depth();
        assert!(d1 > d2, "window should control depth: {d1} vs {d2}");
    }

    #[test]
    fn sampled_sizes_track_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<f64> = (0..200)
            .map(|_| sample_spec(220.0, 30.0, 0.05, 0.05, &mut rng).total_nodes() as f64)
            .collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!((mean - 220.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = CircuitSpec::default();
        let a = random_circuit("a", &spec, &mut StdRng::seed_from_u64(9));
        let b = random_circuit("a", &spec, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1, y.1);
        }
    }
}
