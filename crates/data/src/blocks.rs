//! Reusable structural hardware blocks (counters, shift registers, adders,
//! arbiters…) over the generic [`Netlist`] representation.
//!
//! The six large test designs of the paper (Table IV) are OpenCores IPs; the
//! [`designs`](crate::designs) module rebuilds analogous circuits from these
//! blocks at roughly the paper's node counts.

use deepseq_netlist::netlist::{GateId, GateKind, Netlist};

/// A constant-0 signal (a self-feeding DFF initialized to 0).
pub fn const_zero(nl: &mut Netlist, name: &str) -> GateId {
    let z = nl.add_dff(format!("{name}_const0"), false);
    nl.connect_dff(z, z).expect("z is a DFF");
    z
}

/// A constant-1 signal.
pub fn const_one(nl: &mut Netlist, name: &str) -> GateId {
    let o = nl.add_dff(format!("{name}_const1"), true);
    nl.connect_dff(o, o).expect("o is a DFF");
    o
}

/// A bank of D flip-flops loading `d` every cycle; returns the Q outputs.
pub fn register(nl: &mut Netlist, name: &str, d: &[GateId]) -> Vec<GateId> {
    d.iter()
        .enumerate()
        .map(|(i, &di)| {
            let q = nl.add_dff(format!("{name}_q{i}"), false);
            nl.connect_dff(q, di).expect("q is a DFF");
            q
        })
        .collect()
}

/// A register with a load-enable: `q' = en ? d : q`.
pub fn register_en(nl: &mut Netlist, name: &str, d: &[GateId], en: GateId) -> Vec<GateId> {
    d.iter()
        .enumerate()
        .map(|(i, &di)| {
            let q = nl.add_dff(format!("{name}_q{i}"), false);
            let next = nl.add_gate(GateKind::Mux, vec![en, q, di]);
            nl.connect_dff(q, next).expect("q is a DFF");
            q
        })
        .collect()
}

/// Binary up-counter with enable; returns Q bits, LSB first.
pub fn counter(nl: &mut Netlist, name: &str, bits: usize, en: GateId) -> Vec<GateId> {
    let qs: Vec<GateId> = (0..bits)
        .map(|i| nl.add_dff(format!("{name}_c{i}"), false))
        .collect();
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let next = nl.add_gate(GateKind::Xor, vec![q, carry]);
        nl.connect_dff(q, next).expect("q is a DFF");
        if i + 1 < bits {
            carry = nl.add_gate(GateKind::And, vec![q, carry]);
        }
    }
    qs
}

/// Serial-in shift register; returns all stage outputs, oldest last.
pub fn shift_register(nl: &mut Netlist, name: &str, input: GateId, len: usize) -> Vec<GateId> {
    let mut prev = input;
    let mut stages = Vec::with_capacity(len);
    for i in 0..len {
        let q = nl.add_dff(format!("{name}_s{i}"), false);
        nl.connect_dff(q, prev).expect("q is a DFF");
        stages.push(q);
        prev = q;
    }
    stages
}

/// Fibonacci LFSR over `bits` stages with feedback taps (1-based stage
/// indices); stage 0 is seeded to 1 so the register never locks up.
///
/// # Panics
/// Panics if `taps` is empty or a tap exceeds `bits`.
pub fn lfsr(nl: &mut Netlist, name: &str, bits: usize, taps: &[usize]) -> Vec<GateId> {
    assert!(!taps.is_empty(), "lfsr needs at least one tap");
    assert!(
        taps.iter().all(|&t| t >= 1 && t <= bits),
        "tap out of range"
    );
    let qs: Vec<GateId> = (0..bits)
        .map(|i| {
            // Seed 0b…001.
            nl.add_dff(format!("{name}_l{i}"), i == 0)
        })
        .collect();
    let tap_signals: Vec<GateId> = taps.iter().map(|&t| qs[t - 1]).collect();
    let feedback = if tap_signals.len() == 1 {
        nl.add_gate(GateKind::Buf, vec![tap_signals[0]])
    } else {
        nl.add_gate(GateKind::Xor, tap_signals)
    };
    // Shift: q0 <- feedback, q_{i} <- q_{i-1}.
    nl.connect_dff(qs[0], feedback).expect("q0 is a DFF");
    for i in 1..bits {
        nl.connect_dff(qs[i], qs[i - 1]).expect("qi is a DFF");
    }
    qs
}

/// Ripple-carry adder; returns `(sum_bits, carry_out)`.
///
/// # Panics
/// Panics if `a` and `b` have different widths.
pub fn ripple_adder(
    nl: &mut Netlist,
    a: &[GateId],
    b: &[GateId],
    carry_in: GateId,
) -> (Vec<GateId>, GateId) {
    assert_eq!(a.len(), b.len(), "adder width mismatch");
    let mut carry = carry_in;
    let mut sums = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let axb = nl.add_gate(GateKind::Xor, vec![ai, bi]);
        let sum = nl.add_gate(GateKind::Xor, vec![axb, carry]);
        let t1 = nl.add_gate(GateKind::And, vec![ai, bi]);
        let t2 = nl.add_gate(GateKind::And, vec![axb, carry]);
        carry = nl.add_gate(GateKind::Or, vec![t1, t2]);
        sums.push(sum);
    }
    (sums, carry)
}

/// Equality comparator over two equal-width buses.
pub fn equals(nl: &mut Netlist, a: &[GateId], b: &[GateId]) -> GateId {
    assert_eq!(a.len(), b.len(), "comparator width mismatch");
    let bit_eq: Vec<GateId> = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.add_gate(GateKind::Xnor, vec![ai, bi]))
        .collect();
    and_tree(nl, &bit_eq)
}

/// `a < b` over equal-width buses (unsigned, ripple borrow).
pub fn less_than(nl: &mut Netlist, a: &[GateId], b: &[GateId]) -> GateId {
    assert_eq!(a.len(), b.len(), "comparator width mismatch");
    // borrow_{i+1} = (!a_i & b_i) | ((a_i XNOR b_i) & borrow_i)
    let mut borrow = const_zero(nl, "lt");
    for (&ai, &bi) in a.iter().zip(b) {
        let na = nl.add_gate(GateKind::Not, vec![ai]);
        let t1 = nl.add_gate(GateKind::And, vec![na, bi]);
        let eq = nl.add_gate(GateKind::Xnor, vec![ai, bi]);
        let t2 = nl.add_gate(GateKind::And, vec![eq, borrow]);
        borrow = nl.add_gate(GateKind::Or, vec![t1, t2]);
    }
    borrow
}

/// Balanced AND reduction tree.
pub fn and_tree(nl: &mut Netlist, xs: &[GateId]) -> GateId {
    reduce_tree(nl, xs, GateKind::And)
}

/// Balanced OR reduction tree.
pub fn or_tree(nl: &mut Netlist, xs: &[GateId]) -> GateId {
    reduce_tree(nl, xs, GateKind::Or)
}

fn reduce_tree(nl: &mut Netlist, xs: &[GateId], kind: GateKind) -> GateId {
    assert!(!xs.is_empty(), "reduction over empty input");
    let mut layer: Vec<GateId> = xs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.add_gate(kind, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Per-bit 2:1 mux over two buses: `sel ? b : a`.
pub fn mux_bus(nl: &mut Netlist, sel: GateId, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
    assert_eq!(a.len(), b.len(), "mux width mismatch");
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.add_gate(GateKind::Mux, vec![sel, ai, bi]))
        .collect()
}

/// Mux tree selecting one of `inputs.len()` equal-width buses with binary
/// select lines (`sels.len() = ceil(log2(inputs))`, LSB first). Missing
/// inputs repeat the last bus.
pub fn mux_tree(nl: &mut Netlist, sels: &[GateId], inputs: &[Vec<GateId>]) -> Vec<GateId> {
    assert!(!inputs.is_empty(), "mux tree over no inputs");
    let mut layer: Vec<Vec<GateId>> = inputs.to_vec();
    for &sel in sels {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(mux_bus(nl, sel, &pair[0], &pair[1]));
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
        if layer.len() == 1 {
            break;
        }
    }
    layer.swap_remove(0)
}

/// Binary decoder: `2^sels.len()` one-hot outputs.
pub fn decoder(nl: &mut Netlist, sels: &[GateId]) -> Vec<GateId> {
    let n = 1usize << sels.len();
    let nots: Vec<GateId> = sels
        .iter()
        .map(|&s| nl.add_gate(GateKind::Not, vec![s]))
        .collect();
    (0..n)
        .map(|value| {
            let literals: Vec<GateId> = sels
                .iter()
                .enumerate()
                .map(|(bit, &s)| {
                    if (value >> bit) & 1 == 1 {
                        s
                    } else {
                        nots[bit]
                    }
                })
                .collect();
            and_tree(nl, &literals)
        })
        .collect()
}

/// Fixed-priority arbiter: `grant_i = req_i ∧ ¬(req_0 ∨ … ∨ req_{i-1})`.
pub fn priority_arbiter(nl: &mut Netlist, reqs: &[GateId]) -> Vec<GateId> {
    let mut grants = Vec::with_capacity(reqs.len());
    let mut any_before: Option<GateId> = None;
    for &req in reqs {
        let grant = match any_before {
            None => nl.add_gate(GateKind::Buf, vec![req]),
            Some(prev) => {
                let n = nl.add_gate(GateKind::Not, vec![prev]);
                nl.add_gate(GateKind::And, vec![req, n])
            }
        };
        grants.push(grant);
        any_before = Some(match any_before {
            None => req,
            Some(prev) => nl.add_gate(GateKind::Or, vec![prev, req]),
        });
    }
    grants
}

/// Round-robin arbiter: a rotating pointer (counter advanced on any grant)
/// masks the requests; masked requests win first, otherwise plain priority.
pub fn round_robin_arbiter(nl: &mut Netlist, name: &str, reqs: &[GateId]) -> Vec<GateId> {
    let n = reqs.len();
    let ptr_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
    let any_req = or_tree(nl, reqs);
    let ptr = counter(nl, &format!("{name}_ptr"), ptr_bits.max(1), any_req);
    let onehot = decoder(nl, &ptr);
    // mask_i = 1 for i >= ptr: thermometer from the one-hot pointer.
    let mut masked = Vec::with_capacity(n);
    let mut thermo: Option<GateId> = None;
    for i in 0..n {
        thermo = Some(match thermo {
            None => nl.add_gate(GateKind::Buf, vec![onehot[i]]),
            Some(prev) => nl.add_gate(GateKind::Or, vec![prev, onehot[i]]),
        });
        let m = thermo.expect("set above");
        masked.push(nl.add_gate(GateKind::And, vec![reqs[i], m]));
    }
    let masked_grants = priority_arbiter(nl, &masked);
    let plain_grants = priority_arbiter(nl, reqs);
    let any_masked = or_tree(nl, &masked);
    // grant = any_masked ? masked_grant : plain_grant
    (0..n)
        .map(|i| {
            nl.add_gate(
                GateKind::Mux,
                vec![any_masked, plain_grants[i], masked_grants[i]],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::{simulate_netlist, SimOptions, Workload};

    fn opts() -> SimOptions {
        SimOptions {
            cycles: 600,
            warmup: 32,
            seed: 5,
        }
    }

    #[test]
    fn counter_bit_rates_halve() {
        let mut nl = Netlist::new("cnt");
        let one = const_one(&mut nl, "t");
        let qs = counter(&mut nl, "c", 4, one);
        for (i, q) in qs.iter().enumerate() {
            nl.set_output(*q, format!("q{i}"));
        }
        let r = simulate_netlist(&nl, &Workload::uniform(0, 0.5), &opts());
        // Bit i toggles every 2^i cycles: p01 = 2^-(i+1).
        for (i, q) in qs.iter().enumerate() {
            let expected = 0.5f64.powi(i as i32 + 1);
            let p01 = r.probs.p01[q.index()];
            assert!(
                (p01 - expected).abs() < 0.02,
                "bit {i}: p01 {p01} expected {expected}"
            );
        }
    }

    #[test]
    fn counter_disabled_holds() {
        let mut nl = Netlist::new("cnt");
        let zero = const_zero(&mut nl, "t");
        let qs = counter(&mut nl, "c", 3, zero);
        nl.set_output(qs[0], "q0");
        let r = simulate_netlist(&nl, &Workload::uniform(0, 0.5), &opts());
        assert_eq!(r.probs.toggle_rate(qs[0].index()), 0.0);
    }

    #[test]
    fn shift_register_delays_probability() {
        let mut nl = Netlist::new("sr");
        let d = nl.add_input("d");
        let stages = shift_register(&mut nl, "s", d, 5);
        nl.set_output(*stages.last().unwrap(), "out");
        let r = simulate_netlist(&nl, &Workload::uniform(1, 0.3), &opts());
        for s in &stages {
            assert!((r.probs.p1[s.index()] - 0.3).abs() < 0.03);
        }
    }

    #[test]
    fn lfsr_is_balanced_and_never_locks() {
        let mut nl = Netlist::new("lfsr");
        // x^4 + x^3 + 1 maximal-length taps.
        let qs = lfsr(&mut nl, "l", 4, &[4, 3]);
        nl.set_output(qs[3], "out");
        let r = simulate_netlist(&nl, &Workload::uniform(0, 0.5), &opts());
        // Max-length LFSR emits 8 ones per 15-cycle period: p1 = 8/15.
        let p1 = r.probs.p1[qs[3].index()];
        assert!((p1 - 8.0 / 15.0).abs() < 0.05, "p1 {p1}");
        assert!(r.probs.toggle_rate(qs[0].index()) > 0.0);
    }

    #[test]
    fn adder_matches_truth_table() {
        let mut nl = Netlist::new("add");
        let a0 = nl.add_input("a0");
        let b0 = nl.add_input("b0");
        let zero = const_zero(&mut nl, "t");
        let (sums, cout) = ripple_adder(&mut nl, &[a0], &[b0], zero);
        nl.set_output(sums[0], "s");
        nl.set_output(cout, "c");
        let r = simulate_netlist(&nl, &Workload::uniform(2, 0.5), &opts());
        // s = a XOR b: p1 = 0.5; c = a AND b: p1 = 0.25.
        assert!((r.probs.p1[sums[0].index()] - 0.5).abs() < 0.03);
        assert!((r.probs.p1[cout.index()] - 0.25).abs() < 0.03);
    }

    #[test]
    fn equals_fires_at_expected_rate() {
        let mut nl = Netlist::new("eq");
        let a: Vec<GateId> = (0..3).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<GateId> = (0..3).map(|i| nl.add_input(format!("b{i}"))).collect();
        let eq = equals(&mut nl, &a, &b);
        nl.set_output(eq, "eq");
        let r = simulate_netlist(&nl, &Workload::uniform(6, 0.5), &opts());
        // P(a == b) for 3 random bits = (1/2)^3.
        assert!((r.probs.p1[eq.index()] - 0.125).abs() < 0.02);
    }

    #[test]
    fn less_than_uniform_rate() {
        let mut nl = Netlist::new("lt");
        let a: Vec<GateId> = (0..3).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<GateId> = (0..3).map(|i| nl.add_input(format!("b{i}"))).collect();
        let lt = less_than(&mut nl, &a, &b);
        nl.set_output(lt, "lt");
        let r = simulate_netlist(&nl, &Workload::uniform(6, 0.5), &opts());
        // P(a < b) for uniform 3-bit values = (64 - 8) / 2 / 64 = 0.4375.
        assert!((r.probs.p1[lt.index()] - 0.4375).abs() < 0.03);
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut nl = Netlist::new("dec");
        let s: Vec<GateId> = (0..2).map(|i| nl.add_input(format!("s{i}"))).collect();
        let outs = decoder(&mut nl, &s);
        assert_eq!(outs.len(), 4);
        let hot = or_tree(&mut nl, &outs);
        nl.set_output(hot, "any");
        let r = simulate_netlist(&nl, &Workload::uniform(2, 0.5), &opts());
        // Exactly one output is always hot.
        assert!((r.probs.p1[hot.index()] - 1.0).abs() < 1e-9);
        for o in &outs {
            assert!((r.probs.p1[o.index()] - 0.25).abs() < 0.03);
        }
    }

    #[test]
    fn priority_arbiter_grants_exclusively() {
        let mut nl = Netlist::new("arb");
        let reqs: Vec<GateId> = (0..3).map(|i| nl.add_input(format!("r{i}"))).collect();
        let grants = priority_arbiter(&mut nl, &reqs);
        // At most one grant: OR of pairwise ANDs must be 0.
        let g01 = nl.add_gate(GateKind::And, vec![grants[0], grants[1]]);
        let g02 = nl.add_gate(GateKind::And, vec![grants[0], grants[2]]);
        let g12 = nl.add_gate(GateKind::And, vec![grants[1], grants[2]]);
        let overlap = or_tree(&mut nl, &[g01, g02, g12]);
        nl.set_output(overlap, "overlap");
        let r = simulate_netlist(&nl, &Workload::uniform(3, 0.5), &opts());
        assert_eq!(r.probs.p1[overlap.index()], 0.0);
        // Grant 0 tracks request 0 exactly.
        assert!((r.probs.p1[grants[0].index()] - 0.5).abs() < 0.03);
    }

    #[test]
    fn round_robin_arbiter_grants_exclusively() {
        let mut nl = Netlist::new("rr");
        let reqs: Vec<GateId> = (0..4).map(|i| nl.add_input(format!("r{i}"))).collect();
        let grants = round_robin_arbiter(&mut nl, "rr", &reqs);
        let mut overlaps = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                overlaps.push(nl.add_gate(GateKind::And, vec![grants[i], grants[j]]));
            }
        }
        let overlap = or_tree(&mut nl, &overlaps);
        let any_grant = or_tree(&mut nl, &grants);
        let any_req = or_tree(&mut nl, &reqs);
        // A request must imply a grant: any_req AND NOT any_grant == 0.
        let ng = nl.add_gate(GateKind::Not, vec![any_grant]);
        let starved = nl.add_gate(GateKind::And, vec![any_req, ng]);
        nl.set_output(overlap, "overlap");
        nl.set_output(starved, "starved");
        let r = simulate_netlist(&nl, &Workload::uniform(4, 0.4), &opts());
        assert_eq!(r.probs.p1[overlap.index()], 0.0, "two grants at once");
        assert_eq!(r.probs.p1[starved.index()], 0.0, "request starved");
    }

    #[test]
    fn mux_tree_selects() {
        let mut nl = Netlist::new("mt");
        let sels: Vec<GateId> = (0..2).map(|i| nl.add_input(format!("s{i}"))).collect();
        let buses: Vec<Vec<GateId>> = (0..4)
            .map(|i| vec![nl.add_input(format!("d{i}"))])
            .collect();
        let out = mux_tree(&mut nl, &sels, &buses);
        nl.set_output(out[0], "y");
        assert!(nl.validate().is_ok());
        let r = simulate_netlist(&nl, &Workload::uniform(6, 0.5), &opts());
        assert!((r.probs.p1[out[0].index()] - 0.5).abs() < 0.03);
    }

    #[test]
    fn constants_hold_their_values() {
        let mut nl = Netlist::new("c");
        let z = const_zero(&mut nl, "a");
        let o = const_one(&mut nl, "b");
        nl.set_output(z, "z");
        nl.set_output(o, "o");
        let r = simulate_netlist(&nl, &Workload::uniform(0, 0.5), &opts());
        assert_eq!(r.probs.p1[z.index()], 0.0);
        assert_eq!(r.probs.p1[o.index()], 1.0);
    }
}
