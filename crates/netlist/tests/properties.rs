//! Property-based tests for the netlist crate: random graphs must uphold the
//! structural invariants the rest of the workspace relies on.

use deepseq_netlist::level::{check_levels, Levels};
use deepseq_netlist::netlist::{GateKind, Netlist};
use deepseq_netlist::{lower_to_aig, AigNode, SeqAig};
use proptest::prelude::*;

/// Strategy: a random sequential AIG described by a seed-like recipe.
/// Generates `n_pi` PIs, `n_ff` FFs, then `n_gate` gates whose fanins are
/// drawn from already-created nodes; finally connects each FF to a random node.
fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..6, 0usize..5, 0usize..40, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                let a = deepseq_netlist::NodeId(next(len) as u32);
                aig.add_not(a);
            } else {
                let a = deepseq_netlist::NodeId(next(len) as u32);
                let b = deepseq_netlist::NodeId(next(len) as u32);
                aig.add_and(a, b);
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            let d = deepseq_netlist::NodeId(next(len) as u32);
            aig.connect_ff(ff, d).expect("ff connect");
        }
        let last = deepseq_netlist::NodeId((len - 1) as u32);
        aig.set_output(last, "out");
        aig
    })
}

/// Strategy: a random generic netlist (comb gates reference earlier gates,
/// DFFs may reference anything — resolved at the end).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (1usize..5, 0usize..4, 0usize..25, any::<u64>()).prop_map(|(n_in, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Mux,
        ];
        let mut nl = Netlist::new("prop");
        for i in 0..n_in {
            nl.add_input(format!("in{i}"));
        }
        let mut dffs = Vec::new();
        for i in 0..n_ff {
            dffs.push(nl.add_dff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = nl.len();
            let kind = kinds[next(kinds.len())];
            let arity = match kind.fixed_arity() {
                Some(a) => a,
                None => 1 + next(3),
            };
            let fanins = (0..arity)
                .map(|_| deepseq_netlist::GateId(next(len) as u32))
                .collect();
            nl.add_gate(kind, fanins);
        }
        let len = nl.len();
        for &dff in &dffs {
            let d = deepseq_netlist::GateId(next(len) as u32);
            nl.connect_dff(dff, d).expect("dff connect");
        }
        nl.set_output(deepseq_netlist::GateId((len - 1) as u32), "out");
        nl
    })
}

proptest! {
    #[test]
    fn random_aigs_validate(aig in arb_seq_aig()) {
        prop_assert!(aig.validate().is_ok());
    }

    #[test]
    fn levelization_is_consistent(aig in arb_seq_aig()) {
        let levels = Levels::build(&aig);
        prop_assert!(check_levels(&aig, &levels).is_none());
        // Sources exactly at level 0.
        for (id, node) in aig.iter() {
            let is_source = matches!(node, AigNode::Pi | AigNode::Ff { .. });
            prop_assert_eq!(levels.level_of(id) == 0, is_source);
        }
    }

    #[test]
    fn level_batches_partition(aig in arb_seq_aig()) {
        let levels = Levels::build(&aig);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, aig.len());
    }

    #[test]
    fn fanout_counts_equal_edge_count(aig in arb_seq_aig()) {
        let counts = aig.fanout_counts();
        let edges: usize = aig.iter().map(|(id, node)| {
            aig.comb_fanins(id).count() + usize::from(node.is_ff())
        }).sum();
        prop_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), edges);
    }

    #[test]
    fn random_netlists_lower_to_valid_aigs(nl in arb_netlist()) {
        let lowered = lower_to_aig(&nl).expect("lowering must succeed on valid netlists");
        prop_assert!(lowered.aig.validate().is_ok());
        // Every original gate maps to a real node.
        for (gid, _) in nl.iter() {
            prop_assert!(lowered.node_for(gid).index() < lowered.aig.len());
        }
        // FF counts match.
        prop_assert_eq!(nl.dffs().len(), lowered.aig.num_ffs());
        prop_assert_eq!(nl.inputs().len(), lowered.aig.num_pis());
    }

    #[test]
    fn bench_roundtrip_preserves_counts(nl in arb_netlist()) {
        let text = deepseq_netlist::bench_io::write_bench(&nl);
        let back = deepseq_netlist::bench_io::parse_bench(&text).expect("roundtrip parse");
        prop_assert_eq!(nl.len(), back.len());
        prop_assert_eq!(nl.inputs().len(), back.inputs().len());
        prop_assert_eq!(nl.dffs().len(), back.dffs().len());
        prop_assert_eq!(nl.outputs().len(), back.outputs().len());
    }

    #[test]
    fn structural_hash_invariant_under_renumbering(aig in arb_seq_aig(), perm_seed in any::<u64>()) {
        let renumbered = renumber(&aig, perm_seed);
        prop_assert!(renumbered.validate().is_ok());
        prop_assert_eq!(
            deepseq_netlist::structural_hash(&aig),
            deepseq_netlist::structural_hash(&renumbered),
            "renumbering changed the hash"
        );
    }

    #[test]
    fn structural_hash_distinguishes_modified_circuits(aig in arb_seq_aig(), perm_seed in any::<u64>()) {
        let original = deepseq_netlist::structural_hash(&aig);
        // Mutate the circuit structurally — a renumbered copy plus one extra
        // inverter marked as a fresh output is never isomorphic to the
        // original (node count differs).
        let mut modified = renumber(&aig, perm_seed);
        let last = deepseq_netlist::NodeId((modified.len() - 1) as u32);
        let extra = modified.add_not(last);
        modified.set_output(extra, "mutation");
        prop_assert_ne!(original, deepseq_netlist::structural_hash(&modified));
        // Flipping an FF power-on state is also a structural change: rebuild
        // the graph identically except for one init bit.
        if let Some(&ff) = aig.ffs().first() {
            let mut flipped = SeqAig::new("flip");
            for (id, node) in aig.iter() {
                match *node {
                    AigNode::Pi => { flipped.add_pi(aig.node_name(id).unwrap_or("p")); }
                    AigNode::And(a, b) => { flipped.add_and(a, b); }
                    AigNode::Not(a) => { flipped.add_not(a); }
                    AigNode::Ff { init, .. } => {
                        let flip = if id == ff { !init } else { init };
                        flipped.add_ff(aig.node_name(id).unwrap_or("f"), flip);
                    }
                }
            }
            for (id, node) in aig.iter() {
                if let AigNode::Ff { d: Some(dn), .. } = *node {
                    flipped.connect_ff(id, dn).expect("rebuild ff");
                }
            }
            for (node, name) in aig.outputs() {
                flipped.set_output(*node, name.clone());
            }
            prop_assert_ne!(original, deepseq_netlist::structural_hash(&flipped));
        }
    }
}

/// Rebuilds `aig` under a random valid topological reordering of node ids
/// (PIs/FFs anywhere, AND/NOT after their fanins), preserving names,
/// FF connections and outputs — the renumbering the canonical hash must be
/// blind to.
fn renumber(aig: &SeqAig, seed: u64) -> SeqAig {
    use deepseq_netlist::NodeId;
    let n = aig.len();
    let mut state = seed | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
    };
    let mut out = SeqAig::new(aig.name());
    let mut mapped: Vec<Option<NodeId>> = vec![None; n];
    let mut remaining: Vec<NodeId> = aig.iter().map(|(id, _)| id).collect();
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, id)| match *aig.node(**id) {
                AigNode::Pi | AigNode::Ff { .. } => true,
                AigNode::And(a, b) => mapped[a.index()].is_some() && mapped[b.index()].is_some(),
                AigNode::Not(a) => mapped[a.index()].is_some(),
            })
            .map(|(i, _)| i)
            .collect();
        let pick = ready[next(ready.len())];
        let id = remaining.swap_remove(pick);
        let new_id = match *aig.node(id) {
            AigNode::Pi => out.add_pi(aig.node_name(id).unwrap_or("pi")),
            AigNode::Ff { init, .. } => out.add_ff(aig.node_name(id).unwrap_or("ff"), init),
            AigNode::And(a, b) => {
                // Also randomize commutative fanin order.
                let (ma, mb) = (mapped[a.index()].unwrap(), mapped[b.index()].unwrap());
                if next(2) == 0 {
                    out.add_and(ma, mb)
                } else {
                    out.add_and(mb, ma)
                }
            }
            AigNode::Not(a) => out.add_not(mapped[a.index()].unwrap()),
        };
        mapped[id.index()] = Some(new_id);
    }
    for (id, node) in aig.iter() {
        if let AigNode::Ff { d: Some(d), .. } = *node {
            out.connect_ff(mapped[id.index()].unwrap(), mapped[d.index()].unwrap())
                .expect("renumbered FF connect");
        }
    }
    for (node, name) in aig.outputs() {
        out.set_output(mapped[node.index()].unwrap(), name.clone());
    }
    out
}
