//! Gate-level netlist representations for the DeepSeq reproduction.
//!
//! This crate provides the two circuit representations used throughout the
//! workspace:
//!
//! * [`SeqAig`] — a *sequential and-inverter graph*: primary inputs, 2-input
//!   AND gates, inverters and D flip-flops. This is the canonical form the
//!   DeepSeq model consumes (paper, Section III). FF feedback may create
//!   cycles; [`levels`](crate::level) cuts them by treating FFs as
//!   pseudo-primary-inputs, exactly as in Fig. 2 of the paper.
//! * [`Netlist`] — a generic multi-gate-type netlist (`AND/OR/NAND/NOR/XOR/
//!   XNOR/NOT/BUF/MUX/DFF`) as found in realistic designs. [`lower`] converts
//!   it into a [`SeqAig`] *without optimization*, tracking for every original
//!   gate the AIG node that carries the same switching activity
//!   (paper, Section V-A2).
//!
//! # Example
//!
//! Build the 2-bit counter from Fig. 2 style circuits and levelize it:
//!
//! ```
//! use deepseq_netlist::{SeqAig, level::Levels};
//!
//! let mut aig = SeqAig::new("counter");
//! let en = aig.add_pi("en");
//! let q0 = aig.add_ff("q0", false);
//! let n = aig.add_not(q0);
//! let d0 = aig.add_and(en, n); // toggle bit 0 while enabled
//! aig.connect_ff(q0, d0)?;
//! aig.set_output(q0, "out0");
//! aig.validate()?;
//! let levels = Levels::build(&aig);
//! assert_eq!(levels.level_of(en), 0);
//! # Ok::<(), deepseq_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod aig;
pub mod aiger;
pub mod bench_io;
pub mod error;
pub mod hash;
pub mod level;
pub mod lower;
pub mod netlist;
pub mod stats;

pub use aig::{AigNode, NodeId, SeqAig, NUM_NODE_TYPES};
pub use aiger::{parse_aiger, write_aiger};
pub use error::NetlistError;
pub use hash::{cone_hashes, structural_hash};
pub use level::Levels;
pub use lower::{lower_to_aig, LoweredNetlist};
pub use netlist::{GateId, GateKind, GateRef, Netlist};
pub use stats::{CircuitStats, FamilyStats};
