//! Canonical structural hashing of sequential AIGs.
//!
//! [`structural_hash`] digests a [`SeqAig`] into a 64-bit fingerprint that
//! is **invariant under node renumbering**: any two graphs that differ only
//! in the order nodes were created (any valid topological reordering of the
//! combinational part, FFs and PIs anywhere) hash identically, while
//! structurally different circuits hash differently with overwhelming
//! probability. The serving subsystem (`deepseq-serve`) uses it as the
//! content address of its embedding cache, so repeated queries against the
//! same circuit — no matter how it was rebuilt or renumbered — are cache
//! hits.
//!
//! # Algorithm
//!
//! A Weisfeiler–Lehman style iterative refinement adapted to sequential
//! AIGs. Every node carries a label; rounds refine labels from neighbour
//! labels:
//!
//! * round 0: labels depend only on local content — PIs hash their name
//!   (workload semantics bind to PIs), FFs their power-on state, gates their
//!   kind;
//! * each round walks nodes **by combinational depth** (a renumbering
//!   invariant), so within one round a gate sees the *current*-round labels
//!   of its combinational fanins (AND fanins are order-normalized —
//!   `AND(a, b) = AND(b, a)`), while an FF sees the *previous*-round label
//!   of its D input. One round therefore propagates structure across one
//!   sequential (FF) boundary and the whole combinational cone behind it;
//! * `num_ffs + 1` rounds (clamped to `[2, 16]`) let information cross every
//!   feedback path of typical control loops; deeper FF chains still hash
//!   *consistently*, just with less discrimination beyond the cap.
//!
//! The digest combines the final label multiset order-invariantly together
//! with node/type counts and the named outputs.

use crate::aig::{AigNode, SeqAig};

/// Mixes one 64-bit word (splitmix64 finalizer) — fast, high-avalanche.
/// Public so downstream content addressing (the `deepseq-serve` cache keys)
/// composes with the structural hash instead of duplicating it.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Combines words into a running hash, order-sensitively.
#[inline]
pub fn combine(seed: u64, word: u64) -> u64 {
    mix(seed ^ word.wrapping_mul(0xA24BAED4963EE407))
}

/// Hashes a byte string.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF29CE484222325;
    for &b in bytes {
        h = combine(h, b as u64);
    }
    h
}

const TAG_PI: u64 = 0x7069; // "pi"
const TAG_AND: u64 = 0x616E64; // "and"
const TAG_NOT: u64 = 0x6E6F74; // "not"
const TAG_FF: u64 = 0x6666; // "ff"
const TAG_OUT: u64 = 0x6F7574; // "out"

/// Computes the canonical structural hash of a circuit.
///
/// The result is invariant under node renumbering (see the
/// [module docs](self)) and sensitive to gate structure, AND/NOT/FF/PI
/// composition, FF power-on states, PI names and named outputs.
///
/// # Example
/// ```
/// use deepseq_netlist::{structural_hash, SeqAig};
///
/// // The same toggle circuit built in two different node orders.
/// let mut a = SeqAig::new("t1");
/// let qa = a.add_ff("q", false);
/// let na = a.add_not(qa);
/// a.connect_ff(qa, na)?;
///
/// let mut b = SeqAig::new("t2");
/// let pb = b.add_pi("unused"); // name differs ⇒ would differ...
/// # let _ = pb;
/// let qb = b.add_ff("q", false);
/// let nb = b.add_not(qb);
/// b.connect_ff(qb, nb)?;
///
/// assert_ne!(structural_hash(&a), structural_hash(&b)); // extra PI
/// assert_eq!(structural_hash(&a), structural_hash(&a.clone()));
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
pub fn structural_hash(aig: &SeqAig) -> u64 {
    let n = aig.len();
    if n == 0 {
        return mix(0);
    }
    let label = wl_final_labels(aig);

    // Order-invariant aggregation of the final label multiset: a commutative
    // sum/xor pair of mixed labels, plus counts and named outputs.
    let mut sum = 0u64;
    let mut xor = 0u64;
    for &l in &label {
        let m = mix(l);
        sum = sum.wrapping_add(m);
        xor ^= m.rotate_left((m % 63) as u32);
    }
    let mut out_sum = 0u64;
    for (node, name) in aig.outputs() {
        out_sum = out_sum.wrapping_add(mix(combine(
            combine(TAG_OUT, hash_bytes(name.as_bytes())),
            label[node.index()],
        )));
    }

    let mut digest = mix(n as u64);
    digest = combine(digest, aig.num_pis() as u64);
    digest = combine(digest, aig.num_ffs() as u64);
    digest = combine(digest, aig.num_ands() as u64);
    digest = combine(digest, aig.num_nots() as u64);
    digest = combine(digest, sum);
    digest = combine(digest, xor);
    digest = combine(digest, out_sum);
    digest
}

/// Per-node canonical **fanin-cone hashes**.
///
/// `cone_hashes(aig)[i]` digests the structure feeding node `i`: its own
/// kind (PI name, FF power-on state, gate type) refined over the same
/// Weisfeiler–Lehman rounds as [`structural_hash`], so it covers the whole
/// combinational cone behind the node plus `num_ffs + 1` (clamped to
/// `[2, 16]`) sequential boundaries. Two nodes whose fanin cones are
/// isomorphic — within one circuit or across circuits — get equal hashes,
/// and the hash of a node is invariant under renumbering of its circuit.
///
/// The serving layer uses these as the content address of its
/// cone-granularity memo: a circuit that shares sub-structure with a cached
/// one reuses the cached cones and only recomputes the changed ones.
///
/// # Example
/// ```
/// use deepseq_netlist::{cone_hashes, SeqAig};
///
/// // Two identical NOT cones over same-named PIs, one extra AND.
/// let mut g = SeqAig::new("g");
/// let a = g.add_pi("x");
/// let b = g.add_pi("x");
/// let na = g.add_not(a);
/// let nb = g.add_not(b);
/// let y = g.add_and(na, nb);
/// let h = cone_hashes(&g);
/// assert_eq!(h[na.index()], h[nb.index()]); // isomorphic cones
/// assert_ne!(h[na.index()], h[y.index()]);
/// ```
pub fn cone_hashes(aig: &SeqAig) -> Vec<u64> {
    wl_final_labels(aig).into_iter().map(mix).collect()
}

/// Runs the Weisfeiler–Lehman refinement of the [module docs](self) and
/// returns the final per-node labels. [`structural_hash`] aggregates them
/// order-invariantly; [`cone_hashes`] exposes them per node.
fn wl_final_labels(aig: &SeqAig) -> Vec<u64> {
    let n = aig.len();
    if n == 0 {
        return Vec::new();
    }

    // Combinational depth per node — renumbering-invariant because it is a
    // property of the DAG, computable in one id-order scan (ordered
    // construction guarantees comb fanins have smaller ids).
    let mut depth = vec![0u32; n];
    let mut max_depth = 0u32;
    for (id, node) in aig.iter() {
        let d = match *node {
            AigNode::Pi | AigNode::Ff { .. } => 0,
            AigNode::And(a, b) => 1 + depth[a.index()].max(depth[b.index()]),
            AigNode::Not(a) => 1 + depth[a.index()],
        };
        depth[id.index()] = d;
        max_depth = max_depth.max(d);
    }
    let mut by_depth: Vec<Vec<u32>> = vec![Vec::new(); max_depth as usize + 1];
    for (id, _) in aig.iter() {
        by_depth[depth[id.index()] as usize].push(id.0);
    }

    // Round-0 labels: local content only.
    let mut label: Vec<u64> = aig
        .iter()
        .map(|(id, node)| match node {
            AigNode::Pi => {
                let name = aig.node_name(id).unwrap_or("");
                combine(TAG_PI, hash_bytes(name.as_bytes()))
            }
            AigNode::And(_, _) => mix(TAG_AND),
            AigNode::Not(_) => mix(TAG_NOT),
            AigNode::Ff { init, .. } => combine(TAG_FF, *init as u64),
        })
        .collect();

    let rounds = (aig.num_ffs() + 1).clamp(2, 16);
    let mut next = label.clone();
    for round in 0..rounds {
        // Sources first: FFs refine from the previous round's D-input label
        // (the sequential edge), PIs stay fixed.
        for bucket in &by_depth {
            for &v in bucket {
                let id = crate::aig::NodeId(v);
                let h = match *aig.node(id) {
                    AigNode::Pi => label[v as usize],
                    AigNode::Ff { init, .. } => {
                        let d = aig.ff_fanin(id).map_or(0, |d| label[d.index()]);
                        combine(combine(combine(TAG_FF, init as u64), label[v as usize]), d)
                    }
                    AigNode::And(a, b) => {
                        // Commutative: order-normalize the fanin labels.
                        let (la, lb) = {
                            let la = next[a.index()];
                            let lb = next[b.index()];
                            (la.min(lb), la.max(lb))
                        };
                        combine(combine(TAG_AND, la), lb)
                    }
                    AigNode::Not(a) => combine(TAG_NOT, next[a.index()]),
                };
                next[v as usize] = h;
            }
        }
        let _ = round;
        std::mem::swap(&mut label, &mut next);
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::NodeId;

    fn toggle(name: &str) -> SeqAig {
        let mut aig = SeqAig::new(name);
        let q = aig.add_ff("q", false);
        let n = aig.add_not(q);
        aig.connect_ff(q, n).unwrap();
        aig.set_output(q, "out");
        aig
    }

    #[test]
    fn hash_ignores_design_name_and_is_deterministic() {
        assert_eq!(structural_hash(&toggle("a")), structural_hash(&toggle("b")));
    }

    #[test]
    fn hash_invariant_under_construction_order() {
        // Same circuit, two creation orders: y = AND(NOT(a), b).
        let mut g1 = SeqAig::new("g1");
        let a1 = g1.add_pi("a");
        let b1 = g1.add_pi("b");
        let n1 = g1.add_not(a1);
        let y1 = g1.add_and(n1, b1);
        g1.set_output(y1, "y");

        let mut g2 = SeqAig::new("g2");
        let b2 = g2.add_pi("b");
        let a2 = g2.add_pi("a");
        let n2 = g2.add_not(a2);
        let y2 = g2.add_and(b2, n2); // AND fanins swapped too
        g2.set_output(y2, "y");

        assert_eq!(structural_hash(&g1), structural_hash(&g2));
    }

    #[test]
    fn hash_sensitive_to_structure() {
        let base = toggle("t");
        // Different FF init.
        let mut flipped = SeqAig::new("t");
        let q = flipped.add_ff("q", true);
        let n = flipped.add_not(q);
        flipped.connect_ff(q, n).unwrap();
        flipped.set_output(q, "out");
        assert_ne!(structural_hash(&base), structural_hash(&flipped));

        // Extra gate.
        let mut bigger = toggle("t");
        let extra = bigger.add_not(NodeId(1));
        bigger.set_output(extra, "extra");
        assert_ne!(structural_hash(&base), structural_hash(&bigger));
    }

    #[test]
    fn hash_sensitive_to_pi_names_and_outputs() {
        let mut g1 = SeqAig::new("g");
        let a = g1.add_pi("a");
        g1.set_output(a, "y");
        let mut g2 = SeqAig::new("g");
        let b = g2.add_pi("other");
        g2.set_output(b, "y");
        assert_ne!(structural_hash(&g1), structural_hash(&g2));

        let mut g3 = SeqAig::new("g");
        let c = g3.add_pi("a");
        g3.set_output(c, "z");
        assert_ne!(structural_hash(&g1), structural_hash(&g3));
    }

    #[test]
    fn empty_graph_hashes() {
        let g = SeqAig::new("empty");
        assert_eq!(structural_hash(&g), structural_hash(&g));
        assert!(cone_hashes(&g).is_empty());
    }

    #[test]
    fn cone_hashes_invariant_under_renumbering() {
        // y = AND(NOT(a), b) built in two node orders: corresponding nodes
        // must carry identical cone hashes.
        let mut g1 = SeqAig::new("g1");
        let a1 = g1.add_pi("a");
        let b1 = g1.add_pi("b");
        let n1 = g1.add_not(a1);
        let y1 = g1.add_and(n1, b1);

        let mut g2 = SeqAig::new("g2");
        let b2 = g2.add_pi("b");
        let a2 = g2.add_pi("a");
        let n2 = g2.add_not(a2);
        let y2 = g2.add_and(b2, n2);

        let h1 = cone_hashes(&g1);
        let h2 = cone_hashes(&g2);
        assert_eq!(h1[a1.index()], h2[a2.index()]);
        assert_eq!(h1[b1.index()], h2[b2.index()]);
        assert_eq!(h1[n1.index()], h2[n2.index()]);
        assert_eq!(h1[y1.index()], h2[y2.index()]);
    }

    #[test]
    fn cone_hashes_distinguish_cone_structure() {
        // Same node kind, different fanin cones.
        let mut g = SeqAig::new("g");
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let na = g.add_not(a);
        let nb = g.add_not(b); // NOT over a differently-named PI
        let nna = g.add_not(na); // NOT over a deeper cone
        let h = cone_hashes(&g);
        assert_ne!(h[na.index()], h[nb.index()]);
        assert_ne!(h[na.index()], h[nna.index()]);
    }

    #[test]
    fn cone_hashes_cross_sequential_boundaries() {
        // Toggle FFs with different init values: the NOT gates behind them
        // see the difference through the FF edge.
        let mk = |init| {
            let mut g = SeqAig::new("t");
            let q = g.add_ff("q", init);
            let n = g.add_not(q);
            g.connect_ff(q, n).unwrap();
            g
        };
        let h0 = cone_hashes(&mk(false));
        let h1 = cone_hashes(&mk(true));
        assert_ne!(h0[1], h1[1]);
    }
}
