//! Circuit statistics used by Tables I and IV of the paper.

use std::fmt;

use crate::aig::SeqAig;
use crate::level::Levels;

/// Per-circuit structural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Design name.
    pub name: String,
    /// Total node count (PIs + gates + FFs).
    pub nodes: usize,
    /// Primary inputs.
    pub pis: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// AND gates.
    pub ands: usize,
    /// Inverters.
    pub nots: usize,
    /// Logic depth after FF cycle cut.
    pub depth: u32,
    /// Maximum fanout of any node.
    pub max_fanout: u32,
}

impl CircuitStats {
    /// Computes statistics for an AIG.
    pub fn of(aig: &SeqAig) -> Self {
        let levels = Levels::build(aig);
        CircuitStats {
            name: aig.name().to_string(),
            nodes: aig.len(),
            pis: aig.num_pis(),
            ffs: aig.num_ffs(),
            ands: aig.num_ands(),
            nots: aig.num_nots(),
            depth: levels.depth(),
            max_fanout: aig.fanout_counts().into_iter().max().unwrap_or(0),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes ({} PI, {} FF, {} AND, {} NOT), depth {}, max fanout {}",
            self.name,
            self.nodes,
            self.pis,
            self.ffs,
            self.ands,
            self.nots,
            self.depth,
            self.max_fanout
        )
    }
}

/// Aggregate statistics over a family of circuits (one row of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// Family / benchmark name.
    pub name: String,
    /// Number of circuits.
    pub count: usize,
    /// Mean node count.
    pub mean_nodes: f64,
    /// Standard deviation of node count.
    pub std_nodes: f64,
}

impl FamilyStats {
    /// Aggregates statistics over circuits with a family label.
    pub fn of<'a>(name: impl Into<String>, circuits: impl IntoIterator<Item = &'a SeqAig>) -> Self {
        let sizes: Vec<f64> = circuits.into_iter().map(|c| c.len() as f64).collect();
        let count = sizes.len();
        let mean = if count == 0 {
            0.0
        } else {
            sizes.iter().sum::<f64>() / count as f64
        };
        let var = if count == 0 {
            0.0
        } else {
            sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64
        };
        FamilyStats {
            name: name.into(),
            count,
            mean_nodes: mean,
            std_nodes: var.sqrt(),
        }
    }
}

impl fmt::Display for FamilyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} subcircuits, {:.2} ± {:.2} nodes",
            self.name, self.count, self.mean_nodes, self.std_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SeqAig {
        let mut aig = SeqAig::new("small");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, n).unwrap();
        aig.set_output(q, "y");
        aig
    }

    #[test]
    fn circuit_stats_counts() {
        let stats = CircuitStats::of(&small());
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.pis, 2);
        assert_eq!(stats.ffs, 1);
        assert_eq!(stats.ands, 1);
        assert_eq!(stats.nots, 1);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.max_fanout, 1);
    }

    #[test]
    fn family_stats_mean_std() {
        let c1 = small(); // 5 nodes
        let mut c2 = SeqAig::new("c2"); // 3 nodes
        let a = c2.add_pi("a");
        let b = c2.add_pi("b");
        let _ = c2.add_and(a, b);
        let fam = FamilyStats::of("fam", [&c1, &c2]);
        assert_eq!(fam.count, 2);
        assert!((fam.mean_nodes - 4.0).abs() < 1e-12);
        assert!((fam.std_nodes - 1.0).abs() < 1e-12);
    }

    #[test]
    fn family_stats_empty() {
        let fam = FamilyStats::of("empty", []);
        assert_eq!(fam.count, 0);
        assert_eq!(fam.mean_nodes, 0.0);
    }

    #[test]
    fn displays_are_informative() {
        let s = CircuitStats::of(&small()).to_string();
        assert!(s.contains("small"));
        assert!(s.contains("5 nodes"));
        let f = FamilyStats::of("fam", [&small()]).to_string();
        assert!(f.contains("fam"));
    }
}
