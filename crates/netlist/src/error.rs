//! Error types shared by the netlist crate.

use std::error::Error;
use std::fmt;

use crate::aig::NodeId;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A flip-flop was left without a connected D input.
    UnconnectedFf {
        /// The offending flip-flop node.
        ff: NodeId,
    },
    /// A node references a fanin id that does not exist.
    DanglingRef {
        /// The referencing node.
        node: NodeId,
        /// The missing fanin id.
        fanin: NodeId,
    },
    /// `connect_ff` was called on a node that is not a flip-flop.
    NotAnFf {
        /// The node that was expected to be a flip-flop.
        node: NodeId,
    },
    /// A combinational edge would point forward (violating construction order).
    ForwardCombEdge {
        /// The referencing node.
        node: NodeId,
        /// The fanin that is not older than `node`.
        fanin: NodeId,
    },
    /// Two signals were declared with the same name.
    DuplicateName(String),
    /// A textual format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A referenced signal name was never defined.
    UnknownSignal {
        /// 1-based line number of the reference.
        line: usize,
        /// The undefined name.
        name: String,
    },
    /// The netlist contains a combinational cycle (a cycle not broken by a DFF).
    CombinationalCycle {
        /// One node on the cycle.
        node: NodeId,
    },
    /// A gate has the wrong number of fanins for its kind.
    BadArity {
        /// The offending gate.
        node: NodeId,
        /// Expected fanin count.
        expected: usize,
        /// Actual fanin count.
        actual: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedFf { ff } => {
                write!(f, "flip-flop {ff} has no connected D input")
            }
            NetlistError::DanglingRef { node, fanin } => {
                write!(f, "node {node} references missing fanin {fanin}")
            }
            NetlistError::NotAnFf { node } => write!(f, "node {node} is not a flip-flop"),
            NetlistError::ForwardCombEdge { node, fanin } => write!(
                f,
                "combinational node {node} references fanin {fanin} that is not older"
            ),
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            NetlistError::UnknownSignal { line, name } => {
                write!(f, "unknown signal `{name}` at line {line}")
            }
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::BadArity {
                node,
                expected,
                actual,
            } => write!(f, "gate {node} has {actual} fanins, expected {expected}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            NetlistError::UnconnectedFf { ff: NodeId(3) },
            NetlistError::DanglingRef {
                node: NodeId(1),
                fanin: NodeId(9),
            },
            NetlistError::NotAnFf { node: NodeId(0) },
            NetlistError::DuplicateName("clk".into()),
            NetlistError::Parse {
                line: 4,
                msg: "bad token".into(),
            },
            NetlistError::UnknownSignal {
                line: 2,
                name: "g17".into(),
            },
            NetlistError::CombinationalCycle { node: NodeId(5) },
            NetlistError::BadArity {
                node: NodeId(7),
                expected: 2,
                actual: 3,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
