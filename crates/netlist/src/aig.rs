//! Sequential and-inverter graph (`SeqAig`).
//!
//! The DeepSeq paper pre-processes every circuit into an AIG whose only node
//! types are primary inputs, 2-input AND gates, inverters and D flip-flops
//! (Section III). Construction is *ordered*: combinational fanins must refer
//! to already-created nodes, so the combinational part is a DAG by
//! construction, and the only back edges are flip-flop D inputs (connected
//! after the fact via [`SeqAig::connect_ff`]).

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;

/// Identifier of a node inside a [`SeqAig`] (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A node of a sequential AIG.
///
/// `Ff` stores its D input as `Option` because flip-flop feedback is
/// connected after the driven logic exists; [`SeqAig::validate`] rejects
/// graphs with unconnected flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// Primary input.
    Pi,
    /// 2-input AND gate.
    And(NodeId, NodeId),
    /// Inverter.
    Not(NodeId),
    /// D flip-flop with initial state `init`; `d` is its data input.
    Ff {
        /// Data input (None until [`SeqAig::connect_ff`] is called).
        d: Option<NodeId>,
        /// Power-on state.
        init: bool,
    },
}

impl AigNode {
    /// True for primary inputs.
    #[inline]
    pub fn is_pi(&self) -> bool {
        matches!(self, AigNode::Pi)
    }

    /// True for flip-flops.
    #[inline]
    pub fn is_ff(&self) -> bool {
        matches!(self, AigNode::Ff { .. })
    }

    /// True for AND gates.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, AigNode::And(_, _))
    }

    /// True for inverters.
    #[inline]
    pub fn is_not(&self) -> bool {
        matches!(self, AigNode::Not(_))
    }

    /// One-hot gate-type index used as the node feature by the model
    /// (paper, Section III-B: a 4-d vector per node).
    ///
    /// Order: `Pi = 0`, `And = 1`, `Not = 2`, `Ff = 3`.
    #[inline]
    pub fn type_index(&self) -> usize {
        match self {
            AigNode::Pi => 0,
            AigNode::And(_, _) => 1,
            AigNode::Not(_) => 2,
            AigNode::Ff { .. } => 3,
        }
    }
}

/// Number of distinct node types (for one-hot encoding).
pub const NUM_NODE_TYPES: usize = 4;

/// A sequential and-inverter graph.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct SeqAig {
    name: String,
    nodes: Vec<AigNode>,
    names: Vec<Option<String>>,
    outputs: Vec<(NodeId, String)>,
    name_index: HashMap<String, NodeId>,
}

impl SeqAig {
    /// Creates an empty graph with a design name.
    pub fn new(name: impl Into<String>) -> Self {
        SeqAig {
            name: name.into(),
            ..SeqAig::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (PIs, gates and FFs together).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node(&self, id: NodeId) -> &AigNode {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &AigNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The optional signal name of a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// Looks a node up by signal name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    fn push(&mut self, node: AigNode, name: Option<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        if let Some(ref n) = name {
            self.name_index.insert(n.clone(), id);
        }
        self.names.push(name);
        id
    }

    /// Adds a named primary input.
    pub fn add_pi(&mut self, name: impl Into<String>) -> NodeId {
        self.push(AigNode::Pi, Some(name.into()))
    }

    /// Adds an anonymous 2-input AND gate.
    ///
    /// # Panics
    /// Panics in debug builds if a fanin id does not exist yet; ordered
    /// construction is what keeps the combinational part acyclic.
    pub fn add_and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        debug_assert!(a.index() < self.nodes.len());
        debug_assert!(b.index() < self.nodes.len());
        self.push(AigNode::And(a, b), None)
    }

    /// Adds an anonymous inverter.
    pub fn add_not(&mut self, a: NodeId) -> NodeId {
        debug_assert!(a.index() < self.nodes.len());
        self.push(AigNode::Not(a), None)
    }

    /// Adds a named D flip-flop with the given power-on state. Its D input is
    /// connected later via [`SeqAig::connect_ff`], which is what allows
    /// feedback cycles.
    pub fn add_ff(&mut self, name: impl Into<String>, init: bool) -> NodeId {
        self.push(AigNode::Ff { d: None, init }, Some(name.into()))
    }

    /// Connects (or reconnects) the D input of flip-flop `ff` to `d`.
    ///
    /// # Errors
    /// Returns [`NetlistError::NotAnFf`] if `ff` is not a flip-flop and
    /// [`NetlistError::DanglingRef`] if `d` does not exist.
    pub fn connect_ff(&mut self, ff: NodeId, d: NodeId) -> Result<(), NetlistError> {
        if d.index() >= self.nodes.len() {
            return Err(NetlistError::DanglingRef { node: ff, fanin: d });
        }
        match &mut self.nodes[ff.index()] {
            AigNode::Ff { d: slot, .. } => {
                *slot = Some(d);
                Ok(())
            }
            _ => Err(NetlistError::NotAnFf { node: ff }),
        }
    }

    /// Marks `id` as a primary output under the given name.
    pub fn set_output(&mut self, id: NodeId, name: impl Into<String>) {
        self.outputs.push((id, name.into()));
    }

    /// Attaches (or replaces) the signal name of an existing node. Used by
    /// the netlist lowering to keep original gate names on fanout nodes.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn set_node_name(&mut self, id: NodeId, name: impl Into<String>) {
        let name = name.into();
        if let Some(old) = self.names[id.index()].take() {
            self.name_index.remove(&old);
        }
        self.name_index.insert(name.clone(), id);
        self.names[id.index()] = Some(name);
    }

    /// The primary outputs as `(node, name)` pairs.
    pub fn outputs(&self) -> &[(NodeId, String)] {
        &self.outputs
    }

    /// Ids of all primary inputs, in id order.
    pub fn pis(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.is_pi())
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all flip-flops, in id order.
    pub fn ffs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.is_ff())
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_pi()).count()
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_ff()).count()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and()).count()
    }

    /// Number of inverters.
    pub fn num_nots(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_not()).count()
    }

    /// Combinational fanins of a node: AND/NOT inputs. Flip-flops and PIs
    /// have none — the FF D input is a *sequential* edge, cut by the
    /// customized propagation scheme (paper Fig. 2, step 1).
    pub fn comb_fanins(&self, id: NodeId) -> CombFanins {
        match self.nodes[id.index()] {
            AigNode::And(a, b) => CombFanins::two(a, b),
            AigNode::Not(a) => CombFanins::one(a),
            AigNode::Pi | AigNode::Ff { .. } => CombFanins::none(),
        }
    }

    /// The sequential fanin (D input) of a flip-flop, if `id` is a connected FF.
    pub fn ff_fanin(&self, id: NodeId) -> Option<NodeId> {
        match self.nodes[id.index()] {
            AigNode::Ff { d, .. } => d,
            _ => None,
        }
    }

    /// Computes the fanout count of every node (combinational and sequential
    /// edges both count; output markers do not).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.len()];
        for (_, node) in self.iter() {
            match *node {
                AigNode::And(a, b) => {
                    counts[a.index()] += 1;
                    counts[b.index()] += 1;
                }
                AigNode::Not(a) => counts[a.index()] += 1,
                AigNode::Ff { d: Some(d), .. } => counts[d.index()] += 1,
                _ => {}
            }
        }
        counts
    }

    /// Computes the combinational fanout adjacency (successor lists), with FF
    /// D-input edges *included* as edges into the FF node. Used by the
    /// reverse propagation layer.
    pub fn fanout_lists(&self) -> Vec<Vec<NodeId>> {
        let mut lists = vec![Vec::new(); self.len()];
        for (id, node) in self.iter() {
            match *node {
                AigNode::And(a, b) => {
                    lists[a.index()].push(id);
                    lists[b.index()].push(id);
                }
                AigNode::Not(a) => lists[a.index()].push(id),
                AigNode::Ff { d: Some(d), .. } => lists[d.index()].push(id),
                _ => {}
            }
        }
        lists
    }

    /// Partitions the circuit into **weakly connected components** over
    /// combinational fanin edges *and* sequential (FF D-input) edges.
    ///
    /// Returns `(component_of, count)` where `component_of[i]` is the dense
    /// component id of node `i`; components are numbered by first occurrence
    /// in id order, so component 0 contains node 0. Two nodes share a
    /// component exactly when structure can influence both during
    /// propagation — the weakly connected component is the smallest unit
    /// whose node states are a pure function of its own structure and
    /// initial rows, which is what makes it the reuse granule of the serving
    /// layer's cone memo.
    pub fn weak_components(&self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let union = |parent: &mut [u32], a: u32, b: u32| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                // Root at the smaller id, keeping first-occurrence numbering
                // cheap to produce below.
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi as usize] = lo;
            }
        };
        for (id, node) in self.iter() {
            match *node {
                AigNode::And(a, b) => {
                    union(&mut parent, id.0, a.0);
                    union(&mut parent, id.0, b.0);
                }
                AigNode::Not(a) => union(&mut parent, id.0, a.0),
                AigNode::Ff { d: Some(d), .. } => union(&mut parent, id.0, d.0),
                _ => {}
            }
        }
        let mut component = vec![u32::MAX; n];
        let mut count = 0usize;
        for i in 0..n as u32 {
            let root = find(&mut parent, i) as usize;
            if component[root] == u32::MAX {
                component[root] = count as u32;
                count += 1;
            }
            component[i as usize] = component[root];
        }
        (component, count)
    }

    /// Checks the structural invariants.
    ///
    /// # Errors
    /// * [`NetlistError::UnconnectedFf`] — an FF without a D input;
    /// * [`NetlistError::ForwardCombEdge`] — an AND/NOT referencing a
    ///   not-yet-created node (cannot happen through the safe API);
    /// * [`NetlistError::DanglingRef`] — an out-of-range fanin.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.nodes.len() as u32;
        for (id, node) in self.iter() {
            let check = |fanin: NodeId| -> Result<(), NetlistError> {
                if fanin.0 >= n {
                    return Err(NetlistError::DanglingRef { node: id, fanin });
                }
                Ok(())
            };
            match *node {
                AigNode::And(a, b) => {
                    check(a)?;
                    check(b)?;
                    if a.0 >= id.0 || b.0 >= id.0 {
                        let bad = if a.0 >= id.0 { a } else { b };
                        return Err(NetlistError::ForwardCombEdge {
                            node: id,
                            fanin: bad,
                        });
                    }
                }
                AigNode::Not(a) => {
                    check(a)?;
                    if a.0 >= id.0 {
                        return Err(NetlistError::ForwardCombEdge { node: id, fanin: a });
                    }
                }
                AigNode::Ff { d, .. } => match d {
                    None => return Err(NetlistError::UnconnectedFf { ff: id }),
                    Some(d) => check(d)?,
                },
                AigNode::Pi => {}
            }
        }
        for (out, _) in &self.outputs {
            if out.0 >= n {
                return Err(NetlistError::DanglingRef {
                    node: *out,
                    fanin: *out,
                });
            }
        }
        Ok(())
    }
}

/// Iterator over the (at most two) combinational fanins of a node.
#[derive(Debug, Clone, Copy)]
pub struct CombFanins {
    items: [Option<NodeId>; 2],
    pos: usize,
}

impl CombFanins {
    fn none() -> Self {
        CombFanins {
            items: [None, None],
            pos: 0,
        }
    }
    fn one(a: NodeId) -> Self {
        CombFanins {
            items: [Some(a), None],
            pos: 0,
        }
    }
    fn two(a: NodeId, b: NodeId) -> Self {
        CombFanins {
            items: [Some(a), Some(b)],
            pos: 0,
        }
    }
}

impl Iterator for CombFanins {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.pos < 2 {
            let item = self.items[self.pos];
            self.pos += 1;
            if item.is_some() {
                return item;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_ff() -> SeqAig {
        // q' = !q: a 1-bit toggle counter.
        let mut aig = SeqAig::new("toggle");
        let q = aig.add_ff("q", false);
        let nq = aig.add_not(q);
        aig.connect_ff(q, nq).unwrap();
        aig.set_output(q, "out");
        aig
    }

    #[test]
    fn weak_components_split_and_merge() {
        // Two toggle FFs (independent components) plus one isolated PI.
        let mut aig = SeqAig::new("c");
        let q0 = aig.add_ff("q0", false); // 0
        let n0 = aig.add_not(q0); // 1
        aig.connect_ff(q0, n0).unwrap();
        let _free = aig.add_pi("free"); // 2
        let q1 = aig.add_ff("q1", false); // 3
        let n1 = aig.add_not(q1); // 4
        aig.connect_ff(q1, n1).unwrap();
        let (comp, count) = aig.weak_components();
        assert_eq!(count, 3);
        assert_eq!(comp, vec![0, 0, 1, 2, 2]);

        // Bridging the two toggles with an AND merges their components.
        let y = aig.add_and(n0, n1);
        let _ = y;
        let (comp, count) = aig.weak_components();
        assert_eq!(count, 2);
        assert_eq!(comp, vec![0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn weak_components_empty() {
        let aig = SeqAig::new("e");
        let (comp, count) = aig.weak_components();
        assert!(comp.is_empty());
        assert_eq!(count, 0);
    }

    #[test]
    fn build_and_count() {
        let mut aig = SeqAig::new("c");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        aig.set_output(n, "y");
        assert_eq!(aig.len(), 4);
        assert_eq!(aig.num_pis(), 2);
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.num_nots(), 1);
        assert_eq!(aig.num_ffs(), 0);
        assert_eq!(aig.outputs().len(), 1);
        assert!(aig.validate().is_ok());
    }

    #[test]
    fn ff_cycle_is_legal_and_validates() {
        let aig = toggle_ff();
        assert!(aig.validate().is_ok());
        assert_eq!(aig.ff_fanin(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn unconnected_ff_rejected() {
        let mut aig = SeqAig::new("bad");
        let _ = aig.add_ff("q", false);
        assert_eq!(
            aig.validate(),
            Err(NetlistError::UnconnectedFf { ff: NodeId(0) })
        );
    }

    #[test]
    fn connect_ff_on_non_ff_rejected() {
        let mut aig = SeqAig::new("bad");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        assert_eq!(aig.connect_ff(a, b), Err(NetlistError::NotAnFf { node: a }));
    }

    #[test]
    fn connect_ff_dangling_rejected() {
        let mut aig = SeqAig::new("bad");
        let q = aig.add_ff("q", false);
        assert_eq!(
            aig.connect_ff(q, NodeId(42)),
            Err(NetlistError::DanglingRef {
                node: q,
                fanin: NodeId(42)
            })
        );
    }

    #[test]
    fn comb_fanins_by_kind() {
        let mut aig = SeqAig::new("c");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", true);
        aig.connect_ff(q, n).unwrap();

        assert_eq!(aig.comb_fanins(a).count(), 0);
        assert_eq!(aig.comb_fanins(g).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(aig.comb_fanins(n).collect::<Vec<_>>(), vec![g]);
        // FF D input is sequential, not combinational.
        assert_eq!(aig.comb_fanins(q).count(), 0);
        assert_eq!(aig.ff_fanin(q), Some(n));
    }

    #[test]
    fn fanout_counts_include_ff_edges() {
        let aig = toggle_ff();
        let counts = aig.fanout_counts();
        // q drives the NOT; the NOT drives the FF D pin.
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn fanout_lists_mirror_fanins() {
        let mut aig = SeqAig::new("c");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let lists = aig.fanout_lists();
        assert_eq!(lists[a.index()], vec![g]);
        assert_eq!(lists[b.index()], vec![g]);
        assert!(lists[g.index()].is_empty());
    }

    #[test]
    fn find_by_name() {
        let aig = toggle_ff();
        assert_eq!(aig.find("q"), Some(NodeId(0)));
        assert_eq!(aig.find("nope"), None);
        assert_eq!(aig.node_name(NodeId(0)), Some("q"));
        assert_eq!(aig.node_name(NodeId(1)), None);
    }

    #[test]
    fn type_indices_are_one_hot_range() {
        let aig = toggle_ff();
        for (_, node) in aig.iter() {
            assert!(node.type_index() < NUM_NODE_TYPES);
        }
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
