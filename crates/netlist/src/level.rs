//! Cycle cutting and levelization (paper Fig. 2, step 1).
//!
//! Flip-flop D inputs are the only back edges in a [`SeqAig`]. Treating every
//! FF as a pseudo-primary-input (its incoming sequential edge removed) makes
//! the remaining graph a DAG; nodes are then assigned *logic levels*:
//! sources (PIs and FFs) at level 0, every AND/NOT one past the maximum of
//! its fanins. The per-level node batches implement the "topological
//! batching" of Thost & Chen used by the paper to speed up training.

use crate::aig::{AigNode, NodeId, SeqAig};

/// Levelization of a sequential AIG with FF cycles cut.
#[derive(Debug, Clone)]
pub struct Levels {
    level_of: Vec<u32>,
    levels: Vec<Vec<NodeId>>,
}

impl Levels {
    /// Builds the levelization of `aig`.
    ///
    /// Sources (PIs and FFs-as-pseudo-inputs) are at level 0. The paper calls
    /// this "moving FFs to logic level 1 (LL-1)"; only the numbering differs.
    pub fn build(aig: &SeqAig) -> Self {
        let n = aig.len();
        let mut level_of = vec![0u32; n];
        // Ordered construction guarantees comb fanins have smaller ids, so a
        // single id-order scan computes levels.
        for (id, node) in aig.iter() {
            let lvl = match *node {
                AigNode::Pi | AigNode::Ff { .. } => 0,
                AigNode::And(a, b) => 1 + level_of[a.index()].max(level_of[b.index()]),
                AigNode::Not(a) => 1 + level_of[a.index()],
            };
            level_of[id.index()] = lvl;
        }
        let depth = level_of.iter().copied().max().unwrap_or(0) as usize;
        let mut levels = vec![Vec::new(); depth + 1];
        for (id, _) in aig.iter() {
            levels[level_of[id.index()] as usize].push(id);
        }
        Levels { level_of, levels }
    }

    /// The logic level of a node.
    #[inline]
    pub fn level_of(&self, id: NodeId) -> u32 {
        self.level_of[id.index()]
    }

    /// Number of levels (depth + 1). At least 1 for a non-empty graph.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Circuit depth: the maximum logic level.
    pub fn depth(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// The nodes at a given level, in id order.
    pub fn level(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// All levels from sources to sinks (forward propagation order).
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.levels.iter().map(|v| v.as_slice())
    }

    /// All levels from sinks to sources (reverse propagation order),
    /// used by the reverse layer (paper Fig. 2, step 3).
    pub fn iter_rev(&self) -> impl Iterator<Item = &[NodeId]> {
        self.levels.iter().rev().map(|v| v.as_slice())
    }

    /// Forward topological order of all nodes (level by level).
    pub fn forward_order(&self) -> Vec<NodeId> {
        self.levels.iter().flatten().copied().collect()
    }
}

/// Verifies that a levelization is consistent with the cycle-cut graph:
/// every combinational edge goes from a strictly lower level to a higher one.
///
/// Returns the first violating `(fanin, node)` pair, or `None` if consistent.
pub fn check_levels(aig: &SeqAig, levels: &Levels) -> Option<(NodeId, NodeId)> {
    for (id, _) in aig.iter() {
        for fanin in aig.comb_fanins(id) {
            if levels.level_of(fanin) >= levels.level_of(id) {
                return Some((fanin, id));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SeqAig {
        // a ──┬─ not ─┐
        //     │       and ── ff(q) ─┐ (feedback to and2 via q)
        //     └────────┘            │
        //        and2(q, a) ────────┘ output
        let mut aig = SeqAig::new("diamond");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        let g = aig.add_and(a, n);
        let q = aig.add_ff("q", false);
        let g2 = aig.add_and(q, g);
        aig.connect_ff(q, g2).unwrap();
        aig.set_output(g2, "y");
        aig
    }

    #[test]
    fn sources_at_level_zero() {
        let aig = diamond();
        let levels = Levels::build(&aig);
        assert_eq!(levels.level_of(NodeId(0)), 0); // PI
        assert_eq!(levels.level_of(NodeId(3)), 0); // FF
    }

    #[test]
    fn levels_increase_along_comb_edges() {
        let aig = diamond();
        let levels = Levels::build(&aig);
        assert_eq!(check_levels(&aig, &levels), None);
        assert_eq!(levels.level_of(NodeId(1)), 1); // not(a)
        assert_eq!(levels.level_of(NodeId(2)), 2); // and(a, not(a))
        assert_eq!(levels.level_of(NodeId(4)), 3); // and(q, g)
        assert_eq!(levels.depth(), 3);
    }

    #[test]
    fn level_batches_partition_nodes() {
        let aig = diamond();
        let levels = Levels::build(&aig);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, aig.len());
        let mut seen = vec![false; aig.len()];
        for batch in levels.iter() {
            for id in batch {
                assert!(!seen[id.index()], "node listed twice");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reverse_iteration_reverses_forward() {
        let aig = diamond();
        let levels = Levels::build(&aig);
        let fwd: Vec<_> = levels.iter().collect();
        let mut rev: Vec<_> = levels.iter_rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn forward_order_is_topological() {
        let aig = diamond();
        let levels = Levels::build(&aig);
        let order = levels.forward_order();
        assert_eq!(order.len(), aig.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for (id, _) in aig.iter() {
            for fanin in aig.comb_fanins(id) {
                assert!(pos[&fanin] < pos[&id]);
            }
        }
    }

    #[test]
    fn pure_combinational_circuit() {
        let mut aig = SeqAig::new("comb");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let levels = Levels::build(&aig);
        assert_eq!(levels.num_levels(), 2);
        assert_eq!(levels.level(0), &[a, b]);
        assert_eq!(levels.level(1), &[g]);
    }
}
