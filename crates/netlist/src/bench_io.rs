//! ISCAS'89 `.bench` format reader and writer.
//!
//! The training corpus of the paper comes from ISCAS'89 / ITC'99 / OpenCores
//! netlists, which are customarily distributed in the `.bench` format:
//!
//! ```text
//! # s27 excerpt
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G14 = NAND(G0, G10)
//! G17 = NOT(G14)
//! ```
//!
//! [`parse_bench`] produces a [`Netlist`]; [`write_bench`] serializes one
//! back (round-trip stable up to formatting). This makes it possible to feed
//! real benchmark files into the pipeline when they are available, while the
//! synthetic generators in `deepseq-data` stand in for them offline.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::netlist::{GateId, GateKind, Netlist};

/// Parses `.bench` text into a [`Netlist`].
///
/// Supported gate keywords: `AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF,
/// MUX, DFF`. Lines starting with `#` and blank lines are ignored.
///
/// # Errors
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownSignal`] for references to undefined signals and
/// [`NetlistError::DuplicateName`] for double definitions.
pub fn parse_bench(text: &str) -> Result<Netlist, NetlistError> {
    parse_bench_named(text, "bench")
}

/// Like [`parse_bench`] but sets a design name.
///
/// # Errors
/// Same as [`parse_bench`].
pub fn parse_bench_named(text: &str, name: &str) -> Result<Netlist, NetlistError> {
    // Pass 1: scan definitions, record inputs and assignments.
    struct Def<'a> {
        line: usize,
        target: &'a str,
        kind: GateKind,
        args: Vec<&'a str>,
    }
    let mut inputs: Vec<(usize, &str)> = Vec::new();
    let mut outputs: Vec<(usize, &str)> = Vec::new();
    let mut defs: Vec<Def> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(stripped, "INPUT") {
            inputs.push((line, rest));
        } else if let Some(rest) = strip_directive(stripped, "OUTPUT") {
            outputs.push((line, rest));
        } else if let Some(eq) = stripped.find('=') {
            let target = stripped[..eq].trim();
            let rhs = stripped[eq + 1..].trim();
            let open = rhs.find('(').ok_or(NetlistError::Parse {
                line,
                msg: format!("expected GATE(...), got `{rhs}`"),
            })?;
            let close = rhs.rfind(')').ok_or(NetlistError::Parse {
                line,
                msg: "missing closing parenthesis".into(),
            })?;
            let kind = parse_kind(rhs[..open].trim()).ok_or_else(|| NetlistError::Parse {
                line,
                msg: format!("unknown gate `{}`", rhs[..open].trim()),
            })?;
            let args: Vec<&str> = rhs[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            defs.push(Def {
                line,
                target,
                kind,
                args,
            });
        } else {
            return Err(NetlistError::Parse {
                line,
                msg: format!("unrecognized line `{stripped}`"),
            });
        }
    }

    // Pass 2: create gates (inputs first, then definitions), then wire fanins.
    let mut netlist = Netlist::new(name);
    let mut ids: HashMap<&str, GateId> = HashMap::new();
    for (line, input) in &inputs {
        if ids.contains_key(input) {
            let _ = line;
            return Err(NetlistError::DuplicateName((*input).into()));
        }
        ids.insert(input, netlist.add_input(*input));
    }
    for def in &defs {
        if ids.contains_key(def.target) {
            return Err(NetlistError::DuplicateName(def.target.into()));
        }
        let id = if def.kind == GateKind::Dff {
            netlist.add_dff(def.target, false)
        } else {
            netlist.add_named_gate(def.kind, Vec::new(), def.target)
        };
        ids.insert(def.target, id);
    }
    for def in &defs {
        let gid = ids[def.target];
        let mut fanins = Vec::with_capacity(def.args.len());
        for arg in &def.args {
            let fid = *ids.get(arg).ok_or_else(|| NetlistError::UnknownSignal {
                line: def.line,
                name: (*arg).into(),
            })?;
            fanins.push(fid);
        }
        if def.kind == GateKind::Dff {
            if fanins.len() != 1 {
                return Err(NetlistError::Parse {
                    line: def.line,
                    msg: format!("DFF takes 1 argument, got {}", fanins.len()),
                });
            }
            netlist.connect_dff(gid, fanins[0]).expect("gid is a DFF");
        } else {
            netlist.set_fanins(gid, fanins);
        }
    }
    for (line, out) in &outputs {
        let id = *ids.get(out).ok_or_else(|| NetlistError::UnknownSignal {
            line: *line,
            name: (*out).into(),
        })?;
        netlist.set_output(id, *out);
    }
    netlist.validate()?;
    Ok(netlist)
}

/// Serializes a netlist to `.bench` text. Anonymous gates receive synthetic
/// `n<id>` names.
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    let name_of = |id: GateId| -> String {
        netlist
            .gate(id)
            .name
            .clone()
            .unwrap_or_else(|| format!("n{}", id.0))
    };
    for input in netlist.inputs() {
        out.push_str(&format!("INPUT({})\n", name_of(input)));
    }
    for (o, _) in netlist.outputs() {
        out.push_str(&format!("OUTPUT({})\n", name_of(*o)));
    }
    for (id, gate) in netlist.iter() {
        if gate.kind == GateKind::Input {
            continue;
        }
        let args: Vec<String> = gate.fanins.iter().map(|f| name_of(*f)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            name_of(id),
            gate.kind,
            args.join(", ")
        ));
    }
    out
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

fn parse_kind(word: &str) -> Option<GateKind> {
    match word.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "OR" => Some(GateKind::Or),
        "NAND" => Some(GateKind::Nand),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "MUX" => Some(GateKind::Mux),
        "DFF" | "FF" => Some(GateKind::Dff),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# tiny sequential example
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G10 = DFF(G14)
G14 = NAND(G0, G10)
G15 = OR(G1, G10)
G17 = NOT(G14)
";

    #[test]
    fn parse_counts() {
        let nl = parse_bench(S27_LIKE).unwrap();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.dffs().len(), 1);
        assert_eq!(nl.count_kind(GateKind::Nand), 1);
        assert_eq!(nl.count_kind(GateKind::Or), 1);
        assert_eq!(nl.count_kind(GateKind::Not), 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn dff_feedback_resolved() {
        let nl = parse_bench(S27_LIKE).unwrap();
        let dff = nl.find("G10").unwrap();
        let nand = nl.find("G14").unwrap();
        assert_eq!(nl.gate(dff).fanins, vec![nand]);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = parse_bench(S27_LIKE).unwrap();
        let text = write_bench(&nl);
        let nl2 = parse_bench(&text).unwrap();
        assert_eq!(nl.len(), nl2.len());
        assert_eq!(nl.inputs().len(), nl2.inputs().len());
        assert_eq!(nl.dffs().len(), nl2.dffs().len());
        assert_eq!(nl.outputs().len(), nl2.outputs().len());
        for (id, gate) in nl.iter() {
            let other = nl2
                .find(gate.name.as_deref().unwrap_or(""))
                .map(|g| nl2.gate(g));
            if let Some(other) = other {
                assert_eq!(gate.kind, other.kind, "kind mismatch for {id}");
                assert_eq!(gate.fanins.len(), other.fanins.len());
            }
        }
    }

    #[test]
    fn unknown_signal_reported() {
        let err = parse_bench("INPUT(a)\nb = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownSignal { name, .. } if name == "ghost"));
    }

    #[test]
    fn duplicate_name_reported() {
        let err = parse_bench("INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName(n) if n == "a"));
    }

    #[test]
    fn malformed_line_reported() {
        let err = parse_bench("this is not bench\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn unknown_gate_reported() {
        let err = parse_bench("INPUT(a)\nb = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse_bench("\n# hi\nINPUT(x) # trailing\n\n").unwrap();
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    fn inv_and_buff_aliases() {
        let nl = parse_bench("INPUT(a)\nb = INV(a)\nc = BUFF(b)\n").unwrap();
        assert_eq!(nl.count_kind(GateKind::Not), 1);
        assert_eq!(nl.count_kind(GateKind::Buf), 1);
    }
}
