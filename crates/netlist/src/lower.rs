//! Unoptimized lowering of a generic [`Netlist`] into a [`SeqAig`].
//!
//! The paper's inference flow (Section V-A2) requires test circuits with
//! arbitrary gate types to be decomposed into AND/NOT combinations *without
//! any optimization*, such that "the fanout gate in the resulting combination
//! has the same switching activity as the original gate". [`lower_to_aig`]
//! performs exactly that decomposition and records, per original gate, the
//! AIG node whose value (and hence switching activity) equals the gate
//! output.

use crate::aig::{NodeId, SeqAig};
use crate::error::NetlistError;
use crate::netlist::{GateId, GateKind, Netlist};

/// Result of lowering a [`Netlist`]: the AIG plus the per-gate fanout node map.
#[derive(Debug, Clone)]
pub struct LoweredNetlist {
    /// The decomposed circuit.
    pub aig: SeqAig,
    /// For every original gate (indexed by [`GateId`]), the AIG node carrying
    /// the same logic value. Probabilities recorded on these nodes are the
    /// probabilities of the original gates (paper: "we only record
    /// probabilities of the fanout gates in all converted combinations").
    pub fanout_node: Vec<NodeId>,
}

impl LoweredNetlist {
    /// The AIG node mirroring `gate`'s output.
    pub fn node_for(&self, gate: GateId) -> NodeId {
        self.fanout_node[gate.index()]
    }
}

/// Decomposes `netlist` into a sequential AIG without optimization.
///
/// Gate-by-gate templates (N-input gates fold left over 2-input steps):
///
/// | Gate | AIG structure |
/// |---|---|
/// | `AND`  | chain of `And` |
/// | `NAND` | `Not(And-chain)` |
/// | `OR`   | `Not(And(Not a, Not b))` chain |
/// | `NOR`  | `And(Not a, Not b)` chain |
/// | `XOR`  | `Not(And(Not(And(a, Not b)), Not(And(Not a, b))))` per step |
/// | `XNOR` | `Not(XOR step)` |
/// | `MUX`  | `Not(And(Not(And(Not s, a)), Not(And(s, b))))` |
/// | `BUF`  | wire (maps to its fanin's node) |
/// | `DFF`  | `Ff` |
///
/// # Errors
/// Propagates [`NetlistError::CombinationalCycle`] and validation failures
/// from the input netlist.
pub fn lower_to_aig(netlist: &Netlist) -> Result<LoweredNetlist, NetlistError> {
    netlist.validate()?;
    let order = netlist.topo_order()?;
    let mut aig = SeqAig::new(netlist.name());
    let invalid = NodeId(u32::MAX);
    let mut map: Vec<NodeId> = vec![invalid; netlist.len()];

    for gate_id in order {
        let gate = netlist.gate(gate_id);
        let ins = |map: &[NodeId]| -> Vec<NodeId> {
            gate.fanins.iter().map(|f| map[f.index()]).collect()
        };
        let out = match gate.kind {
            GateKind::Input => {
                let name = gate
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("pi_{}", gate_id.0));
                aig.add_pi(name)
            }
            GateKind::Dff => {
                let name = gate
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("ff_{}", gate_id.0));
                // D input connected in the fix-up pass below (it may be a
                // feedback signal not lowered yet).
                aig.add_ff(name, gate.init)
            }
            GateKind::Buf => ins(&map)[0],
            GateKind::Not => aig.add_not(ins(&map)[0]),
            GateKind::And => fold_and(&mut aig, &ins(&map)),
            GateKind::Nand => {
                let a = fold_and(&mut aig, &ins(&map));
                aig.add_not(a)
            }
            GateKind::Or => {
                let nor = fold_nor(&mut aig, &ins(&map));
                aig.add_not(nor)
            }
            GateKind::Nor => fold_nor(&mut aig, &ins(&map)),
            GateKind::Xor => fold_xor(&mut aig, &ins(&map)),
            GateKind::Xnor => {
                let x = fold_xor(&mut aig, &ins(&map));
                aig.add_not(x)
            }
            GateKind::Mux => {
                let v = ins(&map);
                let (s, a, b) = (v[0], v[1], v[2]);
                let ns = aig.add_not(s);
                let t0 = aig.add_and(ns, a);
                let t1 = aig.add_and(s, b);
                let n0 = aig.add_not(t0);
                let n1 = aig.add_not(t1);
                let both_off = aig.add_and(n0, n1);
                aig.add_not(both_off)
            }
        };
        if let Some(name) = &gate.name {
            if !matches!(gate.kind, GateKind::Input | GateKind::Dff | GateKind::Buf) {
                aig.set_node_name(out, name.clone());
            }
        }
        map[gate_id.index()] = out;
    }

    // Fix-up pass: connect FF D inputs (feedback edges may point anywhere).
    for (gate_id, gate) in netlist.iter() {
        if gate.kind == GateKind::Dff {
            let d = map[gate.fanins[0].index()];
            debug_assert_ne!(d, invalid, "topo order must cover all gates");
            aig.connect_ff(map[gate_id.index()], d)?;
        }
    }

    for (out, name) in netlist.outputs() {
        aig.set_output(map[out.index()], name.clone());
    }

    aig.validate()?;
    Ok(LoweredNetlist {
        aig,
        fanout_node: map,
    })
}

/// Left fold of `And` over two or more operands (identity for a single one).
fn fold_and(aig: &mut SeqAig, ins: &[NodeId]) -> NodeId {
    let mut acc = ins[0];
    for &next in &ins[1..] {
        acc = aig.add_and(acc, next);
    }
    acc
}

/// `NOR(a, b, ...)` = `And(Not a, Not b, ...)` folded left.
fn fold_nor(aig: &mut SeqAig, ins: &[NodeId]) -> NodeId {
    let mut acc = aig.add_not(ins[0]);
    for &next in &ins[1..] {
        let n = aig.add_not(next);
        acc = aig.add_and(acc, n);
    }
    acc
}

/// XOR folded left: `x ^ y = Not(And(Not(And(x, Not y)), Not(And(Not x, y))))`.
fn fold_xor(aig: &mut SeqAig, ins: &[NodeId]) -> NodeId {
    let mut acc = ins[0];
    for &next in &ins[1..] {
        let nx = aig.add_not(acc);
        let ny = aig.add_not(next);
        let t0 = aig.add_and(acc, ny);
        let t1 = aig.add_and(nx, next);
        let n0 = aig.add_not(t0);
        let n1 = aig.add_not(t1);
        let conj = aig.add_and(n0, n1);
        acc = aig.add_not(conj);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AigNode;

    /// Evaluates the combinational part of a lowered AIG for given PI values
    /// (no FFs in these tests).
    fn eval(aig: &SeqAig, pi_values: &[(NodeId, bool)]) -> Vec<bool> {
        let mut values = vec![false; aig.len()];
        for &(pi, v) in pi_values {
            values[pi.index()] = v;
        }
        for (id, node) in aig.iter() {
            match *node {
                AigNode::And(a, b) => values[id.index()] = values[a.index()] && values[b.index()],
                AigNode::Not(a) => values[id.index()] = !values[a.index()],
                _ => {}
            }
        }
        values
    }

    fn truth_table(kind: GateKind, arity: usize) -> Vec<bool> {
        // Reference semantics for comb gates.
        let mut table = Vec::new();
        for row in 0..(1usize << arity) {
            let bits: Vec<bool> = (0..arity).map(|i| (row >> i) & 1 == 1).collect();
            let out = match kind {
                GateKind::And => bits.iter().all(|&b| b),
                GateKind::Or => bits.iter().any(|&b| b),
                GateKind::Nand => !bits.iter().all(|&b| b),
                GateKind::Nor => !bits.iter().any(|&b| b),
                GateKind::Xor => bits.iter().filter(|&&b| b).count() % 2 == 1,
                GateKind::Xnor => bits.iter().filter(|&&b| b).count() % 2 == 0,
                GateKind::Not => !bits[0],
                GateKind::Buf => bits[0],
                GateKind::Mux => {
                    if bits[0] {
                        bits[2]
                    } else {
                        bits[1]
                    }
                }
                _ => unreachable!(),
            };
            table.push(out);
        }
        table
    }

    fn check_gate(kind: GateKind, arity: usize) {
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..arity).map(|i| nl.add_input(format!("i{i}"))).collect();
        let g = nl.add_gate(kind, ins.clone());
        nl.set_output(g, "y");
        let lowered = lower_to_aig(&nl).unwrap();
        let expected = truth_table(kind, arity);
        assert_eq!(expected.len(), 1usize << arity);
        for (row, &exp) in expected.iter().enumerate() {
            let assignment: Vec<_> = ins
                .iter()
                .enumerate()
                .map(|(i, gid)| (lowered.node_for(*gid), (row >> i) & 1 == 1))
                .collect();
            let values = eval(&lowered.aig, &assignment);
            let out = values[lowered.node_for(g).index()];
            assert_eq!(out, exp, "{kind} arity {arity} row {row:b} mismatch");
        }
    }

    #[test]
    fn and_or_nand_nor_match_truth_tables() {
        for arity in [1, 2, 3, 4] {
            check_gate(GateKind::And, arity);
            check_gate(GateKind::Or, arity);
            check_gate(GateKind::Nand, arity);
            check_gate(GateKind::Nor, arity);
        }
    }

    #[test]
    fn xor_xnor_match_truth_tables() {
        for arity in [1, 2, 3] {
            check_gate(GateKind::Xor, arity);
            check_gate(GateKind::Xnor, arity);
        }
    }

    #[test]
    fn not_buf_mux_match_truth_tables() {
        check_gate(GateKind::Not, 1);
        check_gate(GateKind::Buf, 1);
        check_gate(GateKind::Mux, 3);
    }

    #[test]
    fn dff_feedback_survives_lowering() {
        let mut nl = Netlist::new("toggle");
        let q = nl.add_dff("q", false);
        let n = nl.add_gate(GateKind::Not, vec![q]);
        nl.connect_dff(q, n).unwrap();
        nl.set_output(q, "y");
        let lowered = lower_to_aig(&nl).unwrap();
        assert_eq!(lowered.aig.num_ffs(), 1);
        assert_eq!(lowered.aig.num_nots(), 1);
        let ff = lowered.node_for(q);
        assert!(lowered.aig.node(ff).is_ff());
        assert!(lowered.aig.ff_fanin(ff).is_some());
    }

    #[test]
    fn buf_maps_to_fanin_node() {
        let mut nl = Netlist::new("b");
        let a = nl.add_input("a");
        let b = nl.add_gate(GateKind::Buf, vec![a]);
        nl.set_output(b, "y");
        let lowered = lower_to_aig(&nl).unwrap();
        assert_eq!(lowered.node_for(a), lowered.node_for(b));
    }

    #[test]
    fn names_preserved_on_fanout_nodes() {
        let mut nl = Netlist::new("named");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_named_gate(GateKind::Or, vec![a, b], "or_out");
        nl.set_output(g, "y");
        let lowered = lower_to_aig(&nl).unwrap();
        assert_eq!(lowered.aig.find("or_out"), Some(lowered.node_for(g)));
        assert_eq!(lowered.aig.find("a"), Some(lowered.node_for(a)));
    }

    #[test]
    fn outputs_carried_over() {
        let mut nl = Netlist::new("o");
        let a = nl.add_input("a");
        let n = nl.add_gate(GateKind::Not, vec![a]);
        nl.set_output(n, "y");
        let lowered = lower_to_aig(&nl).unwrap();
        assert_eq!(lowered.aig.outputs().len(), 1);
        assert_eq!(lowered.aig.outputs()[0].0, lowered.node_for(n));
    }
}
