//! Generic multi-gate-type netlist.
//!
//! Realistic designs (the power-estimation test circuits of Table IV) use a
//! full standard-cell-style gate library. [`Netlist`] models those; the
//! [`lower`](crate::lower) module decomposes a `Netlist` into a [`SeqAig`](crate::SeqAig)
//! *without optimization*, as required for inference (paper, Section V-A2).
//!
//! Unlike [`SeqAig`](crate::SeqAig), gates may be declared in any order; [`Netlist::topo_order`]
//! computes a topological order of the combinational part (DFF data edges cut)
//! and detects combinational cycles.

use std::collections::HashMap;
use std::fmt;

use crate::aig::NodeId;
use crate::error::NetlistError;

/// Identifier of a gate inside a [`Netlist`] (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Reference to a gate: alias kept for API clarity in downstream crates.
pub type GateRef = GateId;

/// The gate library supported by [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// N-input AND (N ≥ 1).
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// N-input XOR (odd parity).
    Xor,
    /// N-input XNOR (even parity).
    Xnor,
    /// Inverter (1 fanin).
    Not,
    /// Buffer (1 fanin).
    Buf,
    /// 2:1 multiplexer; fanins are `[select, a, b]`, output = `a` when
    /// select is 0, `b` when select is 1.
    Mux,
    /// D flip-flop (1 fanin: the D input), with a power-on state.
    Dff,
}

impl GateKind {
    /// The exact fanin count this kind requires, or `None` for variadic kinds.
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Input => Some(0),
            GateKind::Not | GateKind::Buf | GateKind::Dff => Some(1),
            GateKind::Mux => Some(3),
            _ => None,
        }
    }

    /// True for D flip-flops.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Mux => "MUX",
            GateKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Function of the gate.
    pub kind: GateKind,
    /// Fanin gate ids (semantics per [`GateKind`]).
    pub fanins: Vec<GateId>,
    /// Optional signal name.
    pub name: Option<String>,
    /// Power-on state — meaningful only for [`GateKind::Dff`].
    pub init: bool,
}

/// A generic gate-level netlist.
///
/// # Example
/// ```
/// use deepseq_netlist::netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate(GateKind::Xor, vec![a, b]);
/// let carry = nl.add_gate(GateKind::And, vec![a, b]);
/// nl.set_output(sum, "sum");
/// nl.set_output(carry, "carry");
/// assert_eq!(nl.len(), 4);
/// nl.validate()?;
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    outputs: Vec<(GateId, String)>,
    name_index: HashMap<String, GateId>,
}

impl Netlist {
    /// Creates an empty netlist with a design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates (inputs and DFFs included).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Looks up a gate by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.name_index.get(name).copied()
    }

    fn push(&mut self, gate: Gate) -> GateId {
        let id = GateId(self.gates.len() as u32);
        if let Some(ref n) = gate.name {
            self.name_index.insert(n.clone(), id);
        }
        self.gates.push(gate);
        id
    }

    /// Adds a named primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        self.push(Gate {
            kind: GateKind::Input,
            fanins: Vec::new(),
            name: Some(name.into()),
            init: false,
        })
    }

    /// Adds an anonymous combinational gate.
    pub fn add_gate(&mut self, kind: GateKind, fanins: Vec<GateId>) -> GateId {
        self.push(Gate {
            kind,
            fanins,
            name: None,
            init: false,
        })
    }

    /// Adds a named combinational gate.
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<GateId>,
        name: impl Into<String>,
    ) -> GateId {
        self.push(Gate {
            kind,
            fanins,
            name: Some(name.into()),
            init: false,
        })
    }

    /// Adds a named D flip-flop with unconnected D input (connect with
    /// [`Netlist::connect_dff`]).
    pub fn add_dff(&mut self, name: impl Into<String>, init: bool) -> GateId {
        self.push(Gate {
            kind: GateKind::Dff,
            fanins: Vec::new(),
            name: Some(name.into()),
            init,
        })
    }

    /// Connects (or reconnects) the D input of `dff`.
    ///
    /// # Errors
    /// Returns [`NetlistError::NotAnFf`] if `dff` is not a DFF.
    pub fn connect_dff(&mut self, dff: GateId, d: GateId) -> Result<(), NetlistError> {
        if self.gates[dff.index()].kind != GateKind::Dff {
            return Err(NetlistError::NotAnFf {
                node: NodeId(dff.0),
            });
        }
        self.gates[dff.index()].fanins = vec![d];
        Ok(())
    }

    /// Replaces the fanin list of a gate (used by parsers that create gates
    /// before their fanins are known).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn set_fanins(&mut self, id: GateId, fanins: Vec<GateId>) {
        self.gates[id.index()].fanins = fanins;
    }

    /// Marks `id` as a primary output under the given name.
    pub fn set_output(&mut self, id: GateId, name: impl Into<String>) {
        self.outputs.push((id, name.into()));
    }

    /// The primary outputs as `(gate, name)` pairs.
    pub fn outputs(&self) -> &[(GateId, String)] {
        &self.outputs
    }

    /// Ids of all primary inputs, in id order.
    pub fn inputs(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all D flip-flops, in id order.
    pub fn dffs(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind == GateKind::Dff)
            .map(|(id, _)| id)
            .collect()
    }

    /// Count of gates of a given kind.
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Checks arity and reference validity.
    ///
    /// # Errors
    /// * [`NetlistError::BadArity`] for wrong fanin counts (an unconnected
    ///   DFF also reports arity 0 vs 1);
    /// * [`NetlistError::DanglingRef`] for out-of-range fanins.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.gates.len() as u32;
        for (id, gate) in self.iter() {
            if let Some(arity) = gate.kind.fixed_arity() {
                if gate.fanins.len() != arity {
                    return Err(NetlistError::BadArity {
                        node: NodeId(id.0),
                        expected: arity,
                        actual: gate.fanins.len(),
                    });
                }
            } else if gate.fanins.is_empty() {
                return Err(NetlistError::BadArity {
                    node: NodeId(id.0),
                    expected: 1,
                    actual: 0,
                });
            }
            for &fanin in &gate.fanins {
                if fanin.0 >= n {
                    return Err(NetlistError::DanglingRef {
                        node: NodeId(id.0),
                        fanin: NodeId(fanin.0),
                    });
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of all gates over the cycle-cut graph (DFF data
    /// edges removed; DFFs and inputs are sources).
    ///
    /// # Errors
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational part
    /// is cyclic.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        // Kahn's algorithm over combinational edges.
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, gate) in self.iter() {
            if gate.kind.is_sequential() {
                continue; // sequential edge: cut
            }
            for &fanin in &gate.fanins {
                indeg[id.index()] += 1;
                succs[fanin.index()].push(id.0);
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(GateId(g));
            for &s in &succs[g as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a node with positive in-degree");
            return Err(NetlistError::CombinationalCycle {
                node: NodeId(stuck as u32),
            });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux_register() -> Netlist {
        // q' = sel ? d : q  (load-enable register)
        let mut nl = Netlist::new("loadreg");
        let sel = nl.add_input("sel");
        let d = nl.add_input("d");
        let q = nl.add_dff("q", false);
        let mux = nl.add_gate(GateKind::Mux, vec![sel, q, d]);
        nl.connect_dff(q, mux).unwrap();
        nl.set_output(q, "q_out");
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = mux_register();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.len(), 4);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.dffs().len(), 1);
        assert_eq!(nl.count_kind(GateKind::Mux), 1);
    }

    #[test]
    fn unconnected_dff_fails_arity() {
        let mut nl = Netlist::new("bad");
        let _ = nl.add_dff("q", false);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::BadArity {
                expected: 1,
                actual: 0,
                ..
            })
        ));
    }

    #[test]
    fn variadic_gate_needs_fanins() {
        let mut nl = Netlist::new("bad");
        let _ = nl.add_gate(GateKind::And, vec![]);
        assert!(matches!(nl.validate(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn dff_cycle_is_fine_comb_cycle_is_not() {
        let nl = mux_register();
        assert!(nl.topo_order().is_ok());

        let mut bad = Netlist::new("ring");
        let a = bad.add_input("a");
        // Build g1 = AND(a, g2), g2 = NOT(g1): a combinational loop.
        let g1 = bad.add_gate(GateKind::And, vec![a, GateId(2)]);
        let _g2 = bad.add_gate(GateKind::Not, vec![g1]);
        assert!(matches!(
            bad.topo_order(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn topo_order_respects_comb_edges() {
        let nl = mux_register();
        let order = nl.topo_order().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, g)| (*g, i)).collect();
        for (id, gate) in nl.iter() {
            if gate.kind.is_sequential() {
                continue;
            }
            for fanin in &gate.fanins {
                assert!(pos[fanin] < pos[&id]);
            }
        }
    }

    #[test]
    fn mux_arity_enforced() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let _ = nl.add_gate(GateKind::Mux, vec![a, a]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::BadArity {
                expected: 3,
                actual: 2,
                ..
            })
        ));
    }

    #[test]
    fn find_and_display() {
        let nl = mux_register();
        assert_eq!(nl.find("sel"), Some(GateId(0)));
        assert_eq!(GateId(3).to_string(), "g3");
        assert_eq!(GateKind::Nand.to_string(), "NAND");
    }
}
