//! Property-based tests for the DeepSeq model: predictions must be valid
//! probabilities on arbitrary circuits, propagation must respect the fixed
//! PI constraint, and graph preprocessing must be structurally sound.

use deepseq_core::encoding::initial_states;
use deepseq_core::{Aggregator, CircuitGraph, DeepSeq, DeepSeqConfig, PropagationScheme};
use deepseq_netlist::{NodeId, SeqAig};
use deepseq_sim::Workload;
use proptest::prelude::*;

fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..5, 0usize..4, 1usize..25, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                aig.add_not(NodeId(next(len) as u32));
            } else {
                aig.add_and(NodeId(next(len) as u32), NodeId(next(len) as u32));
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            aig.connect_ff(ff, NodeId(next(len) as u32)).unwrap();
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

fn tiny_config(aggregator: Aggregator, scheme: PropagationScheme) -> DeepSeqConfig {
    DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        aggregator,
        scheme,
        seed: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictions_are_probabilities(aig in arb_seq_aig(), p1 in 0.0f64..1.0) {
        let config = tiny_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(config);
        let graph = CircuitGraph::build(&aig);
        let w = Workload::uniform(aig.num_pis(), p1);
        let h0 = initial_states(&aig, &w, config.hidden_dim, 1);
        let preds = model.predict(&graph, &h0);
        prop_assert_eq!(preds.tr.shape(), (aig.len(), 2));
        prop_assert_eq!(preds.lg.shape(), (aig.len(), 1));
        for &v in preds.tr.data().iter().chain(preds.lg.data()) {
            prop_assert!((0.0..=1.0).contains(&v), "prediction {v} out of range");
        }
    }

    #[test]
    fn all_variants_run_on_random_circuits(aig in arb_seq_aig()) {
        for scheme in [PropagationScheme::DagConv, PropagationScheme::DagRec, PropagationScheme::Custom] {
            for agg in [Aggregator::ConvSum, Aggregator::Attention, Aggregator::DualAttention] {
                let config = tiny_config(agg, scheme);
                let model = DeepSeq::new(config);
                let graph = CircuitGraph::build(&aig);
                let w = Workload::uniform(aig.num_pis(), 0.5);
                let h0 = initial_states(&aig, &w, config.hidden_dim, 1);
                let preds = model.predict(&graph, &h0);
                prop_assert!(preds.lg.data().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn graph_batches_cover_every_gate_once(aig in arb_seq_aig()) {
        let graph = CircuitGraph::build(&aig);
        // Forward batches update exactly the AND/NOT nodes.
        let mut updated = vec![0usize; aig.len()];
        for batch in &graph.forward {
            for &v in &batch.nodes {
                updated[v as usize] += 1;
            }
        }
        for (id, node) in aig.iter() {
            let expected = usize::from(node.is_and() || node.is_not());
            prop_assert_eq!(updated[id.index()], expected, "node {}", id);
        }
    }

    #[test]
    fn reverse_batches_never_touch_pis(aig in arb_seq_aig()) {
        let graph = CircuitGraph::build(&aig);
        for batch in &graph.reverse {
            for &v in &batch.nodes {
                prop_assert!(!aig.node(NodeId(v)).is_pi());
            }
        }
    }

    #[test]
    fn segments_reference_valid_nodes(aig in arb_seq_aig()) {
        let graph = CircuitGraph::build(&aig);
        for batch in graph.forward.iter().chain(&graph.reverse) {
            for &(neighbor, seg) in &batch.edges {
                prop_assert!((seg as usize) < batch.nodes.len());
                prop_assert!((neighbor as usize) < aig.len());
            }
        }
    }

    #[test]
    fn pi_rows_stay_fixed(aig in arb_seq_aig(), p1 in 0.0f64..1.0) {
        let config = tiny_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(config);
        let graph = CircuitGraph::build(&aig);
        let w = Workload::uniform(aig.num_pis(), p1);
        let h0 = initial_states(&aig, &w, config.hidden_dim, 1);
        let mut tape = deepseq_nn::Tape::new();
        let vars = model.forward(&mut tape, &graph, &h0);
        let hidden = tape.value(vars.hidden);
        for &pi in &graph.pis {
            for c in 0..config.hidden_dim {
                prop_assert_eq!(hidden.get(pi as usize, c), h0.get(pi as usize, c));
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_random_configs(
        aig in arb_seq_aig(),
        hidden in 4usize..12,
        iters in 1usize..4,
    ) {
        let config = DeepSeqConfig {
            hidden_dim: hidden,
            iterations: iters,
            aggregator: Aggregator::DualAttention,
            scheme: PropagationScheme::Custom,
            seed: 9,
        };
        let model = DeepSeq::new(config);
        let graph = CircuitGraph::build(&aig);
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let h0 = initial_states(&aig, &w, hidden, 2);
        let before = model.predict(&graph, &h0);
        let restored = DeepSeq::from_checkpoint(&model.save_to_string()).unwrap();
        let after = restored.predict(&graph, &h0);
        prop_assert_eq!(before, after);
    }
}
