//! The training-side guard of the two-mode numerics contract: setting
//! `DEEPSEQ_KERNEL=simd` is a *serving* opt-in and must be invisible to
//! every training-path computation.
//!
//! This binary sets the variable before any kernel dispatch and then
//! pins that (a) the process-wide training default refuses fast mode,
//! (b) the `Matrix` product methods the autograd tape is built on keep
//! producing the naive kernel's exact bits, and (c) full data-parallel
//! training stays bitwise deterministic — identical epoch history,
//! parameter bytes and eval metrics across repeated runs and across
//! worker-pool sizes, exactly as `training_determinism.rs` proves for
//! the default environment.

use std::sync::Once;

use deepseq_core::{evaluate_on, train_on, DeepSeq, DeepSeqConfig, TrainOptions, TrainSample};
use deepseq_netlist::SeqAig;
use deepseq_nn::{Kernel, Matrix, Pool};
use deepseq_sim::{SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Set `DEEPSEQ_KERNEL=simd` before the first dispatch caches it. Every
/// test calls this first.
fn set_simd_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| std::env::set_var("DEEPSEQ_KERNEL", "simd"));
    assert!(
        Kernel::fast_mode(),
        "DEEPSEQ_KERNEL=simd was set too late: the kernel choice was already cached"
    );
}

#[test]
fn training_default_refuses_fast_mode() {
    set_simd_env();
    assert_eq!(
        Kernel::global(),
        Kernel::Naive,
        "the training default must ignore DEEPSEQ_KERNEL=simd"
    );
    // But the serving entry point honors it — the env var is not lost.
    assert_eq!(Kernel::for_serve(), Kernel::Simd);
}

#[test]
fn matrix_products_stay_bitwise_naive() {
    set_simd_env();
    // Shapes big enough that a leaked fast-mode dispatch would actually
    // run fused panels (and therefore change bits for these operands).
    let a = Matrix::from_fn(48, 96, |r, c| ((r * 96 + c) as f32).sin());
    let b = Matrix::from_fn(96, 40, |r, c| ((r * 40 + c) as f32 * 0.37).cos());
    let got = a.matmul(&b);
    let want = Kernel::Naive.matmul(&a, &b);
    assert_eq!(got, want, "Matrix::matmul left the bitwise reference path");
    assert_eq!(a.t_matmul(&want), Kernel::Naive.t_matmul(&a, &want));
    assert_eq!(a.matmul_t(&a), Kernel::Naive.matmul_t(&a, &a));
}

/// A tiny two-sample training suite (mirrors the determinism suite's
/// recipe at smaller scale).
fn sample_suite(hidden: usize) -> Vec<TrainSample> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..2)
        .map(|i| {
            let mut aig = SeqAig::new(format!("g{i}"));
            let a = aig.add_pi("a");
            let b = aig.add_pi("b");
            let g = aig.add_and(a, b);
            let q = aig.add_ff("q", i % 2 == 0);
            let inv = aig.add_not(g);
            let g2 = aig.add_and(q, inv);
            aig.connect_ff(q, g2).unwrap();
            aig.set_output(g2, "y");
            let w = Workload::random(2, &mut rng);
            TrainSample::generate(
                &aig,
                &w,
                hidden,
                &SimOptions {
                    cycles: 32,
                    warmup: 4,
                    seed: 5 ^ i as u64,
                },
                9 + i as u64,
            )
        })
        .collect()
}

#[test]
fn training_stays_bitwise_deterministic_under_simd_env() {
    set_simd_env();
    let samples = sample_suite(8);
    let opts = TrainOptions {
        epochs: 2,
        ..TrainOptions::default()
    };
    let outcome = |threads: usize| {
        let pool = Pool::new(threads);
        let mut model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 3,
            ..DeepSeqConfig::default()
        });
        let history = train_on(&pool, &mut model, &samples, &opts);
        let metrics = evaluate_on(&pool, &model, &samples);
        (history, model.params().save_binary(), metrics)
    };
    let reference = outcome(1);
    // Same pool size, repeated: the regression pin against any
    // run-to-run nondeterminism sneaking in via the env flag.
    assert_eq!(outcome(1), reference, "repeat run diverged under simd env");
    for threads in [2usize, 4] {
        assert_eq!(
            outcome(threads),
            reference,
            "training under DEEPSEQ_KERNEL=simd diverged at {threads} threads"
        );
    }
}
