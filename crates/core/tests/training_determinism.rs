//! Bitwise determinism of the data-parallel training subsystem.
//!
//! The contract under test: `train`, `train_batched` and `evaluate` produce
//! **bit-identical** results (a) on worker pools of any size, (b) across
//! repeated runs at the same seed, and (c) the dataset pipeline
//! (`TrainSample::generate`, `train_test_split`) is a pure function of its
//! seeds. Equality is checked on the serialized `Params` bytes (exact f32
//! bit patterns), on `f64::to_bits` of every loss/metric, and on the
//! `EpochStats` rows themselves — not within a tolerance.

use deepseq_core::{
    evaluate_on, train_batched_on, train_on, train_test_split, DeepSeq, DeepSeqConfig, EpochStats,
    EvalMetrics, TrainOptions, TrainSample,
};
use deepseq_netlist::SeqAig;
use deepseq_nn::Pool;
use deepseq_sim::{SimOptions, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small suite of distinct sequential circuits with simulated targets.
fn sample_suite(n: usize, hidden: usize, seed: u64) -> Vec<TrainSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut aig = SeqAig::new(format!("c{i}"));
            let a = aig.add_pi("a");
            let b = aig.add_pi("b");
            let g = aig.add_and(a, b);
            let inv = aig.add_not(g);
            let q = aig.add_ff("q", false);
            let g2 = aig.add_and(q, inv);
            aig.connect_ff(q, g2).unwrap();
            // Vary the suite: odd samples get an extra layer of logic.
            let out = if i % 2 == 1 {
                let h = aig.add_and(g2, a);
                aig.add_not(h)
            } else {
                g2
            };
            aig.set_output(out, "y");
            let w = Workload::random(2, &mut rng);
            TrainSample::generate(
                &aig,
                &w,
                hidden,
                &SimOptions {
                    cycles: 64,
                    warmup: 8,
                    seed: seed ^ i as u64,
                },
                seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

fn small_config(seed: u64) -> DeepSeqConfig {
    DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        seed,
        ..DeepSeqConfig::default()
    }
}

/// Trains a fresh model on `pool`, returning the epoch history, the final
/// parameter bytes and the post-training eval metrics (computed on the
/// same pool).
fn train_outcome(
    pool: &Pool,
    samples: &[TrainSample],
    opts: &TrainOptions,
) -> (Vec<EpochStats>, Vec<u8>, EvalMetrics) {
    let mut model = DeepSeq::new(small_config(3));
    let history = train_on(pool, &mut model, samples, opts);
    let metrics = evaluate_on(pool, &model, samples);
    (history, model.params().save_binary(), metrics)
}

fn assert_bitwise_eq(
    a: &(Vec<EpochStats>, Vec<u8>, EvalMetrics),
    b: &(Vec<EpochStats>, Vec<u8>, EvalMetrics),
    what: &str,
) {
    assert_eq!(a.0.len(), b.0.len(), "{what}: epoch count");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.epoch, y.epoch, "{what}: epoch index");
        assert_eq!(
            x.loss.to_bits(),
            y.loss.to_bits(),
            "{what}: epoch {} loss {} vs {}",
            x.epoch,
            x.loss,
            y.loss
        );
    }
    assert_eq!(a.1, b.1, "{what}: final Params bytes");
    assert_eq!(
        a.2.pe_tr.to_bits(),
        b.2.pe_tr.to_bits(),
        "{what}: pe_tr {} vs {}",
        a.2.pe_tr,
        b.2.pe_tr
    );
    assert_eq!(
        a.2.pe_lg.to_bits(),
        b.2.pe_lg.to_bits(),
        "{what}: pe_lg {} vs {}",
        a.2.pe_lg,
        b.2.pe_lg
    );
}

#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    // Groups of 3 over 7 samples: full groups, a ragged tail group, and a
    // chunk count that never divides the pool sizes evenly.
    let samples = sample_suite(7, 8, 11);
    let opts = TrainOptions {
        epochs: 4,
        lr: 5e-3,
        samples_per_step: 3,
        ..TrainOptions::default()
    };
    let reference = train_outcome(&Pool::new(1), &samples, &opts);
    for threads in [2usize, 4, 7] {
        let got = train_outcome(&Pool::new(threads), &samples, &opts);
        assert_bitwise_eq(&reference, &got, &format!("{threads} threads"));
    }
}

#[test]
fn training_is_bitwise_identical_across_runs_at_same_seed() {
    let samples = sample_suite(5, 8, 23);
    let opts = TrainOptions {
        epochs: 3,
        lr: 5e-3,
        samples_per_step: 2,
        ..TrainOptions::default()
    };
    let pool = Pool::new(4);
    let first = train_outcome(&pool, &samples, &opts);
    let second = train_outcome(&pool, &samples, &opts);
    assert_bitwise_eq(&first, &second, "same seed, same pool");

    // A different shuffle seed must actually change the trajectory —
    // otherwise the equality assertions above prove nothing.
    let other = train_outcome(&pool, &samples, &TrainOptions { seed: 99, ..opts });
    assert_ne!(
        first.1, other.1,
        "different shuffle seeds must produce different parameters"
    );
}

#[test]
fn per_sample_steps_match_the_serial_recipe_on_any_pool() {
    // samples_per_step = 1 is the paper's per-sample ADAM loop; the pool
    // must not change a single bit of it.
    let samples = sample_suite(4, 8, 31);
    let opts = TrainOptions {
        epochs: 3,
        lr: 5e-3,
        ..TrainOptions::default()
    };
    let reference = train_outcome(&Pool::new(1), &samples, &opts);
    for threads in [2usize, 4, 7] {
        let got = train_outcome(&Pool::new(threads), &samples, &opts);
        assert_bitwise_eq(&reference, &got, &format!("per-sample, {threads} threads"));
    }
}

#[test]
fn batched_training_is_bitwise_identical_across_thread_counts() {
    let samples = sample_suite(6, 8, 41);
    let opts = TrainOptions {
        epochs: 3,
        lr: 5e-3,
        samples_per_step: 2,
        ..TrainOptions::default()
    };
    let run = |threads: usize| {
        let pool = Pool::new(threads);
        let mut model = DeepSeq::new(small_config(7));
        let history = train_batched_on(&pool, &mut model, &samples, &opts, 2);
        (history, model.params().save_binary())
    };
    let (ref_history, ref_bytes) = run(1);
    for threads in [2usize, 4, 7] {
        let (history, bytes) = run(threads);
        assert_eq!(ref_history, history, "{threads} threads: EpochStats");
        assert_eq!(ref_bytes, bytes, "{threads} threads: Params bytes");
    }
}

#[test]
fn evaluate_is_bitwise_identical_across_thread_counts() {
    let samples = sample_suite(9, 8, 53);
    let model = DeepSeq::new(small_config(5));
    let reference = evaluate_on(&Pool::new(1), &model, &samples);
    for threads in [2usize, 4, 7] {
        let got = evaluate_on(&Pool::new(threads), &model, &samples);
        assert_eq!(
            reference.pe_tr.to_bits(),
            got.pe_tr.to_bits(),
            "{threads} threads: pe_tr"
        );
        assert_eq!(
            reference.pe_lg.to_bits(),
            got.pe_lg.to_bits(),
            "{threads} threads: pe_lg"
        );
    }
    // Empty input stays well-defined on every pool size.
    let empty = evaluate_on(&Pool::new(4), &model, &[]);
    assert_eq!(empty.pe_tr, 0.0);
    assert_eq!(empty.pe_lg, 0.0);
}

#[test]
fn sample_generation_is_a_pure_function_of_its_seeds() {
    let make = |sim_seed: u64, init_seed: u64| {
        let mut aig = SeqAig::new("g");
        let a = aig.add_pi("a");
        let q = aig.add_ff("q", false);
        let g = aig.add_and(a, q);
        let n = aig.add_not(g);
        aig.connect_ff(q, n).unwrap();
        aig.set_output(g, "y");
        let w = Workload::uniform(1, 0.5);
        TrainSample::generate(
            &aig,
            &w,
            8,
            &SimOptions {
                cycles: 64,
                warmup: 8,
                seed: sim_seed,
            },
            init_seed,
        )
    };
    let a = make(5, 9);
    let b = make(5, 9);
    assert_eq!(a.init_h, b.init_h, "same seeds: init_h");
    assert_eq!(a.tr_target, b.tr_target, "same seeds: tr_target");
    assert_eq!(a.lg_target, b.lg_target, "same seeds: lg_target");

    let other_sim = make(6, 9);
    assert_ne!(
        a.tr_target, other_sim.tr_target,
        "different simulation seeds must change the targets"
    );
    let other_init = make(5, 10);
    assert_ne!(
        a.init_h, other_init.init_h,
        "different init seeds must change the initial states"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn train_is_bitwise_thread_count_invariant_for_random_configs(
        shuffle_seed in any::<u64>(),
        group in 1usize..5,
    ) {
        // The acceptance property: for arbitrary shuffle seeds and step
        // group sizes, (EpochStats, serialized Params, EvalMetrics) from
        // pools of 1, 2, 4 and 7 threads are the same bits.
        let samples = sample_suite(5, 8, shuffle_seed ^ 0xA5A5);
        let opts = TrainOptions {
            epochs: 2,
            lr: 5e-3,
            seed: shuffle_seed,
            samples_per_step: group,
            ..TrainOptions::default()
        };
        let reference = train_outcome(&Pool::new(1), &samples, &opts);
        for threads in [2usize, 4, 7] {
            let got = train_outcome(&Pool::new(threads), &samples, &opts);
            for (x, y) in reference.0.iter().zip(&got.0) {
                prop_assert_eq!(x.loss.to_bits(), y.loss.to_bits(),
                    "epoch {} loss differs on {} threads", x.epoch, threads);
            }
            prop_assert_eq!(&reference.1, &got.1, "Params bytes differ on {} threads", threads);
            prop_assert_eq!(reference.2.pe_tr.to_bits(), got.2.pe_tr.to_bits());
            prop_assert_eq!(reference.2.pe_lg.to_bits(), got.2.pe_lg.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn split_is_reproducible_and_seed_sensitive(seed in any::<u64>(), n in 6usize..12) {
        // Tag samples by their node counts + target bytes so membership
        // can be compared across two splits of independently generated
        // (but identical) sample vectors.
        let tag = |s: &TrainSample| -> Vec<u8> {
            let mut bytes = Vec::new();
            for m in [&s.init_h, &s.tr_target, &s.lg_target] {
                for v in m.data() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            bytes
        };
        let first = train_test_split(sample_suite(n, 8, 77), 0.3, seed);
        let second = train_test_split(sample_suite(n, 8, 77), 0.3, seed);
        let tags = |set: &[TrainSample]| -> Vec<Vec<u8>> { set.iter().map(tag).collect() };
        prop_assert_eq!(tags(&first.0), tags(&second.0), "train halves differ");
        prop_assert_eq!(tags(&first.1), tags(&second.1), "test halves differ");
        prop_assert_eq!(first.0.len() + first.1.len(), n);

        // A different seed must change the ordering (train-half tags):
        // with n ≥ 6 two seeds sharing a permutation is a < 1/720 event,
        // and the vendored proptest's case stream is deterministic, so
        // this cannot flake. Order-based rather than membership-based so
        // ties in membership still count.
        let reshuffled = train_test_split(sample_suite(n, 8, 77), 0.3, seed.wrapping_add(1));
        prop_assert_ne!(
            tags(&first.0), tags(&reshuffled.0),
            "different split seeds produced the same ordering"
        );
    }
}
