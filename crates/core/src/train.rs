//! Multi-task training (paper Section III-A) and the average-prediction-error
//! metric (Eq. 9).
//!
//! The loss is `L = L_TR + L_LG`, both L1 (Eq. 3), optimized with ADAM.
//! Samples are circuits with one simulated workload each; the same loop
//! performs pre-training and downstream fine-tuning (only the targets
//! change).
//!
//! # Data parallelism
//!
//! [`train`] schedules its work on the shared worker pool
//! ([`Pool::global`], sized by `DEEPSEQ_THREADS`): within each optimizer
//! step, the per-sample forward/backward tape passes are independent (the
//! parameters are frozen until the step), so they fan out across the pool
//! at sample granularity — each worker task owns a private reusable
//! [`Tape`] and produces one [`GradStore`] per sample. The per-sample
//! losses and gradients are then reduced **in ascending sample order**,
//! which makes every ADAM step, loss value and [`EpochStats`] row bitwise
//! identical at any thread count (the per-sample passes themselves are
//! bitwise thread-count-independent by the kernel-layer contract). With
//! [`TrainOptions::samples_per_step`]` = 1` (the default) the loop is
//! byte-for-byte the classic serial per-sample ADAM recipe; larger groups
//! average the group's gradients into one step and are what actually
//! parallelizes. [`evaluate`] fans its per-sample inference passes out the
//! same way and reduces the error sums in sample order.

use deepseq_netlist::SeqAig;
use deepseq_nn::trace;
use deepseq_nn::{Adam, GradStore, Matrix, Pool, Tape};
use deepseq_sim::{simulate, SimOptions, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::encoding::{initial_states, lg_targets, tr_targets};
use crate::graph::CircuitGraph;
use crate::model::DeepSeq;

/// One training sample: a preprocessed circuit, its workload-encoded initial
/// states and the simulated supervision targets.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// Preprocessed circuit.
    pub graph: CircuitGraph,
    /// Initial hidden states (`n×d`, PI rows = workload probabilities).
    pub init_h: Matrix,
    /// `n×2` transition-probability targets.
    pub tr_target: Matrix,
    /// `n×1` logic-probability targets.
    pub lg_target: Matrix,
}

impl TrainSample {
    /// Generates a sample by simulating `workload` on `aig` (the dataset
    /// pipeline of paper Fig. 1: circuit graph + simulation labels).
    pub fn generate(
        aig: &SeqAig,
        workload: &Workload,
        hidden_dim: usize,
        sim_opts: &SimOptions,
        init_seed: u64,
    ) -> Self {
        let result = simulate(aig, workload, sim_opts);
        TrainSample {
            graph: CircuitGraph::build(aig),
            init_h: initial_states(aig, workload, hidden_dim, init_seed),
            tr_target: tr_targets(&result.probs),
            lg_target: lg_targets(&result.probs),
        }
    }

    /// Builds a sample from precomputed pieces (fine-tuning with custom
    /// targets, e.g. reliability error probabilities in the `TR` slot).
    pub fn from_parts(
        graph: CircuitGraph,
        init_h: Matrix,
        tr_target: Matrix,
        lg_target: Matrix,
    ) -> Self {
        TrainSample {
            graph,
            init_h,
            tr_target,
            lg_target,
        }
    }
}

/// Options for [`train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Training epochs (paper: 50).
    pub epochs: usize,
    /// ADAM learning rate (paper: 1e-4; scaled-down runs benefit from more).
    pub lr: f32,
    /// Global-norm gradient clip (stabilizes recurrent backprop).
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Weight of the `TR` loss term.
    pub tr_weight: f32,
    /// Weight of the `LG` loss term.
    pub lg_weight: f32,
    /// Samples per optimizer step (clamped to at least 1). `1` — the
    /// default — reproduces the paper's per-sample ADAM steps exactly.
    /// Larger groups accumulate the *mean* gradient of the group's samples
    /// into a single step; because the samples within a group are
    /// independent, they are what the trainer fans out across the worker
    /// pool. Results are bitwise identical at any thread count for any
    /// value.
    pub samples_per_step: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 20,
            lr: 1e-3,
            clip_norm: 5.0,
            seed: 0,
            tr_weight: 1.0,
            lg_weight: 1.0,
            samples_per_step: 1,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean multi-task loss over samples.
    pub loss: f64,
}

/// Evaluation metrics: average prediction error per task (paper Eq. 9).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Average |error| on transition probabilities.
    pub pe_tr: f64,
    /// Average |error| on logic probabilities.
    pub pe_lg: f64,
}

/// One sample's contribution to an optimizer step: its multi-task loss and
/// the gradients of that loss.
struct SampleGrad {
    loss: f64,
    grads: GradStore,
}

/// Records one sample's forward + loss on `tape` (which it resets first)
/// and runs the backward pass.
fn sample_pass(
    model: &DeepSeq,
    sample: &TrainSample,
    opts: &TrainOptions,
    tape: &mut Tape,
) -> SampleGrad {
    tape.reset();
    let vars = model.forward(tape, &sample.graph, &sample.init_h);
    let l_tr = tape.l1_loss(vars.tr, &sample.tr_target);
    let l_lg = tape.l1_loss(vars.lg, &sample.lg_target);
    let l_tr = tape.affine(l_tr, opts.tr_weight, 0.0);
    let l_lg = tape.affine(l_lg, opts.lg_weight, 0.0);
    let loss = tape.add_scalars(vec![l_tr, l_lg]);
    SampleGrad {
        loss: tape.value(loss).get(0, 0) as f64,
        grads: tape.backward(loss),
    }
}

/// Trains (or fine-tunes) `model` on `samples` using the process-wide
/// worker pool ([`Pool::global`]), returning per-epoch stats. See
/// [`train_on`] for the scheduling and determinism contract.
///
/// # Example
/// See [`the crate-level documentation`](crate).
pub fn train(model: &mut DeepSeq, samples: &[TrainSample], opts: &TrainOptions) -> Vec<EpochStats> {
    train_on(Pool::global(), model, samples, opts)
}

/// [`train`] on an explicit worker pool.
///
/// Each epoch shuffles the sample order (seeded — thread-count
/// independent), splits it into groups of
/// [`TrainOptions::samples_per_step`] samples and, per group: fans the
/// per-sample forward/backward tape passes across `pool` at sample
/// granularity (contiguous chunks, one reusable private [`Tape`] per
/// task, one [`GradStore`] per sample), then reduces the losses and
/// gradients **in ascending group order** and applies one ADAM step on the
/// mean gradient. The fixed-order reduction is what keeps every step —
/// and therefore every [`EpochStats`] row and the final parameter bytes —
/// bitwise identical at any pool size, including 1 (where the group runs
/// inline, in order, exactly like the serial loop).
pub fn train_on(
    pool: &Pool,
    model: &mut DeepSeq,
    samples: &[TrainSample],
    opts: &TrainOptions,
) -> Vec<EpochStats> {
    let mut optimizer = Adam::new(opts.lr).with_clip_norm(opts.clip_norm);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut history = Vec::with_capacity(opts.epochs);
    let group_size = opts.samples_per_step.max(1);
    for epoch in 0..opts.epochs {
        let _epoch_span = trace::span_with(trace::SpanKind::TrainEpoch, epoch as u64);
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for group in order.chunks(group_size) {
            let _step_span = trace::span_with(trace::SpanKind::TrainStep, group.len() as u64);
            // Fan the group's samples across the pool; each task owns one
            // reusable tape (reset between samples) and the passes come
            // back in group order whatever the pool size.
            let model_ref: &DeepSeq = model;
            let passes = pool.ordered_map(group.len(), 1, Tape::new, |tape, j| {
                sample_pass(model_ref, &samples[group[j]], opts, tape)
            });
            // Ordered reduction: losses and gradients are summed in group
            // order regardless of which worker produced them. The first
            // sample's store is taken by value, so the common
            // `samples_per_step = 1` path stays as copy-free as the old
            // serial loop.
            let mut passes = passes.into_iter();
            let first = passes.next().expect("chunks() yields nonempty groups");
            total_loss += first.loss;
            let mut step_grads = first.grads;
            for pass in passes {
                total_loss += pass.loss;
                step_grads.merge(&pass.grads);
            }
            if group.len() > 1 {
                step_grads.scale(1.0 / group.len() as f32);
            }
            optimizer.step(model.params_mut(), &step_grads);
        }
        history.push(EpochStats {
            epoch,
            loss: total_loss / samples.len().max(1) as f64,
        });
    }
    history
}

/// Computes the average prediction error (Eq. 9) of `model` on `samples`
/// using the process-wide worker pool. See [`evaluate_on`].
pub fn evaluate(model: &DeepSeq, samples: &[TrainSample]) -> EvalMetrics {
    evaluate_on(Pool::global(), model, samples)
}

/// [`evaluate`] on an explicit worker pool: the per-sample inference
/// passes fan out across `pool` at sample granularity, each producing a
/// private `(error sum, count)` partial; the partials are reduced in
/// ascending sample order, so the metrics are bitwise identical at any
/// thread count.
pub fn evaluate_on(pool: &Pool, model: &DeepSeq, samples: &[TrainSample]) -> EvalMetrics {
    /// One sample's error sums and element counts, both tasks.
    #[derive(Clone, Copy)]
    struct Partial {
        tr_err: f64,
        tr_count: usize,
        lg_err: f64,
        lg_count: usize,
    }
    let partials = pool.ordered_map(
        samples.len(),
        1,
        || (),
        |(), i| {
            let sample = &samples[i];
            let preds = model.predict(&sample.graph, &sample.init_h);
            let mut p = Partial {
                tr_err: 0.0,
                tr_count: 0,
                lg_err: 0.0,
                lg_count: 0,
            };
            for (pred, t) in preds.tr.data().iter().zip(sample.tr_target.data()) {
                p.tr_err += (pred - t).abs() as f64;
                p.tr_count += 1;
            }
            for (pred, t) in preds.lg.data().iter().zip(sample.lg_target.data()) {
                p.lg_err += (pred - t).abs() as f64;
                p.lg_count += 1;
            }
            p
        },
    );
    let mut tr_err = 0.0f64;
    let mut tr_count = 0usize;
    let mut lg_err = 0.0f64;
    let mut lg_count = 0usize;
    for p in &partials {
        tr_err += p.tr_err;
        tr_count += p.tr_count;
        lg_err += p.lg_err;
        lg_count += p.lg_count;
    }
    EvalMetrics {
        pe_tr: tr_err / tr_count.max(1) as f64,
        pe_lg: lg_err / lg_count.max(1) as f64,
    }
}

/// Merges several training samples into one batched sample via
/// [`merge_graphs`](crate::graph::merge_graphs) (topological batching \[16\]).
/// A forward pass over the merged sample is mathematically identical to
/// independent passes over the parts; gradients become true mini-batch
/// gradients, and per-level tape ops grow by the batch size, which is what
/// makes this faster than per-circuit steps.
///
/// # Panics
/// Panics if `samples` is empty.
pub fn merge_samples(samples: &[&TrainSample]) -> TrainSample {
    assert!(
        !samples.is_empty(),
        "merge_samples needs at least one sample"
    );
    let graphs: Vec<&crate::graph::CircuitGraph> = samples.iter().map(|s| &s.graph).collect();
    let graph = crate::graph::merge_graphs(&graphs);
    let d = samples[0].init_h.cols();
    let total: usize = samples.iter().map(|s| s.graph.num_nodes).sum();
    let mut init_h = Matrix::zeros(total, d);
    let mut tr_target = Matrix::zeros(total, 2);
    let mut lg_target = Matrix::zeros(total, 1);
    let mut row = 0;
    for sample in samples {
        for r in 0..sample.graph.num_nodes {
            init_h.row_mut(row)[..].copy_from_slice(sample.init_h.row(r));
            tr_target.row_mut(row)[..].copy_from_slice(sample.tr_target.row(r));
            lg_target.row_mut(row)[..].copy_from_slice(sample.lg_target.row(r));
            row += 1;
        }
    }
    TrainSample {
        graph,
        init_h,
        tr_target,
        lg_target,
    }
}

/// Like [`train`] but with topological batching: samples are merged into
/// mini-batches of `batch_size` circuits once, then trained as usual.
/// Topological batching composes with data parallelism — each *merged*
/// sample is one unit of [`TrainOptions::samples_per_step`] scheduling.
pub fn train_batched(
    model: &mut DeepSeq,
    samples: &[TrainSample],
    opts: &TrainOptions,
    batch_size: usize,
) -> Vec<EpochStats> {
    train_batched_on(Pool::global(), model, samples, opts, batch_size)
}

/// [`train_batched`] on an explicit worker pool (see [`train_on`]).
pub fn train_batched_on(
    pool: &Pool,
    model: &mut DeepSeq,
    samples: &[TrainSample],
    opts: &TrainOptions,
    batch_size: usize,
) -> Vec<EpochStats> {
    let batch_size = batch_size.max(1);
    let batches: Vec<TrainSample> = samples
        .chunks(batch_size)
        .map(|chunk| {
            let refs: Vec<&TrainSample> = chunk.iter().collect();
            merge_samples(&refs)
        })
        .collect();
    train_on(pool, model, &batches, opts)
}

/// Splits samples into train/test by a deterministic shuffle (paper uses a
/// held-out set for Table II).
pub fn train_test_split(
    samples: Vec<TrainSample>,
    test_fraction: f64,
    seed: u64,
) -> (Vec<TrainSample>, Vec<TrainSample>) {
    let mut samples = samples;
    let mut rng = StdRng::seed_from_u64(seed);
    samples.shuffle(&mut rng);
    let test_len = ((samples.len() as f64) * test_fraction).round() as usize;
    let test = samples.split_off(samples.len().saturating_sub(test_len));
    (samples, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepSeqConfig;

    fn tiny_samples(n: usize, hidden: usize) -> Vec<TrainSample> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let mut aig = SeqAig::new(format!("c{i}"));
                let a = aig.add_pi("a");
                let b = aig.add_pi("b");
                let g = aig.add_and(a, b);
                let nn = aig.add_not(g);
                let q = aig.add_ff("q", false);
                let g2 = aig.add_and(q, nn);
                aig.connect_ff(q, g2).unwrap();
                aig.set_output(g2, "y");
                let w = Workload::random(2, &mut rng);
                TrainSample::generate(
                    &aig,
                    &w,
                    hidden,
                    &SimOptions {
                        cycles: 128,
                        warmup: 8,
                        seed: i as u64,
                    },
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn loss_decreases_during_training() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let history = train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 15,
                lr: 5e-3,
                ..TrainOptions::default()
            },
        );
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_improves_eval_metrics() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let before = evaluate(&model, &samples);
        train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 15,
                lr: 5e-3,
                ..TrainOptions::default()
            },
        );
        let after = evaluate(&model, &samples);
        assert!(
            after.pe_lg < before.pe_lg,
            "LG error did not improve: {} -> {}",
            before.pe_lg,
            after.pe_lg
        );
        assert!(
            after.pe_tr < before.pe_tr,
            "TR error did not improve: {} -> {}",
            before.pe_tr,
            after.pe_tr
        );
    }

    #[test]
    fn merged_forward_equals_individual_forwards() {
        // The batched graph must produce bit-identical predictions to
        // per-circuit passes — this pins down the offset arithmetic.
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 5,
            ..DeepSeqConfig::default()
        };
        let model = DeepSeq::new(config);
        let samples = tiny_samples(3, 8);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let merged = merge_samples(&refs);
        let merged_preds = model.predict(&merged.graph, &merged.init_h);
        let mut row = 0;
        for sample in &samples {
            let preds = model.predict(&sample.graph, &sample.init_h);
            for r in 0..sample.graph.num_nodes {
                for c in 0..2 {
                    assert_eq!(
                        merged_preds.tr.get(row, c),
                        preds.tr.get(r, c),
                        "TR mismatch at batch row {row}"
                    );
                }
                assert_eq!(merged_preds.lg.get(row, 0), preds.lg.get(r, 0));
                row += 1;
            }
        }
    }

    #[test]
    fn batched_training_reduces_loss() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let history = train_batched(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 10,
                lr: 5e-3,
                ..TrainOptions::default()
            },
            2,
        );
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
    }

    #[test]
    fn grouped_steps_train_and_match_across_pools() {
        // samples_per_step > 1 takes the data-parallel path; a 1-thread and
        // a 3-thread pool must produce identical history and loss descent.
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let samples = tiny_samples(5, 8);
        let opts = TrainOptions {
            epochs: 12,
            lr: 5e-3,
            samples_per_step: 2, // groups of 2 with an odd tail group
            ..TrainOptions::default()
        };
        let mut serial_model = DeepSeq::new(config);
        let serial = train_on(&Pool::new(1), &mut serial_model, &samples, &opts);
        let mut pooled_model = DeepSeq::new(config);
        let pooled = train_on(&Pool::new(3), &mut pooled_model, &samples, &opts);
        assert_eq!(serial, pooled, "EpochStats must match bitwise");
        assert_eq!(
            serial_model.params().save_binary(),
            pooled_model.params().save_binary(),
            "trained parameters must match bitwise"
        );
        assert!(serial.last().unwrap().loss < serial.first().unwrap().loss);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let samples = tiny_samples(10, 8);
        let (train_set, test_set) = train_test_split(samples, 0.3, 0);
        assert_eq!(train_set.len(), 7);
        assert_eq!(test_set.len(), 3);
    }

    #[test]
    fn eval_on_empty_is_zero() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 1,
            ..DeepSeqConfig::default()
        };
        let model = DeepSeq::new(config);
        let m = evaluate(&model, &[]);
        assert_eq!(m.pe_tr, 0.0);
        assert_eq!(m.pe_lg, 0.0);
    }

    #[test]
    fn zero_weight_freezes_task() {
        // With lg_weight = 0 the LG loss cannot influence training; ensure
        // the loop still runs and returns stats.
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 1,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(2, 8);
        let history = train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 2,
                lg_weight: 0.0,
                ..TrainOptions::default()
            },
        );
        assert_eq!(history.len(), 2);
    }
}
