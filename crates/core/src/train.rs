//! Multi-task training (paper Section III-A) and the average-prediction-error
//! metric (Eq. 9).
//!
//! The loss is `L = L_TR + L_LG`, both L1 (Eq. 3), optimized with ADAM.
//! Samples are circuits with one simulated workload each; the same loop
//! performs pre-training and downstream fine-tuning (only the targets
//! change).

use deepseq_netlist::SeqAig;
use deepseq_nn::{Adam, Matrix};
use deepseq_sim::{simulate, SimOptions, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::encoding::{initial_states, lg_targets, tr_targets};
use crate::graph::CircuitGraph;
use crate::model::DeepSeq;

/// One training sample: a preprocessed circuit, its workload-encoded initial
/// states and the simulated supervision targets.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// Preprocessed circuit.
    pub graph: CircuitGraph,
    /// Initial hidden states (`n×d`, PI rows = workload probabilities).
    pub init_h: Matrix,
    /// `n×2` transition-probability targets.
    pub tr_target: Matrix,
    /// `n×1` logic-probability targets.
    pub lg_target: Matrix,
}

impl TrainSample {
    /// Generates a sample by simulating `workload` on `aig` (the dataset
    /// pipeline of paper Fig. 1: circuit graph + simulation labels).
    pub fn generate(
        aig: &SeqAig,
        workload: &Workload,
        hidden_dim: usize,
        sim_opts: &SimOptions,
        init_seed: u64,
    ) -> Self {
        let result = simulate(aig, workload, sim_opts);
        TrainSample {
            graph: CircuitGraph::build(aig),
            init_h: initial_states(aig, workload, hidden_dim, init_seed),
            tr_target: tr_targets(&result.probs),
            lg_target: lg_targets(&result.probs),
        }
    }

    /// Builds a sample from precomputed pieces (fine-tuning with custom
    /// targets, e.g. reliability error probabilities in the `TR` slot).
    pub fn from_parts(
        graph: CircuitGraph,
        init_h: Matrix,
        tr_target: Matrix,
        lg_target: Matrix,
    ) -> Self {
        TrainSample {
            graph,
            init_h,
            tr_target,
            lg_target,
        }
    }
}

/// Options for [`train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Training epochs (paper: 50).
    pub epochs: usize,
    /// ADAM learning rate (paper: 1e-4; scaled-down runs benefit from more).
    pub lr: f32,
    /// Global-norm gradient clip (stabilizes recurrent backprop).
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Weight of the `TR` loss term.
    pub tr_weight: f32,
    /// Weight of the `LG` loss term.
    pub lg_weight: f32,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 20,
            lr: 1e-3,
            clip_norm: 5.0,
            seed: 0,
            tr_weight: 1.0,
            lg_weight: 1.0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean multi-task loss over samples.
    pub loss: f64,
}

/// Evaluation metrics: average prediction error per task (paper Eq. 9).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Average |error| on transition probabilities.
    pub pe_tr: f64,
    /// Average |error| on logic probabilities.
    pub pe_lg: f64,
}

/// Trains (or fine-tunes) `model` on `samples`, returning per-epoch stats.
///
/// # Example
/// See [`the crate-level documentation`](crate).
pub fn train(model: &mut DeepSeq, samples: &[TrainSample], opts: &TrainOptions) -> Vec<EpochStats> {
    let mut optimizer = Adam::new(opts.lr).with_clip_norm(opts.clip_norm);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut history = Vec::with_capacity(opts.epochs);
    for epoch in 0..opts.epochs {
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for &i in &order {
            let sample = &samples[i];
            let mut tape = deepseq_nn::Tape::new();
            let vars = model.forward(&mut tape, &sample.graph, &sample.init_h);
            let l_tr = tape.l1_loss(vars.tr, &sample.tr_target);
            let l_lg = tape.l1_loss(vars.lg, &sample.lg_target);
            let l_tr = tape.affine(l_tr, opts.tr_weight, 0.0);
            let l_lg = tape.affine(l_lg, opts.lg_weight, 0.0);
            let loss = tape.add_scalars(vec![l_tr, l_lg]);
            total_loss += tape.value(loss).get(0, 0) as f64;
            let grads = tape.backward(loss);
            optimizer.step(model.params_mut(), &grads);
        }
        history.push(EpochStats {
            epoch,
            loss: total_loss / samples.len().max(1) as f64,
        });
    }
    history
}

/// Computes the average prediction error (Eq. 9) of `model` on `samples`.
pub fn evaluate(model: &DeepSeq, samples: &[TrainSample]) -> EvalMetrics {
    let mut tr_err = 0.0f64;
    let mut tr_count = 0usize;
    let mut lg_err = 0.0f64;
    let mut lg_count = 0usize;
    for sample in samples {
        let preds = model.predict(&sample.graph, &sample.init_h);
        for (p, t) in preds.tr.data().iter().zip(sample.tr_target.data()) {
            tr_err += (p - t).abs() as f64;
            tr_count += 1;
        }
        for (p, t) in preds.lg.data().iter().zip(sample.lg_target.data()) {
            lg_err += (p - t).abs() as f64;
            lg_count += 1;
        }
    }
    EvalMetrics {
        pe_tr: tr_err / tr_count.max(1) as f64,
        pe_lg: lg_err / lg_count.max(1) as f64,
    }
}

/// Merges several training samples into one batched sample via
/// [`merge_graphs`](crate::graph::merge_graphs) (topological batching \[16\]).
/// A forward pass over the merged sample is mathematically identical to
/// independent passes over the parts; gradients become true mini-batch
/// gradients, and per-level tape ops grow by the batch size, which is what
/// makes this faster than per-circuit steps.
///
/// # Panics
/// Panics if `samples` is empty.
pub fn merge_samples(samples: &[&TrainSample]) -> TrainSample {
    assert!(
        !samples.is_empty(),
        "merge_samples needs at least one sample"
    );
    let graphs: Vec<&crate::graph::CircuitGraph> = samples.iter().map(|s| &s.graph).collect();
    let graph = crate::graph::merge_graphs(&graphs);
    let d = samples[0].init_h.cols();
    let total: usize = samples.iter().map(|s| s.graph.num_nodes).sum();
    let mut init_h = Matrix::zeros(total, d);
    let mut tr_target = Matrix::zeros(total, 2);
    let mut lg_target = Matrix::zeros(total, 1);
    let mut row = 0;
    for sample in samples {
        for r in 0..sample.graph.num_nodes {
            init_h.row_mut(row)[..].copy_from_slice(sample.init_h.row(r));
            tr_target.row_mut(row)[..].copy_from_slice(sample.tr_target.row(r));
            lg_target.row_mut(row)[..].copy_from_slice(sample.lg_target.row(r));
            row += 1;
        }
    }
    TrainSample {
        graph,
        init_h,
        tr_target,
        lg_target,
    }
}

/// Like [`train`] but with topological batching: samples are merged into
/// mini-batches of `batch_size` circuits once, then trained as usual.
pub fn train_batched(
    model: &mut DeepSeq,
    samples: &[TrainSample],
    opts: &TrainOptions,
    batch_size: usize,
) -> Vec<EpochStats> {
    let batch_size = batch_size.max(1);
    let batches: Vec<TrainSample> = samples
        .chunks(batch_size)
        .map(|chunk| {
            let refs: Vec<&TrainSample> = chunk.iter().collect();
            merge_samples(&refs)
        })
        .collect();
    train(model, &batches, opts)
}

/// Splits samples into train/test by a deterministic shuffle (paper uses a
/// held-out set for Table II).
pub fn train_test_split(
    samples: Vec<TrainSample>,
    test_fraction: f64,
    seed: u64,
) -> (Vec<TrainSample>, Vec<TrainSample>) {
    let mut samples = samples;
    let mut rng = StdRng::seed_from_u64(seed);
    samples.shuffle(&mut rng);
    let test_len = ((samples.len() as f64) * test_fraction).round() as usize;
    let test = samples.split_off(samples.len().saturating_sub(test_len));
    (samples, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepSeqConfig;

    fn tiny_samples(n: usize, hidden: usize) -> Vec<TrainSample> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let mut aig = SeqAig::new(format!("c{i}"));
                let a = aig.add_pi("a");
                let b = aig.add_pi("b");
                let g = aig.add_and(a, b);
                let nn = aig.add_not(g);
                let q = aig.add_ff("q", false);
                let g2 = aig.add_and(q, nn);
                aig.connect_ff(q, g2).unwrap();
                aig.set_output(g2, "y");
                let w = Workload::random(2, &mut rng);
                TrainSample::generate(
                    &aig,
                    &w,
                    hidden,
                    &SimOptions {
                        cycles: 128,
                        warmup: 8,
                        seed: i as u64,
                    },
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn loss_decreases_during_training() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let history = train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 15,
                lr: 5e-3,
                ..TrainOptions::default()
            },
        );
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_improves_eval_metrics() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let before = evaluate(&model, &samples);
        train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 15,
                lr: 5e-3,
                ..TrainOptions::default()
            },
        );
        let after = evaluate(&model, &samples);
        assert!(
            after.pe_lg < before.pe_lg,
            "LG error did not improve: {} -> {}",
            before.pe_lg,
            after.pe_lg
        );
        assert!(
            after.pe_tr < before.pe_tr,
            "TR error did not improve: {} -> {}",
            before.pe_tr,
            after.pe_tr
        );
    }

    #[test]
    fn merged_forward_equals_individual_forwards() {
        // The batched graph must produce bit-identical predictions to
        // per-circuit passes — this pins down the offset arithmetic.
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 5,
            ..DeepSeqConfig::default()
        };
        let model = DeepSeq::new(config);
        let samples = tiny_samples(3, 8);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let merged = merge_samples(&refs);
        let merged_preds = model.predict(&merged.graph, &merged.init_h);
        let mut row = 0;
        for sample in &samples {
            let preds = model.predict(&sample.graph, &sample.init_h);
            for r in 0..sample.graph.num_nodes {
                for c in 0..2 {
                    assert_eq!(
                        merged_preds.tr.get(row, c),
                        preds.tr.get(r, c),
                        "TR mismatch at batch row {row}"
                    );
                }
                assert_eq!(merged_preds.lg.get(row, 0), preds.lg.get(r, 0));
                row += 1;
            }
        }
    }

    #[test]
    fn batched_training_reduces_loss() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            seed: 0,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(4, 8);
        let history = train_batched(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 10,
                lr: 5e-3,
                ..TrainOptions::default()
            },
            2,
        );
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let samples = tiny_samples(10, 8);
        let (train_set, test_set) = train_test_split(samples, 0.3, 0);
        assert_eq!(train_set.len(), 7);
        assert_eq!(test_set.len(), 3);
    }

    #[test]
    fn eval_on_empty_is_zero() {
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 1,
            ..DeepSeqConfig::default()
        };
        let model = DeepSeq::new(config);
        let m = evaluate(&model, &[]);
        assert_eq!(m.pe_tr, 0.0);
        assert_eq!(m.pe_lg, 0.0);
    }

    #[test]
    fn zero_weight_freezes_task() {
        // With lg_weight = 0 the LG loss cannot influence training; ensure
        // the loop still runs and returns stats.
        let config = DeepSeqConfig {
            hidden_dim: 8,
            iterations: 1,
            ..DeepSeqConfig::default()
        };
        let mut model = DeepSeq::new(config);
        let samples = tiny_samples(2, 8);
        let history = train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 2,
                lg_weight: 0.0,
                ..TrainOptions::default()
            },
        );
        assert_eq!(history.len(), 2);
    }
}
