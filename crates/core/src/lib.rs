//! DeepSeq: deep sequential circuit learning (Khan et al., DATE 2024).
//!
//! This crate implements the paper's primary contribution: a DAG-GNN over
//! sequential and-inverter graphs with
//!
//! * a **customized propagation scheme** (Fig. 2) — flip-flop cycles are cut
//!   (FFs become pseudo-primary-inputs), a forward levelized pass reads FF
//!   states without writing them, a reverse pass propagates implication
//!   information backwards, and a final step copies each FF's D-input
//!   representation into the FF, mimicking the clock edge; repeated `T`
//!   times ([`PropagationScheme::Custom`]);
//! * a **dual attention** aggregation (Eq. 5–7) that learns logic behaviour
//!   (attention over predecessors) and transition behaviour (a gate between
//!   the aggregated logic message and the node's previous state) at once
//!   ([`Aggregator::DualAttention`]);
//! * a **multi-task objective** (Eq. 3): L1 regression of per-node `0→1` /
//!   `1→0` transition probabilities and logic-1 probabilities, produced by
//!   simulating one random workload per circuit;
//! * the **baselines** of Table II — DAG-ConvGNN and DAG-RecGNN with
//!   conv-sum or attention aggregation — expressed as configurations of the
//!   same model.
//!
//! # Quickstart
//!
//! ```
//! use deepseq_core::{DeepSeq, DeepSeqConfig, TrainOptions, TrainSample};
//! use deepseq_core::train::{evaluate, train};
//! use deepseq_netlist::SeqAig;
//! use deepseq_sim::{SimOptions, Workload};
//!
//! // A 2-gate sequential circuit and a random workload.
//! let mut aig = SeqAig::new("demo");
//! let a = aig.add_pi("a");
//! let q = aig.add_ff("q", false);
//! let g = aig.add_and(a, q);
//! let n = aig.add_not(g);
//! aig.connect_ff(q, n)?;
//! aig.set_output(g, "y");
//!
//! let config = DeepSeqConfig { hidden_dim: 8, iterations: 2, ..DeepSeqConfig::default() };
//! let mut model = DeepSeq::new(config);
//! let sample = TrainSample::generate(
//!     &aig,
//!     &Workload::uniform(1, 0.5),
//!     config.hidden_dim,
//!     &SimOptions::default(),
//!     0,
//! );
//! let history = train(&mut model, std::slice::from_ref(&sample), &TrainOptions {
//!     epochs: 3,
//!     ..TrainOptions::default()
//! });
//! assert_eq!(history.len(), 3);
//! let metrics = evaluate(&model, std::slice::from_ref(&sample));
//! assert!(metrics.pe_lg <= 1.0);
//! # Ok::<(), deepseq_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod config;
pub mod encoding;
pub mod graph;
pub mod model;
pub mod train;

pub use aggregate::AggregatorLayer;
pub use config::{Aggregator, DeepSeqConfig, PropagationScheme};
pub use graph::{merge_graphs, CircuitGraph, LevelBatch};
pub use model::{DeepSeq, ForwardVars, Predictions};
pub use train::{
    evaluate, evaluate_on, merge_samples, train, train_batched, train_batched_on, train_on,
    train_test_split, EpochStats, EvalMetrics, TrainOptions, TrainSample,
};
