//! Input encodings and supervision targets.
//!
//! Paper, Section III-B: the PI rows of the initial embedding matrix carry
//! the workload — "if the logic-1 probability of a particular PI is 0.1 and
//! `hv` has 64 dimensions, then all dimensions of `hv` contain the value
//! 0.1"; the remaining rows are initialized randomly and PIs stay *fixed*
//! during propagation. The supervision per node is a 2-d transition
//! probability vector (`0→1`, `1→0`) and a 1-d logic-1 probability.

use deepseq_netlist::SeqAig;
use deepseq_nn::Matrix;
use deepseq_sim::{NodeProbabilities, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the initial hidden-state matrix `h⁰` (`n×d`): PI rows filled with
/// their workload logic-1 probability, other rows uniform random in `[0,1)`.
pub fn initial_states(aig: &SeqAig, workload: &Workload, hidden_dim: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = aig.len();
    let mut h = Matrix::from_fn(n, hidden_dim, |_, _| rng.gen::<f32>());
    for (i, pi) in aig.pis().iter().enumerate() {
        let p = workload.p1(i) as f32;
        for c in 0..hidden_dim {
            h.set(pi.index(), c, p);
        }
    }
    h
}

/// Transition-probability targets (`n×2`: columns `p01`, `p10`).
pub fn tr_targets(probs: &NodeProbabilities) -> Matrix {
    Matrix::from_fn(probs.len(), 2, |r, c| {
        if c == 0 {
            probs.p01[r] as f32
        } else {
            probs.p10[r] as f32
        }
    })
}

/// Logic-probability targets (`n×1`).
pub fn lg_targets(probs: &NodeProbabilities) -> Matrix {
    Matrix::from_fn(probs.len(), 1, |r, _| probs.p1[r] as f32)
}

/// Generic 2-column targets from two per-node vectors (used by the
/// reliability fine-tuning head: `e01`, `e10`).
pub fn pair_targets(a: &[f64], b: &[f64]) -> Matrix {
    assert_eq!(a.len(), b.len(), "pair_targets length mismatch");
    Matrix::from_fn(
        a.len(),
        2,
        |r, c| if c == 0 { a[r] as f32 } else { b[r] as f32 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::PiStimulus;

    fn sample() -> SeqAig {
        let mut aig = SeqAig::new("s");
        let _a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let _n = aig.add_not(b);
        aig
    }

    #[test]
    fn pi_rows_encode_workload() {
        let aig = sample();
        let w = Workload::new(vec![
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let h = initial_states(&aig, &w, 8, 0);
        for c in 0..8 {
            assert!((h.get(0, c) - 0.1).abs() < 1e-6);
            assert!((h.get(1, c) - 0.9).abs() < 1e-6);
        }
    }

    #[test]
    fn non_pi_rows_random_in_unit_interval() {
        let aig = sample();
        let w = Workload::uniform(2, 0.5);
        let h = initial_states(&aig, &w, 16, 1);
        let row = h.row(2);
        assert!(row.iter().all(|&v| (0.0..1.0).contains(&v)));
        // Not all identical (random, not constant).
        assert!(row.iter().any(|&v| (v - row[0]).abs() > 1e-6));
    }

    #[test]
    fn initial_states_deterministic_per_seed() {
        let aig = sample();
        let w = Workload::uniform(2, 0.5);
        assert_eq!(
            initial_states(&aig, &w, 8, 7),
            initial_states(&aig, &w, 8, 7)
        );
        assert_ne!(
            initial_states(&aig, &w, 8, 7),
            initial_states(&aig, &w, 8, 8)
        );
    }

    #[test]
    fn target_shapes() {
        let probs = NodeProbabilities {
            p1: vec![0.5, 0.25],
            p01: vec![0.1, 0.2],
            p10: vec![0.1, 0.2],
        };
        let tr = tr_targets(&probs);
        let lg = lg_targets(&probs);
        assert_eq!(tr.shape(), (2, 2));
        assert_eq!(lg.shape(), (2, 1));
        assert_eq!(tr.get(1, 0), 0.2);
        assert_eq!(lg.get(0, 0), 0.5);
    }

    #[test]
    fn pair_targets_interleave() {
        let t = pair_targets(&[0.1, 0.2], &[0.3, 0.4]);
        assert_eq!(t.get(0, 1), 0.3);
        assert_eq!(t.get(1, 0), 0.2);
    }
}
