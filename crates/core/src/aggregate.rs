//! Aggregation functions: Conv-Sum, Attention and the paper's Dual
//! Attention (Section III-B, Eq. 5–7).
//!
//! All three consume the same flattened per-level message layout produced by
//! [`CircuitGraph`](crate::graph::CircuitGraph): `k` nodes are updated, `m`
//! message edges point at them, `segments[i] ∈ [0, k)` names the owner of
//! edge `i`.
//!
//! One deliberate deviation from the paper's notation: Eq. (6) writes the
//! transition gate as a *softmax* over the single pair `(h_v^{t-1},
//! m_LG^t)` — a softmax over one logit is identically 1, which would erase
//! the gate. We use a sigmoid over the same additive score, which preserves
//! the stated intent ("mimics the transition probability computation" by
//! gating the logic message against the previous state). This is recorded in
//! DESIGN.md.

use deepseq_nn::{AdditiveAttention, Linear, Params, Tape, VarId};
use rand::Rng;

use crate::config::Aggregator;

/// A parameterized aggregation layer (one per propagation direction).
#[derive(Debug, Clone)]
pub enum AggregatorLayer {
    /// Linear transform then segment sum (GCN-style conv. sum \[12\]).
    ConvSum {
        /// The shared message transform.
        transform: Linear,
    },
    /// Additive attention over predecessors (\[14\], \[16\]; paper Eq. 5).
    Attention {
        /// Scores `w1ᵀ h_v^{t-1} + w2ᵀ h_u^t` per edge.
        attention: AdditiveAttention,
    },
    /// Dual attention (paper Eq. 5–7): logic attention producing `m_LG`,
    /// a transition gate producing `m_TR`, concatenated.
    Dual {
        /// The logic attention of Eq. 5.
        attention: AdditiveAttention,
        /// The transition gate of Eq. 6.
        gate: AdditiveAttention,
    },
}

impl AggregatorLayer {
    /// Registers an aggregation layer of the given kind under `name`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        name: &str,
        kind: Aggregator,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        match kind {
            Aggregator::ConvSum => AggregatorLayer::ConvSum {
                transform: Linear::new(
                    params,
                    &format!("{name}.conv"),
                    hidden_dim,
                    hidden_dim,
                    rng,
                ),
            },
            Aggregator::Attention => AggregatorLayer::Attention {
                attention: AdditiveAttention::new(params, &format!("{name}.att"), hidden_dim, rng),
            },
            Aggregator::DualAttention => AggregatorLayer::Dual {
                attention: AdditiveAttention::new(params, &format!("{name}.att"), hidden_dim, rng),
                gate: AdditiveAttention::new(params, &format!("{name}.gate"), hidden_dim, rng),
            },
        }
    }

    /// Output feature width given the hidden dimension (`2d` for dual
    /// attention because of the `m_TR ‖ m_LG` concatenation, Eq. 7).
    pub fn output_dim(&self, hidden_dim: usize) -> usize {
        match self {
            AggregatorLayer::Dual { .. } => 2 * hidden_dim,
            _ => hidden_dim,
        }
    }

    /// Records the aggregation of one level batch.
    ///
    /// * `node_prev` — `k×d`, the previous states `h_v^{t-1}` of updated nodes;
    /// * `edge_prev` — `m×d`, `h_v^{t-1}` replicated per incoming edge;
    /// * `edge_msgs` — `m×d`, neighbor states `h_u^t`;
    /// * `segments` — owner of each edge;
    /// * `num_nodes` — `k`.
    ///
    /// Returns the aggregated message, `k×output_dim`.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &self,
        tape: &mut Tape,
        params: &Params,
        node_prev: VarId,
        edge_prev: VarId,
        edge_msgs: VarId,
        segments: &[usize],
        num_nodes: usize,
    ) -> VarId {
        match self {
            AggregatorLayer::ConvSum { transform } => {
                let transformed = transform.forward(tape, params, edge_msgs);
                tape.segment_sum(transformed, segments.to_vec(), num_nodes)
            }
            AggregatorLayer::Attention { attention } => attention_message(
                tape, params, attention, edge_prev, edge_msgs, segments, num_nodes,
            ),
            AggregatorLayer::Dual { attention, gate } => {
                // Eq. 5: logic message.
                let m_lg = attention_message(
                    tape, params, attention, edge_prev, edge_msgs, segments, num_nodes,
                );
                // Eq. 6: transition gate between previous state and m_LG
                // (sigmoid — see module docs).
                let score = gate.score(tape, params, node_prev, m_lg);
                let alpha = tape.sigmoid(score);
                let m_tr = tape.mul_col(m_lg, alpha);
                // Eq. 7: concatenation.
                tape.concat_cols(m_tr, m_lg)
            }
        }
    }
}

/// Shared Eq. 5 implementation: additive scores, segment softmax, weighted
/// segment sum.
fn attention_message(
    tape: &mut Tape,
    params: &Params,
    attention: &AdditiveAttention,
    edge_prev: VarId,
    edge_msgs: VarId,
    segments: &[usize],
    num_nodes: usize,
) -> VarId {
    let scores = attention.score(tape, params, edge_prev, edge_msgs);
    let alpha = tape.segment_softmax(scores, segments.to_vec());
    let weighted = tape.mul_col(edge_msgs, alpha);
    tape.segment_sum(weighted, segments.to_vec(), num_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(kind: Aggregator) -> (Params, AggregatorLayer) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let layer = AggregatorLayer::new(&mut params, "agg", kind, 4, &mut rng);
        (params, layer)
    }

    fn run(kind: Aggregator) -> (usize, usize) {
        let (params, layer) = setup(kind);
        let mut tape = Tape::new();
        // 2 nodes; node 0 has 2 predecessors, node 1 has 1.
        let node_prev = tape.input(Matrix::full(2, 4, 0.1));
        let edge_prev = tape.input(Matrix::full(3, 4, 0.1));
        let edge_msgs = tape.input(Matrix::full(3, 4, 0.5));
        let segs = vec![0, 0, 1];
        let m = layer.aggregate(
            &mut tape, &params, node_prev, edge_prev, edge_msgs, &segs, 2,
        );
        let v = tape.value(m);
        (v.rows(), v.cols())
    }

    #[test]
    fn conv_sum_shape() {
        assert_eq!(run(Aggregator::ConvSum), (2, 4));
    }

    #[test]
    fn attention_shape() {
        assert_eq!(run(Aggregator::Attention), (2, 4));
    }

    #[test]
    fn dual_attention_doubles_width() {
        assert_eq!(run(Aggregator::DualAttention), (2, 8));
        let (_, layer) = setup(Aggregator::DualAttention);
        assert_eq!(layer.output_dim(4), 8);
    }

    #[test]
    fn attention_is_convex_combination() {
        // With identical keys the attention output must equal the key value,
        // regardless of weights (softmax weights sum to 1).
        let (params, layer) = setup(Aggregator::Attention);
        let mut tape = Tape::new();
        let node_prev = tape.input(Matrix::full(1, 4, 0.3));
        let edge_prev = tape.input(Matrix::full(3, 4, 0.3));
        let edge_msgs = tape.input(Matrix::full(3, 4, 0.7));
        let m = layer.aggregate(
            &mut tape,
            &params,
            node_prev,
            edge_prev,
            edge_msgs,
            &[0, 0, 0],
            1,
        );
        for &v in tape.value(m).data() {
            assert!((v - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn dual_tr_part_is_gated_lg() {
        let (params, layer) = setup(Aggregator::DualAttention);
        let mut tape = Tape::new();
        let node_prev = tape.input(Matrix::full(1, 4, 0.2));
        let edge_prev = tape.input(Matrix::full(2, 4, 0.2));
        let edge_msgs = tape.input(Matrix::full(2, 4, 1.0));
        let m = layer.aggregate(
            &mut tape,
            &params,
            node_prev,
            edge_prev,
            edge_msgs,
            &[0, 0],
            1,
        );
        let v = tape.value(m);
        // Columns 4..8 hold m_LG = 1.0; columns 0..4 hold gate·m_LG with a
        // sigmoid gate in (0, 1).
        for c in 4..8 {
            assert!((v.get(0, c) - 1.0).abs() < 1e-5);
        }
        for c in 0..4 {
            let g = v.get(0, c);
            assert!(g > 0.0 && g < 1.0, "gate out of range: {g}");
        }
    }
}
