//! Preprocessed circuit graph — everything the model needs per circuit,
//! computed once and reused across training epochs.
//!
//! The customized propagation scheme (paper Fig. 2) needs, per logic level:
//! the nodes updated at that level and, per updated node, its predecessor
//! (forward pass) or successor (reverse pass) edges as flat `(neighbor,
//! segment)` lists ready for segment-softmax/-sum ops. FF cycle cutting is
//! inherited from [`Levels`].

use deepseq_netlist::aig::{SeqAig, NUM_NODE_TYPES};
use deepseq_netlist::level::Levels;
use deepseq_nn::Matrix;

/// One batch of node updates: all nodes of one logic level (forward) or one
/// reverse-order rank (reverse), with their incoming message edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelBatch {
    /// Node ids updated by this batch, in ascending id order.
    pub nodes: Vec<u32>,
    /// Flat message edges: `(neighbor node id, segment index into `nodes`)`.
    /// Sorted by segment.
    pub edges: Vec<(u32, u32)>,
}

impl LevelBatch {
    /// Number of nodes updated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the batch updates nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A circuit prepared for model consumption.
#[derive(Debug, Clone)]
pub struct CircuitGraph {
    /// Design name.
    pub name: String,
    /// Node count.
    pub num_nodes: usize,
    /// One-hot gate-type features, `n×4` (paper Section III-B).
    pub features: Matrix,
    /// Primary input node ids.
    pub pis: Vec<u32>,
    /// Flip-flop `(ff, d_input)` pairs for the copy-update step (Fig. 2
    /// step 4).
    pub ff_pairs: Vec<(u32, u32)>,
    /// Forward batches: levels 1..=depth (level 0 sources are never updated
    /// by the forward pass).
    pub forward: Vec<LevelBatch>,
    /// Reverse batches: decreasing level order; every non-PI node with at
    /// least one fanout is updated from its successors.
    pub reverse: Vec<LevelBatch>,
    /// Logic depth (number of forward batches).
    pub depth: usize,
}

impl CircuitGraph {
    /// Preprocesses an AIG. The graph must pass
    /// [`SeqAig::validate`](deepseq_netlist::SeqAig::validate).
    pub fn build(aig: &SeqAig) -> Self {
        let levels = Levels::build(aig);
        let n = aig.len();

        let mut features = Matrix::zeros(n, NUM_NODE_TYPES);
        for (id, node) in aig.iter() {
            features.set(id.index(), node.type_index(), 1.0);
        }

        let pis: Vec<u32> = aig.pis().iter().map(|p| p.0).collect();
        let ff_pairs: Vec<(u32, u32)> = aig
            .ffs()
            .iter()
            .map(|&ff| {
                let d = aig.ff_fanin(ff).expect("validated AIG has connected FFs");
                (ff.0, d.0)
            })
            .collect();

        // Forward: one batch per level ≥ 1; every node there is AND/NOT.
        let mut forward = Vec::new();
        for level in 1..levels.num_levels() {
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            for &id in levels.level(level) {
                let seg = nodes.len() as u32;
                nodes.push(id.0);
                for pred in aig.comb_fanins(id) {
                    edges.push((pred.0, seg));
                }
            }
            forward.push(LevelBatch { nodes, edges });
        }

        // Reverse: walk levels from deep to shallow; a node is updated from
        // its successors (fanouts, including FF D-input edges). PIs keep
        // their workload-encoded state and are never updated (paper
        // Section III-B); nodes without fanouts have nothing to aggregate.
        let fanouts = aig.fanout_lists();
        let mut reverse = Vec::new();
        for level in (0..levels.num_levels()).rev() {
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            for &id in levels.level(level) {
                if aig.node(id).is_pi() || fanouts[id.index()].is_empty() {
                    continue;
                }
                let seg = nodes.len() as u32;
                nodes.push(id.0);
                for &succ in &fanouts[id.index()] {
                    edges.push((succ.0, seg));
                }
            }
            if !nodes.is_empty() {
                reverse.push(LevelBatch { nodes, edges });
            }
        }

        CircuitGraph {
            name: aig.name().to_string(),
            num_nodes: n,
            features,
            pis,
            ff_pairs,
            depth: forward.len(),
            forward,
            reverse,
        }
    }

    /// Total forward message edges (diagnostics).
    pub fn num_forward_edges(&self) -> usize {
        self.forward.iter().map(|b| b.edges.len()).sum()
    }

    /// Total reverse message edges (diagnostics).
    pub fn num_reverse_edges(&self) -> usize {
        self.reverse.iter().map(|b| b.edges.len()).sum()
    }
}

/// Builds graphs for a slice of circuits.
pub fn build_graphs(circuits: &[SeqAig]) -> Vec<CircuitGraph> {
    circuits.iter().map(CircuitGraph::build).collect()
}

/// Merges several circuit graphs into one batched graph ("topological
/// batching", Thost & Chen \[16\], used by the paper to speed up training).
///
/// Node ids are offset per circuit; forward batches are merged by logic
/// level and reverse batches by reverse rank, which preserves the
/// dependency order within each circuit while letting one tape op process
/// all circuits of a batch at once. A model forward on the merged graph is
/// mathematically identical to independent forwards on the parts.
///
/// # Panics
/// Panics if `graphs` is empty.
pub fn merge_graphs(graphs: &[&CircuitGraph]) -> CircuitGraph {
    assert!(!graphs.is_empty(), "merge_graphs needs at least one graph");
    let total_nodes: usize = graphs.iter().map(|g| g.num_nodes).sum();
    let mut features = Matrix::zeros(total_nodes, NUM_NODE_TYPES);
    let mut pis = Vec::new();
    let mut ff_pairs = Vec::new();
    let max_fwd = graphs.iter().map(|g| g.forward.len()).max().unwrap_or(0);
    let max_rev = graphs.iter().map(|g| g.reverse.len()).max().unwrap_or(0);
    let mut forward: Vec<LevelBatch> = (0..max_fwd)
        .map(|_| LevelBatch {
            nodes: Vec::new(),
            edges: Vec::new(),
        })
        .collect();
    let mut reverse: Vec<LevelBatch> = (0..max_rev)
        .map(|_| LevelBatch {
            nodes: Vec::new(),
            edges: Vec::new(),
        })
        .collect();

    let mut offset = 0u32;
    for graph in graphs {
        for r in 0..graph.num_nodes {
            for c in 0..NUM_NODE_TYPES {
                features.set(offset as usize + r, c, graph.features.get(r, c));
            }
        }
        pis.extend(graph.pis.iter().map(|&p| p + offset));
        ff_pairs.extend(
            graph
                .ff_pairs
                .iter()
                .map(|&(ff, d)| (ff + offset, d + offset)),
        );
        for (level, batch) in graph.forward.iter().enumerate() {
            let merged = &mut forward[level];
            let seg_base = merged.nodes.len() as u32;
            merged.nodes.extend(batch.nodes.iter().map(|&v| v + offset));
            merged
                .edges
                .extend(batch.edges.iter().map(|&(u, s)| (u + offset, s + seg_base)));
        }
        for (rank, batch) in graph.reverse.iter().enumerate() {
            let merged = &mut reverse[rank];
            let seg_base = merged.nodes.len() as u32;
            merged.nodes.extend(batch.nodes.iter().map(|&v| v + offset));
            merged
                .edges
                .extend(batch.edges.iter().map(|&(u, s)| (u + offset, s + seg_base)));
        }
        offset += graph.num_nodes as u32;
    }

    CircuitGraph {
        name: format!("batch[{}]", graphs.len()),
        num_nodes: total_nodes,
        features,
        pis,
        ff_pairs,
        depth: forward.len(),
        forward,
        reverse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeqAig {
        let mut aig = SeqAig::new("s");
        let a = aig.add_pi("a"); // 0, level 0
        let q = aig.add_ff("q", false); // 1, level 0
        let n = aig.add_not(a); // 2, level 1
        let g = aig.add_and(n, q); // 3, level 2
        aig.connect_ff(q, g).unwrap();
        aig.set_output(g, "y");
        aig
    }

    #[test]
    fn features_are_one_hot() {
        let g = CircuitGraph::build(&sample());
        assert_eq!(g.features.shape(), (4, 4));
        for r in 0..4 {
            let row = g.features.row(r);
            assert_eq!(row.iter().sum::<f32>(), 1.0);
        }
        // Node 0 is a PI (type 0), node 3 an AND (type 1).
        assert_eq!(g.features.get(0, 0), 1.0);
        assert_eq!(g.features.get(3, 1), 1.0);
    }

    #[test]
    fn forward_batches_follow_levels() {
        let g = CircuitGraph::build(&sample());
        assert_eq!(g.depth, 2);
        assert_eq!(g.forward[0].nodes, vec![2]); // NOT at level 1
        assert_eq!(g.forward[0].edges, vec![(0, 0)]);
        assert_eq!(g.forward[1].nodes, vec![3]); // AND at level 2
        assert_eq!(g.forward[1].edges, vec![(2, 0), (1, 0)]);
    }

    #[test]
    fn reverse_batches_skip_pis_and_sinks() {
        let g = CircuitGraph::build(&sample());
        // Reverse order: AND (level 2, successor = FF via D edge),
        // NOT (level 1, successor = AND), FF (level 0, successor = AND).
        // The PI is skipped despite having the NOT as fanout.
        let all_nodes: Vec<u32> = g.reverse.iter().flat_map(|b| b.nodes.clone()).collect();
        assert!(all_nodes.contains(&3));
        assert!(all_nodes.contains(&2));
        assert!(all_nodes.contains(&1));
        assert!(!all_nodes.contains(&0));
    }

    #[test]
    fn ff_pairs_point_to_d_inputs() {
        let g = CircuitGraph::build(&sample());
        assert_eq!(g.ff_pairs, vec![(1, 3)]);
    }

    #[test]
    fn edge_counts() {
        let g = CircuitGraph::build(&sample());
        assert_eq!(g.num_forward_edges(), 3); // NOT(1) + AND(2)
                                              // Reverse edges: AND→FF, NOT→AND, FF→AND = one per updated node here.
        assert_eq!(g.num_reverse_edges(), 3);
    }

    #[test]
    fn segments_are_sorted_and_dense() {
        let g = CircuitGraph::build(&sample());
        for batch in g.forward.iter().chain(&g.reverse) {
            let mut last = 0;
            for &(_, seg) in &batch.edges {
                assert!(seg as usize <= batch.nodes.len());
                assert!(seg >= last);
                last = seg;
            }
        }
    }

    #[test]
    fn build_graphs_maps_all() {
        let gs = build_graphs(&[sample(), sample()]);
        assert_eq!(gs.len(), 2);
    }

    fn other_sample() -> SeqAig {
        let mut aig = SeqAig::new("t");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        aig.set_output(n, "y");
        aig
    }

    #[test]
    fn merge_offsets_nodes_and_edges() {
        let g1 = CircuitGraph::build(&sample()); // 4 nodes
        let g2 = CircuitGraph::build(&other_sample()); // 4 nodes
        let merged = merge_graphs(&[&g1, &g2]);
        assert_eq!(merged.num_nodes, 8);
        assert_eq!(merged.pis.len(), g1.pis.len() + g2.pis.len());
        assert_eq!(merged.ff_pairs.len(), 1);
        // Second circuit's PI ids are offset by 4.
        assert!(merged.pis.contains(&4));
        // Every edge references a valid node and segment.
        for batch in merged.forward.iter().chain(&merged.reverse) {
            for &(u, s) in &batch.edges {
                assert!((u as usize) < merged.num_nodes);
                assert!((s as usize) < batch.nodes.len());
            }
        }
    }

    #[test]
    fn merge_depth_is_max_depth() {
        let g1 = CircuitGraph::build(&sample()); // depth 2
        let g2 = CircuitGraph::build(&other_sample()); // depth 2
        let merged = merge_graphs(&[&g1, &g2]);
        assert_eq!(merged.depth, 2);
        // Features stacked in order.
        assert_eq!(merged.features.rows(), 8);
        assert_eq!(merged.features.row(0), g1.features.row(0));
        assert_eq!(merged.features.row(4), g2.features.row(0));
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn merge_empty_panics() {
        let _ = merge_graphs(&[]);
    }
}
