//! The DeepSeq model (paper Fig. 1): customized propagation over the
//! cycle-cut circuit graph, per-direction aggregation + GRU combine, and two
//! independent MLP regressor heads for transition (`TR`) and logic (`LG`)
//! probabilities.

use deepseq_netlist::aig::NUM_NODE_TYPES;
use deepseq_nn::{
    append_crc_trailer, verify_crc_trailer, BinReader, GruCell, Matrix, Mlp, Params, ParamsError,
    Tape, VarId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregate::AggregatorLayer;
use crate::config::{Aggregator, DeepSeqConfig, PropagationScheme};
use crate::graph::{CircuitGraph, LevelBatch};

/// Node-level predictions of one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Predictions {
    /// `n×2` transition probabilities (`0→1`, `1→0`).
    pub tr: Matrix,
    /// `n×1` logic-1 probabilities.
    pub lg: Matrix,
}

/// Variable handles returned by [`DeepSeq::forward`] for loss construction.
#[derive(Debug, Clone, Copy)]
pub struct ForwardVars {
    /// Final hidden states, `n×d`.
    pub hidden: VarId,
    /// `TR` head output after sigmoid, `n×2`.
    pub tr: VarId,
    /// `LG` head output after sigmoid, `n×1`.
    pub lg: VarId,
}

/// One propagation direction: aggregation + GRU combine.
#[derive(Debug, Clone)]
struct DirectionLayer {
    agg: AggregatorLayer,
    gru: GruCell,
}

impl DirectionLayer {
    fn new(
        params: &mut Params,
        name: &str,
        aggregator: Aggregator,
        hidden_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let agg = AggregatorLayer::new(params, &format!("{name}.agg"), aggregator, hidden_dim, rng);
        let input_dim = agg.output_dim(hidden_dim) + NUM_NODE_TYPES;
        DirectionLayer {
            agg,
            gru: GruCell::new(params, &format!("{name}.gru"), input_dim, hidden_dim, rng),
        }
    }
}

/// The DeepSeq model (and, by configuration, the DAG-ConvGNN / DAG-RecGNN
/// baselines of Table II).
///
/// # Example
///
/// ```
/// use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
/// use deepseq_core::encoding::initial_states;
/// use deepseq_netlist::SeqAig;
/// use deepseq_sim::Workload;
///
/// let mut aig = SeqAig::new("toggle");
/// let q = aig.add_ff("q", false);
/// let n = aig.add_not(q);
/// aig.connect_ff(q, n)?;
///
/// let model = DeepSeq::new(DeepSeqConfig::default());
/// let graph = CircuitGraph::build(&aig);
/// let h0 = initial_states(&aig, &Workload::uniform(0, 0.5), model.config().hidden_dim, 0);
/// let preds = model.predict(&graph, &h0);
/// assert_eq!(preds.tr.shape(), (2, 2));
/// assert_eq!(preds.lg.shape(), (2, 1));
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeepSeq {
    config: DeepSeqConfig,
    params: Params,
    forward_layer: DirectionLayer,
    reverse_layer: DirectionLayer,
    tr_head: Mlp,
    lg_head: Mlp,
}

impl DeepSeq {
    /// Builds a model with freshly initialized weights (seeded by
    /// `config.seed`).
    pub fn new(config: DeepSeqConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = Params::new();
        let d = config.hidden_dim;
        let forward_layer = DirectionLayer::new(&mut params, "fwd", config.aggregator, d, &mut rng);
        let reverse_layer = DirectionLayer::new(&mut params, "rev", config.aggregator, d, &mut rng);
        // "2 independent sets of 3-MLPs" (Section IV-A3), one per task.
        let tr_head = Mlp::new(&mut params, "tr_head", &[d, d, d, 2], &mut rng);
        let lg_head = Mlp::new(&mut params, "lg_head", &[d, d, d, 1], &mut rng);
        DeepSeq {
            config,
            params,
            forward_layer,
            reverse_layer,
            tr_head,
            lg_head,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DeepSeqConfig {
        &self.config
    }

    /// The parameter store (weights).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutable parameter store (for optimizer steps).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Records the full forward computation on `tape` and returns handles to
    /// hidden states and both head outputs.
    ///
    /// `init_h` is the `n×d` initial state matrix from
    /// [`initial_states`](crate::encoding::initial_states); PI rows stay
    /// fixed throughout (they are never listed in any update batch).
    pub fn forward(&self, tape: &mut Tape, graph: &CircuitGraph, init_h: &Matrix) -> ForwardVars {
        assert_eq!(
            init_h.shape(),
            (graph.num_nodes, self.config.hidden_dim),
            "init_h must be n×hidden_dim"
        );
        let h0 = tape.input(init_h.clone());
        let feats = tape.input(graph.features.clone());
        // `cur[v]` points at the tape row currently holding h_v.
        let mut cur: Vec<(VarId, usize)> = (0..graph.num_nodes).map(|i| (h0, i)).collect();

        for _t in 0..self.config.effective_iterations() {
            // Step 2 (Fig. 2): forward, levelized, FF states read not written.
            for batch in &graph.forward {
                self.run_batch(tape, &self.forward_layer, feats, batch, &mut cur);
            }
            // Step 3: reverse pass over successors.
            for batch in &graph.reverse {
                self.run_batch(tape, &self.reverse_layer, feats, batch, &mut cur);
            }
            // Step 4: FFs copy their D-input representation (clock edge).
            if self.config.scheme.updates_ffs() {
                for &(ff, d) in &graph.ff_pairs {
                    cur[ff as usize] = cur[d as usize];
                }
            }
        }

        let hidden = tape.gather_rows(cur);
        let tr_raw = self.tr_head.forward(tape, &self.params, hidden);
        let tr = tape.sigmoid(tr_raw);
        let lg_raw = self.lg_head.forward(tape, &self.params, hidden);
        let lg = tape.sigmoid(lg_raw);
        ForwardVars { hidden, tr, lg }
    }

    fn run_batch(
        &self,
        tape: &mut Tape,
        layer: &DirectionLayer,
        feats: VarId,
        batch: &LevelBatch,
        cur: &mut [(VarId, usize)],
    ) {
        if batch.nodes.is_empty() {
            return;
        }
        let node_prev = tape.gather_rows(batch.nodes.iter().map(|&v| cur[v as usize]).collect());
        let edge_prev = tape.gather_rows(
            batch
                .edges
                .iter()
                .map(|&(_, seg)| cur[batch.nodes[seg as usize] as usize])
                .collect(),
        );
        let edge_msgs =
            tape.gather_rows(batch.edges.iter().map(|&(u, _)| cur[u as usize]).collect());
        let segments: Vec<usize> = batch.edges.iter().map(|&(_, s)| s as usize).collect();
        let m = layer.agg.aggregate(
            tape,
            &self.params,
            node_prev,
            edge_prev,
            edge_msgs,
            &segments,
            batch.nodes.len(),
        );
        let x = tape.gather_rows(batch.nodes.iter().map(|&v| (feats, v as usize)).collect());
        let input = tape.concat_cols(m, x);
        let h_new = layer.gru.forward(tape, &self.params, input, node_prev);
        for (i, &v) in batch.nodes.iter().enumerate() {
            cur[v as usize] = (h_new, i);
        }
    }

    /// Runs inference and returns concrete prediction matrices.
    pub fn predict(&self, graph: &CircuitGraph, init_h: &Matrix) -> Predictions {
        let mut tape = Tape::new();
        let vars = self.forward(&mut tape, graph, init_h);
        Predictions {
            tr: tape.value(vars.tr).clone(),
            lg: tape.value(vars.lg).clone(),
        }
    }

    /// Graph-level readout (Eq. 2): mean-pools the final node states into a
    /// single `1×d` circuit embedding. The paper lists netlist-level
    /// embeddings as future work (Section VI); this readout makes the
    /// pre-trained node representations usable for circuit-level tasks such
    /// as netlist classification.
    pub fn embed_graph(&self, graph: &CircuitGraph, init_h: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let vars = self.forward(&mut tape, graph, init_h);
        let hidden = tape.value(vars.hidden);
        let (n, d) = hidden.shape();
        let mut pooled = Matrix::zeros(1, d);
        for r in 0..n {
            for c in 0..d {
                pooled.set(0, c, pooled.get(0, c) + hidden.get(r, c));
            }
        }
        pooled.scale_assign(1.0 / n.max(1) as f32);
        pooled
    }

    /// Serializes configuration + weights to a self-contained string.
    pub fn save_to_string(&self) -> String {
        let c = &self.config;
        let mut out = format!(
            "deepseq-model v1 hidden={} iters={} agg={} scheme={} seed={}\n",
            c.hidden_dim,
            c.iterations,
            aggregator_tag(c.aggregator),
            scheme_tag(c.scheme),
            c.seed
        );
        out.push_str(&self.params.save_to_string());
        out
    }

    /// Restores a model saved by [`DeepSeq::save_to_string`].
    ///
    /// # Errors
    /// Returns [`ParamsError`] on malformed input.
    pub fn from_checkpoint(text: &str) -> Result<Self, ParamsError> {
        let (header, rest) = text.split_once('\n').ok_or(ParamsError::BadHeader)?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("deepseq-model") || fields.next() != Some("v1") {
            return Err(ParamsError::BadHeader);
        }
        let mut config = DeepSeqConfig::default();
        for field in fields {
            let (key, value) = field.split_once('=').ok_or(ParamsError::BadHeader)?;
            match key {
                "hidden" => config.hidden_dim = parse_usize(value)?,
                "iters" => config.iterations = parse_usize(value)?,
                "seed" => config.seed = parse_usize(value)? as u64,
                "agg" => {
                    config.aggregator = match value {
                        "convsum" => Aggregator::ConvSum,
                        "attention" => Aggregator::Attention,
                        "dual" => Aggregator::DualAttention,
                        _ => return Err(ParamsError::BadHeader),
                    }
                }
                "scheme" => {
                    config.scheme = match value {
                        "dagconv" => PropagationScheme::DagConv,
                        "dagrec" => PropagationScheme::DagRec,
                        "custom" => PropagationScheme::Custom,
                        _ => return Err(ParamsError::BadHeader),
                    }
                }
                _ => return Err(ParamsError::BadHeader),
            }
        }
        validate_config_bounds(config.hidden_dim, config.iterations)?;
        let mut model = DeepSeq::new(config);
        model.params.load_from_string(rest)?;
        Ok(model)
    }

    /// Serializes configuration + weights to the binary checkpoint format:
    /// a `DSQM` model header (version, config fields, little-endian)
    /// followed by the [`Params::save_binary`] blob. Binary checkpoints are
    /// ~4× smaller than the text format and load without float parsing —
    /// this is the format the serving subsystem (`deepseq-serve`) ships.
    /// The byte-level layout is specified for third-party loaders in
    /// `docs/CHECKPOINTS.md` at the repository root.
    pub fn save_binary(&self) -> Vec<u8> {
        let c = &self.config;
        let params = self.params.save_binary();
        let mut out = Vec::with_capacity(MODEL_HEADER_LEN + params.len() + 4);
        out.extend_from_slice(&MODEL_MAGIC);
        out.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        out.extend_from_slice(&(c.hidden_dim as u32).to_le_bytes());
        out.extend_from_slice(&(c.iterations as u32).to_le_bytes());
        out.push(aggregator_byte(c.aggregator));
        out.push(scheme_byte(c.scheme));
        out.extend_from_slice(&c.seed.to_le_bytes());
        out.extend_from_slice(&params);
        // v2: CRC-32 trailer over the whole blob (the embedded DSQP blob
        // also carries its own — the outer one covers the model header).
        append_crc_trailer(&mut out);
        out
    }

    /// Restores a model saved by [`DeepSeq::save_binary`].
    ///
    /// # Errors
    /// Returns [`ParamsError::BadMagic`] for non-checkpoint bytes,
    /// [`ParamsError::UnsupportedVersion`] for future versions,
    /// [`ParamsError::ChecksumMismatch`] when the v2 CRC-32 trailer
    /// disagrees with the body, [`ParamsError::Truncated`] /
    /// [`ParamsError::Corrupt`] for damaged payloads. Legacy v1
    /// checkpoints (no trailer) still load, with a warning.
    pub fn from_binary_checkpoint(bytes: &[u8]) -> Result<Self, ParamsError> {
        // Peek the header version, then verify and strip the v2 CRC
        // trailer before trusting any of the body.
        let mut header = BinReader::new(bytes);
        if header.take::<4>()? != MODEL_MAGIC {
            return Err(ParamsError::BadMagic);
        }
        let body = match header.u16()? {
            // Version 2 (0x0002) never reads as 1 under any single bit
            // flip, so corruption cannot masquerade a v2 blob as v1.
            MODEL_VERSION_V1 => {
                deepseq_nn::report_warning(
                    "loading legacy v1 DSQM checkpoint (no CRC32 trailer): \
                     integrity unverified; re-save to upgrade",
                );
                bytes
            }
            MODEL_VERSION => verify_crc_trailer(bytes, MODEL_HEADER_LEN)?,
            found => return Err(ParamsError::UnsupportedVersion { found }),
        };
        let mut r = BinReader::new(body);
        let _magic = r.take::<4>()?; // validated above
        let _version = r.u16()?;
        let hidden_dim = r.u32()? as usize;
        let iterations = r.u32()? as usize;
        let aggregator = match r.take::<1>()?[0] {
            0 => Aggregator::ConvSum,
            1 => Aggregator::Attention,
            2 => Aggregator::DualAttention,
            other => {
                return Err(ParamsError::Corrupt {
                    msg: format!("unknown aggregator tag {other}"),
                })
            }
        };
        let scheme = match r.take::<1>()?[0] {
            0 => PropagationScheme::DagConv,
            1 => PropagationScheme::DagRec,
            2 => PropagationScheme::Custom,
            other => {
                return Err(ParamsError::Corrupt {
                    msg: format!("unknown scheme tag {other}"),
                })
            }
        };
        let seed = r.u64()?;
        validate_config_bounds(hidden_dim, iterations)?;
        let config = DeepSeqConfig {
            hidden_dim,
            iterations,
            aggregator,
            scheme,
            seed,
        };
        let mut model = DeepSeq::new(config);
        model.params.load_binary(r.rest())?;
        Ok(model)
    }
}

/// Magic bytes opening every binary *model* checkpoint (the parameter blob
/// inside carries its own `DSQP` magic).
pub const MODEL_MAGIC: [u8; 4] = *b"DSQM";

/// Version written by [`DeepSeq::save_binary`]: v2 appends a CRC32
/// integrity trailer over everything before it.
pub const MODEL_VERSION: u16 = 2;

/// The pre-trailer model format; still loadable, with a warning.
const MODEL_VERSION_V1: u16 = 1;

const MODEL_HEADER_LEN: usize = 4 + 2 + 4 + 4 + 1 + 1 + 8;

/// Largest hidden dimension a checkpoint header may claim — `DeepSeq::new`
/// allocates `d×d` weight matrices eagerly, so an untrusted header must be
/// bounded *before* model construction (the paper uses `d = 64`; 16384
/// leaves two orders of magnitude of headroom).
pub const MAX_CHECKPOINT_HIDDEN_DIM: usize = 1 << 14;

/// Largest iteration count a checkpoint header may claim.
pub const MAX_CHECKPOINT_ITERATIONS: usize = 1 << 20;

fn validate_config_bounds(hidden_dim: usize, iterations: usize) -> Result<(), ParamsError> {
    if hidden_dim == 0 || hidden_dim > MAX_CHECKPOINT_HIDDEN_DIM {
        return Err(ParamsError::Corrupt {
            msg: format!("hidden dim {hidden_dim} outside 1..={MAX_CHECKPOINT_HIDDEN_DIM}"),
        });
    }
    if iterations > MAX_CHECKPOINT_ITERATIONS {
        return Err(ParamsError::Corrupt {
            msg: format!("iteration count {iterations} exceeds {MAX_CHECKPOINT_ITERATIONS}"),
        });
    }
    Ok(())
}

fn aggregator_byte(a: Aggregator) -> u8 {
    match a {
        Aggregator::ConvSum => 0,
        Aggregator::Attention => 1,
        Aggregator::DualAttention => 2,
    }
}

fn scheme_byte(s: PropagationScheme) -> u8 {
    match s {
        PropagationScheme::DagConv => 0,
        PropagationScheme::DagRec => 1,
        PropagationScheme::Custom => 2,
    }
}

fn aggregator_tag(a: Aggregator) -> &'static str {
    match a {
        Aggregator::ConvSum => "convsum",
        Aggregator::Attention => "attention",
        Aggregator::DualAttention => "dual",
    }
}

fn scheme_tag(s: PropagationScheme) -> &'static str {
    match s {
        PropagationScheme::DagConv => "dagconv",
        PropagationScheme::DagRec => "dagrec",
        PropagationScheme::Custom => "custom",
    }
}

fn parse_usize(s: &str) -> Result<usize, ParamsError> {
    s.parse().map_err(|_| ParamsError::BadHeader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::SeqAig;
    use deepseq_sim::Workload;

    fn sample_aig() -> SeqAig {
        let mut aig = SeqAig::new("s");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", false);
        let g2 = aig.add_and(q, n);
        aig.connect_ff(q, g2).unwrap();
        aig.set_output(g2, "y");
        aig
    }

    fn small_config(aggregator: Aggregator, scheme: PropagationScheme) -> DeepSeqConfig {
        DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            aggregator,
            scheme,
            seed: 1,
        }
    }

    fn predict_with(config: DeepSeqConfig) -> Predictions {
        let aig = sample_aig();
        let model = DeepSeq::new(config);
        let graph = CircuitGraph::build(&aig);
        let w = Workload::uniform(2, 0.5);
        let h0 = crate::encoding::initial_states(&aig, &w, config.hidden_dim, 3);
        model.predict(&graph, &h0)
    }

    #[test]
    fn predictions_are_probabilities() {
        for agg in [
            Aggregator::ConvSum,
            Aggregator::Attention,
            Aggregator::DualAttention,
        ] {
            for scheme in [
                PropagationScheme::DagConv,
                PropagationScheme::DagRec,
                PropagationScheme::Custom,
            ] {
                let p = predict_with(small_config(agg, scheme));
                assert_eq!(p.tr.shape(), (6, 2));
                assert_eq!(p.lg.shape(), (6, 1));
                for &v in p.tr.data().iter().chain(p.lg.data()) {
                    assert!((0.0..=1.0).contains(&v), "{agg:?}/{scheme:?}: {v}");
                }
            }
        }
    }

    #[test]
    fn custom_scheme_differs_from_dag_rec() {
        // The FF copy step must change the outcome on a circuit with FFs.
        let p_custom = predict_with(small_config(
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ));
        let p_rec = predict_with(small_config(
            Aggregator::DualAttention,
            PropagationScheme::DagRec,
        ));
        assert_ne!(p_custom.lg, p_rec.lg);
    }

    #[test]
    fn recurrence_changes_predictions() {
        let p_conv = predict_with(small_config(
            Aggregator::Attention,
            PropagationScheme::DagConv,
        ));
        let p_rec = predict_with(small_config(
            Aggregator::Attention,
            PropagationScheme::DagRec,
        ));
        assert_ne!(p_conv.lg, p_rec.lg);
    }

    #[test]
    fn deterministic_given_seed_and_input() {
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        assert_eq!(predict_with(c), predict_with(c));
    }

    #[test]
    fn workload_affects_predictions() {
        let aig = sample_aig();
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let h_low = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.1), 8, 3);
        let h_high = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.9), 8, 3);
        let p_low = model.predict(&graph, &h_low);
        let p_high = model.predict(&graph, &h_high);
        assert_ne!(p_low.lg, p_high.lg);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let aig = sample_aig();
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let h0 = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.5), 8, 3);
        let before = model.predict(&graph, &h0);
        let text = model.save_to_string();
        let restored = DeepSeq::from_checkpoint(&text).unwrap();
        let after = restored.predict(&graph, &h0);
        assert_eq!(before, after);
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(DeepSeq::from_checkpoint("nonsense").is_err());
        assert!(DeepSeq::from_checkpoint("deepseq-model v2 hidden=8\nx").is_err());
    }

    #[test]
    fn binary_checkpoint_roundtrip_preserves_predictions() {
        let aig = sample_aig();
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let h0 = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.5), 8, 3);
        let before = model.predict(&graph, &h0);
        let bytes = model.save_binary();
        let restored = DeepSeq::from_binary_checkpoint(&bytes).unwrap();
        assert_eq!(restored.config(), model.config());
        assert_eq!(before, restored.predict(&graph, &h0));
        // Binary and text restores agree exactly.
        let from_text = DeepSeq::from_checkpoint(&model.save_to_string()).unwrap();
        assert_eq!(before, from_text.predict(&graph, &h0));
    }

    #[test]
    fn checkpoints_reject_hostile_config_headers_without_allocating() {
        // A header claiming an enormous hidden dim must yield a typed error
        // before `DeepSeq::new` tries to allocate d×d weight matrices.
        let text = "deepseq-model v1 hidden=4294967295\ndeepseq-params v1\n";
        assert!(DeepSeq::from_checkpoint(text).is_err());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MODEL_MAGIC);
        bytes.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // hidden_dim
        bytes.extend_from_slice(&1u32.to_le_bytes()); // iterations
        bytes.push(2); // dual
        bytes.push(2); // custom
        bytes.extend_from_slice(&0u64.to_le_bytes()); // seed
        append_crc_trailer(&mut bytes); // valid trailer: reach the bounds check
        assert!(DeepSeq::from_binary_checkpoint(&bytes).is_err());
        // Zero hidden dim is nonsense too.
        let zero = "deepseq-model v1 hidden=0\ndeepseq-params v1\n";
        assert!(DeepSeq::from_checkpoint(zero).is_err());
    }

    #[test]
    fn binary_checkpoint_rejects_garbage() {
        assert!(DeepSeq::from_binary_checkpoint(b"junk").is_err());
        let model = DeepSeq::new(small_config(
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ));
        let bytes = model.save_binary();
        // Every truncation is an error, never a panic.
        for cut in [
            0,
            3,
            MODEL_MAGIC.len() + 1,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(DeepSeq::from_binary_checkpoint(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn binary_checkpoint_rejects_single_bit_flips() {
        // One-bit corruption anywhere must yield a typed error, never a
        // silently-wrong model. One bit position per byte keeps the sweep
        // fast while still covering every byte of header, params and
        // trailer; the exhaustive all-bits sweep lives in the nn crate.
        let model = DeepSeq::new(small_config(
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ));
        let bytes = model.save_binary();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            assert!(
                DeepSeq::from_binary_checkpoint(&corrupt).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn legacy_v1_model_checkpoint_loads_with_warning() {
        let model = DeepSeq::new(small_config(
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ));
        // Reconstruct the v1-era layout: no trailers, version fields 1,
        // both for the DSQM header and the embedded DSQP blob.
        let mut v1 = model.save_binary();
        v1.truncate(v1.len() - 4); // outer DSQM trailer
        v1.truncate(v1.len() - 4); // inner DSQP trailer
        v1[4] = 1; // DSQM version
        v1[MODEL_HEADER_LEN + 4] = 1; // DSQP version
        let before = deepseq_nn::warning_count();
        let restored = DeepSeq::from_binary_checkpoint(&v1).expect("legacy v1 blob loads");
        assert!(deepseq_nn::warning_count() > before, "no legacy warning");
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.params.save_binary(), model.params.save_binary());
    }

    #[test]
    fn pi_rows_unaffected_by_propagation() {
        // PI hidden states stay fixed, so PI predictions depend only on h0:
        // two circuits differing away from the PI keep identical PI rows.
        let aig = sample_aig();
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let w = Workload::uniform(2, 0.5);
        let h0 = crate::encoding::initial_states(&aig, &w, 8, 3);
        let mut tape = Tape::new();
        let vars = model.forward(&mut tape, &graph, &h0);
        let hidden = tape.value(vars.hidden);
        for (i, pi) in graph.pis.iter().enumerate() {
            let _ = i;
            for c in 0..8 {
                assert_eq!(hidden.get(*pi as usize, c), h0.get(*pi as usize, c));
            }
        }
    }

    #[test]
    fn graph_embedding_is_pooled_and_input_sensitive() {
        let aig = sample_aig();
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let h_low = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.1), 8, 3);
        let h_high = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.9), 8, 3);
        let e_low = model.embed_graph(&graph, &h_low);
        let e_high = model.embed_graph(&graph, &h_high);
        assert_eq!(e_low.shape(), (1, 8));
        assert_ne!(e_low, e_high, "embedding must reflect the workload");
        assert!(e_low.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pure_combinational_circuit_works() {
        let mut aig = SeqAig::new("comb");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        aig.set_output(g, "y");
        let c = small_config(Aggregator::DualAttention, PropagationScheme::Custom);
        let model = DeepSeq::new(c);
        let graph = CircuitGraph::build(&aig);
        let h0 = crate::encoding::initial_states(&aig, &Workload::uniform(2, 0.5), 8, 0);
        let p = model.predict(&graph, &h0);
        assert_eq!(p.lg.rows(), 3);
    }
}
