//! Model configuration.

use std::fmt;

/// Aggregation function used to combine predecessor messages (paper
/// Section III-B and Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggregator {
    /// Convolutional sum (Kipf & Welling style): linear transform then sum.
    ConvSum,
    /// Additive attention over predecessors (Veličković / Thost & Chen).
    Attention,
    /// The paper's dual attention (Eq. 5–7): logic attention over
    /// predecessors plus a transition gate against the previous state,
    /// concatenated.
    #[default]
    DualAttention,
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregator::ConvSum => write!(f, "Conv. Sum"),
            Aggregator::Attention => write!(f, "Attention"),
            Aggregator::DualAttention => write!(f, "Dual Attention"),
        }
    }
}

/// Information propagation scheme (paper Fig. 2 and Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationScheme {
    /// DAG-ConvGNN baseline: a single forward + reverse pass.
    DagConv,
    /// DAG-RecGNN baseline: `T` recursive forward + reverse passes, without
    /// the flip-flop update step.
    DagRec,
    /// The paper's customized scheme: `T` × (forward pass, reverse pass,
    /// flip-flop copy-update), mimicking clocked operation.
    #[default]
    Custom,
}

impl PropagationScheme {
    /// True if the scheme repeats propagation `T` times.
    pub fn is_recurrent(self) -> bool {
        !matches!(self, PropagationScheme::DagConv)
    }

    /// True if flip-flops copy their D-input representation each iteration
    /// (paper Fig. 2, step 4).
    pub fn updates_ffs(self) -> bool {
        matches!(self, PropagationScheme::Custom)
    }
}

impl fmt::Display for PropagationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagationScheme::DagConv => write!(f, "DAG-ConvGNN"),
            PropagationScheme::DagRec => write!(f, "DAG-RecGNN"),
            PropagationScheme::Custom => write!(f, "Customized"),
        }
    }
}

/// Hyper-parameters of a [`DeepSeq`](crate::model::DeepSeq) model.
///
/// The paper's full-scale setting is `hidden_dim = 64`, `iterations = 10`
/// (Section IV-A3); [`DeepSeqConfig::default`] uses a CPU-budget-friendly
/// scale that preserves all behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeepSeqConfig {
    /// Hidden state dimension (paper: 64).
    pub hidden_dim: usize,
    /// Number of propagation iterations `T` (paper: 10). Ignored by
    /// [`PropagationScheme::DagConv`].
    pub iterations: usize,
    /// Aggregation function.
    pub aggregator: Aggregator,
    /// Propagation scheme.
    pub scheme: PropagationScheme,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for DeepSeqConfig {
    fn default() -> Self {
        DeepSeqConfig {
            hidden_dim: 32,
            iterations: 4,
            aggregator: Aggregator::DualAttention,
            scheme: PropagationScheme::Custom,
            seed: 0,
        }
    }
}

impl DeepSeqConfig {
    /// The paper's full-scale configuration (`d = 64`, `T = 10`).
    pub fn paper_scale() -> Self {
        DeepSeqConfig {
            hidden_dim: 64,
            iterations: 10,
            ..DeepSeqConfig::default()
        }
    }

    /// Configuration of the DAG-ConvGNN baseline with the given aggregator.
    pub fn dag_conv(aggregator: Aggregator) -> Self {
        DeepSeqConfig {
            aggregator,
            scheme: PropagationScheme::DagConv,
            ..DeepSeqConfig::default()
        }
    }

    /// Configuration of the DAG-RecGNN baseline with the given aggregator.
    pub fn dag_rec(aggregator: Aggregator) -> Self {
        DeepSeqConfig {
            aggregator,
            scheme: PropagationScheme::DagRec,
            ..DeepSeqConfig::default()
        }
    }

    /// Effective number of iterations (1 for single-pass schemes).
    pub fn effective_iterations(&self) -> usize {
        if self.scheme.is_recurrent() {
            self.iterations.max(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_choices() {
        let c = DeepSeqConfig::default();
        assert_eq!(c.aggregator, Aggregator::DualAttention);
        assert_eq!(c.scheme, PropagationScheme::Custom);
        let p = DeepSeqConfig::paper_scale();
        assert_eq!(p.hidden_dim, 64);
        assert_eq!(p.iterations, 10);
    }

    #[test]
    fn scheme_flags() {
        assert!(!PropagationScheme::DagConv.is_recurrent());
        assert!(PropagationScheme::DagRec.is_recurrent());
        assert!(PropagationScheme::Custom.is_recurrent());
        assert!(PropagationScheme::Custom.updates_ffs());
        assert!(!PropagationScheme::DagRec.updates_ffs());
    }

    #[test]
    fn effective_iterations() {
        let mut c = DeepSeqConfig {
            iterations: 7,
            ..DeepSeqConfig::default()
        };
        assert_eq!(c.effective_iterations(), 7);
        c.scheme = PropagationScheme::DagConv;
        assert_eq!(c.effective_iterations(), 1);
    }

    #[test]
    fn displays() {
        assert_eq!(Aggregator::ConvSum.to_string(), "Conv. Sum");
        assert_eq!(PropagationScheme::DagRec.to_string(), "DAG-RecGNN");
    }
}
