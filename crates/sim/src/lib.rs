//! Bit-parallel cycle-accurate simulation for the DeepSeq reproduction.
//!
//! This crate produces every piece of "ground truth" the paper consumes:
//!
//! * [`workload`] — per-PI stimulus models (logic-1 probability and toggle
//!   density, sampled as 2-state Markov chains). The paper randomly draws
//!   logic-1 probabilities per PI and simulates a 10 000-cycle pattern
//!   (Section III-B).
//! * [`engine`] — a 64-lane bit-parallel sequential simulator over
//!   [`SeqAig`](deepseq_netlist::SeqAig) and generic
//!   [`Netlist`](deepseq_netlist::Netlist)s. Each bit lane is an independent
//!   stimulus stream, so a `cycles`-cycle run collects `64 × cycles` samples.
//! * [`probability`] — logic-1 probability and `0→1` / `1→0` transition
//!   probabilities per node: the two supervision sets of the multi-task
//!   objective (Section III-A).
//! * [`fault`] — Monte-Carlo transient-fault injection producing the per-node
//!   error probabilities and circuit reliability used by the downstream
//!   reliability task (Section V-B).
//!
//! # Example
//!
//! ```
//! use deepseq_netlist::SeqAig;
//! use deepseq_sim::{simulate, SimOptions, Workload};
//!
//! let mut aig = SeqAig::new("toggle");
//! let q = aig.add_ff("q", false);
//! let n = aig.add_not(q);
//! aig.connect_ff(q, n)?;
//! aig.set_output(q, "y");
//!
//! let workload = Workload::uniform(aig.num_pis(), 0.5);
//! let result = simulate(&aig, &workload, &SimOptions::default());
//! // A free-running toggle flip-flop is 1 half the time and transitions
//! // every cycle.
//! assert!((result.probs.p1[q.index()] - 0.5).abs() < 0.02);
//! assert!((result.probs.p01[q.index()] - 0.5).abs() < 0.02);
//! # Ok::<(), deepseq_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod probability;
pub mod workload;

pub use engine::{simulate, simulate_netlist, SimOptions, SimResult};
pub use fault::{inject_faults, FaultOptions, FaultResult};
pub use probability::NodeProbabilities;
pub use workload::{PiStimulus, Workload};
