//! Per-node probability statistics — the supervision signals of the paper's
//! multi-task objective (Section III-A).

/// Per-node logic and transition probabilities collected from simulation.
///
/// * `p1[v]` — probability of node `v` being logic 1 (`LG` supervision);
/// * `p01[v]` / `p10[v]` — probabilities of a `0→1` / `1→0` transition
///   between consecutive cycles (`TR` supervision). The paper deliberately
///   ignores `0→0` and `1→1` because they carry no transition information.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeProbabilities {
    /// Logic-1 probability per node.
    pub p1: Vec<f64>,
    /// `0→1` transition probability per node.
    pub p01: Vec<f64>,
    /// `1→0` transition probability per node.
    pub p10: Vec<f64>,
}

impl NodeProbabilities {
    /// An all-zero table for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        NodeProbabilities {
            p1: vec![0.0; n],
            p01: vec![0.0; n],
            p10: vec![0.0; n],
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.p1.len()
    }

    /// True if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.p1.is_empty()
    }

    /// Toggle rate (total switching activity) of a node: `p01 + p10`.
    pub fn toggle_rate(&self, v: usize) -> f64 {
        self.p01[v] + self.p10[v]
    }

    /// Average toggle rate over all nodes — the `y_avg^TR` of the paper's
    /// dynamic-power formula `P = ½·C·V²·y_avg^TR`.
    pub fn average_toggle_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.len()).map(|v| self.toggle_rate(v)).sum();
        total / self.len() as f64
    }

    /// Checks the probabilistic consistency conditions that any sample-based
    /// table must satisfy (up to `tol` sampling error):
    /// values in `[0,1]`, `p01 ≤ min(p0, p1)`, `p10 ≤ min(p0, p1)` and
    /// `|p01 - p10| ≤ tol` (stationarity: rises and falls balance).
    pub fn check_consistency(&self, tol: f64) -> Result<(), String> {
        for v in 0..self.len() {
            let (p1, p01, p10) = (self.p1[v], self.p01[v], self.p10[v]);
            let p0 = 1.0 - p1;
            for (name, value) in [("p1", p1), ("p01", p01), ("p10", p10)] {
                if !(0.0..=1.0).contains(&value) {
                    return Err(format!("node {v}: {name}={value} out of [0,1]"));
                }
            }
            if p01 > p0.min(p1) + tol {
                return Err(format!("node {v}: p01={p01} exceeds min(p0,p1)+tol"));
            }
            if p10 > p0.min(p1) + tol {
                return Err(format!("node {v}: p10={p10} exceeds min(p0,p1)+tol"));
            }
            if (p01 - p10).abs() > tol {
                return Err(format!(
                    "node {v}: |p01-p10|={} exceeds tol (stationarity)",
                    (p01 - p10).abs()
                ));
            }
        }
        Ok(())
    }
}

/// Accumulates bit-parallel sample counts and converts them to probabilities.
#[derive(Debug, Clone, Default)]
pub struct ProbabilityAccumulator {
    ones: Vec<u64>,
    rises: Vec<u64>,
    falls: Vec<u64>,
    value_samples: u64,
    transition_samples: u64,
}

impl ProbabilityAccumulator {
    /// An accumulator for `n` nodes.
    pub fn new(n: usize) -> Self {
        ProbabilityAccumulator {
            ones: vec![0; n],
            rises: vec![0; n],
            falls: vec![0; n],
            value_samples: 0,
            transition_samples: 0,
        }
    }

    /// Records one cycle's 64-lane values (and transitions vs. `prev`, when
    /// `prev` is `Some`).
    pub fn record(&mut self, values: &[u64], prev: Option<&[u64]>) {
        debug_assert_eq!(values.len(), self.ones.len());
        for (v, &word) in values.iter().enumerate() {
            self.ones[v] += u64::from(word.count_ones());
        }
        self.value_samples += 64;
        if let Some(prev) = prev {
            for (v, (&cur, &old)) in values.iter().zip(prev).enumerate() {
                self.rises[v] += u64::from((cur & !old).count_ones());
                self.falls[v] += u64::from((!cur & old).count_ones());
            }
            self.transition_samples += 64;
        }
    }

    /// Converts counts to probabilities.
    pub fn finish(&self) -> NodeProbabilities {
        let vs = self.value_samples.max(1) as f64;
        let ts = self.transition_samples.max(1) as f64;
        NodeProbabilities {
            p1: self.ones.iter().map(|&c| c as f64 / vs).collect(),
            p01: self.rises.iter().map(|&c| c as f64 / ts).collect(),
            p10: self.falls.iter().map(|&c| c as f64 / ts).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_counts_ones_and_transitions() {
        let mut acc = ProbabilityAccumulator::new(1);
        acc.record(&[u64::MAX], None);
        acc.record(&[0], Some(&[u64::MAX]));
        let probs = acc.finish();
        assert!((probs.p1[0] - 0.5).abs() < 1e-12); // 64 ones of 128 samples
        assert!((probs.p10[0] - 1.0).abs() < 1e-12); // all lanes fell
        assert_eq!(probs.p01[0], 0.0);
    }

    #[test]
    fn toggle_rate_sums_transitions() {
        let probs = NodeProbabilities {
            p1: vec![0.5],
            p01: vec![0.2],
            p10: vec![0.25],
        };
        assert!((probs.toggle_rate(0) - 0.45).abs() < 1e-12);
        assert!((probs.average_toggle_rate() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn consistency_accepts_valid_tables() {
        let probs = NodeProbabilities {
            p1: vec![0.3, 0.9],
            p01: vec![0.2, 0.05],
            p10: vec![0.21, 0.05],
        };
        assert!(probs.check_consistency(0.05).is_ok());
    }

    #[test]
    fn consistency_rejects_impossible_transition() {
        let probs = NodeProbabilities {
            p1: vec![0.1],
            p01: vec![0.5], // cannot rise more often than it is low*high
            p10: vec![0.5],
        };
        assert!(probs.check_consistency(0.01).is_err());
    }

    #[test]
    fn consistency_rejects_out_of_range() {
        let probs = NodeProbabilities {
            p1: vec![1.5],
            p01: vec![0.0],
            p10: vec![0.0],
        };
        assert!(probs.check_consistency(0.01).is_err());
    }

    #[test]
    fn zeros_has_right_shape() {
        let probs = NodeProbabilities::zeros(5);
        assert_eq!(probs.len(), 5);
        assert!(!probs.is_empty());
        assert_eq!(probs.average_toggle_rate(), 0.0);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(NodeProbabilities::default().average_toggle_rate(), 0.0);
    }
}
