//! Workload models: the stimulus applied at primary inputs.
//!
//! "The workload for a sequential netlist is defined in terms of PIs'
//! behavior of the circuit" (paper, Section III-B). Each PI is modelled as a
//! stationary 2-state Markov chain parameterized by its logic-1 probability
//! `p1` and its toggle density `d` (probability that the value changes
//! between consecutive cycles). Independent-per-cycle sampling is the special
//! case `d = 2·p0·p1`.

use rand::Rng;

/// Stimulus parameters of one primary input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiStimulus {
    /// Stationary probability of the input being logic 1 (in `[0, 1]`).
    pub p1: f64,
    /// Toggle density: stationary probability of a value change between two
    /// consecutive cycles. Clamped into the feasible range
    /// `[0, 2·min(p0, p1)]` when patterns are generated.
    pub density: f64,
}

impl PiStimulus {
    /// Temporally independent stimulus: `density = 2·p0·p1`.
    pub fn independent(p1: f64) -> Self {
        PiStimulus {
            p1,
            density: 2.0 * p1 * (1.0 - p1),
        }
    }

    /// Markov-chain transition probabilities `(P(0→1), P(1→0))` realizing
    /// this stimulus, after clamping the density to its feasible range.
    pub fn transition_rates(&self) -> (f64, f64) {
        let p1 = self.p1.clamp(0.0, 1.0);
        let p0 = 1.0 - p1;
        let max_density = 2.0 * p0.min(p1);
        let d = self.density.clamp(0.0, max_density);
        // Stationarity: p0 * a = p1 * b = d / 2.
        let a = if p0 > 1e-12 { d / (2.0 * p0) } else { 0.0 };
        let b = if p1 > 1e-12 { d / (2.0 * p1) } else { 0.0 };
        (a.clamp(0.0, 1.0), b.clamp(0.0, 1.0))
    }
}

/// A workload: one [`PiStimulus`] per primary input, in PI id order.
///
/// # Example
/// ```
/// use deepseq_sim::Workload;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = Workload::random(4, &mut rng);
/// assert_eq!(w.len(), 4);
/// assert!(w.stimuli().iter().all(|s| (0.0..=1.0).contains(&s.p1)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    stimuli: Vec<PiStimulus>,
}

impl Workload {
    /// A workload from explicit per-PI stimuli.
    pub fn new(stimuli: Vec<PiStimulus>) -> Self {
        Workload { stimuli }
    }

    /// All PIs share the same logic-1 probability, temporally independent.
    pub fn uniform(num_pis: usize, p1: f64) -> Self {
        Workload {
            stimuli: vec![PiStimulus::independent(p1); num_pis],
        }
    }

    /// Random workload as in the paper: logic-1 probabilities drawn uniformly
    /// from `[0, 1]` per PI, temporally independent patterns.
    pub fn random<R: Rng + ?Sized>(num_pis: usize, rng: &mut R) -> Self {
        Workload {
            stimuli: (0..num_pis)
                .map(|_| PiStimulus::independent(rng.gen::<f64>()))
                .collect(),
        }
    }

    /// Random workload with random toggle densities as well — used for the
    /// fine-tuning workload sweeps of the downstream tasks, where testbench
    /// workloads differ in both probability and activity.
    pub fn random_with_density<R: Rng + ?Sized>(num_pis: usize, rng: &mut R) -> Self {
        Workload {
            stimuli: (0..num_pis)
                .map(|_| {
                    let p1: f64 = rng.gen();
                    let max_density = 2.0 * p1.min(1.0 - p1);
                    PiStimulus {
                        p1,
                        density: rng.gen::<f64>() * max_density,
                    }
                })
                .collect(),
        }
    }

    /// Number of PIs covered.
    pub fn len(&self) -> usize {
        self.stimuli.len()
    }

    /// True if the workload covers no PIs.
    pub fn is_empty(&self) -> bool {
        self.stimuli.is_empty()
    }

    /// The per-PI stimuli in PI id order.
    pub fn stimuli(&self) -> &[PiStimulus] {
        &self.stimuli
    }

    /// The logic-1 probability of the `i`-th PI; this is the value used to
    /// initialize PI embeddings in the model (paper, Section III-B).
    pub fn p1(&self, i: usize) -> f64 {
        self.stimuli[i].p1
    }
}

/// Stateful bit-parallel pattern generator for one workload: maintains the
/// current 64-lane word per PI and steps them as independent Markov chains.
#[derive(Debug, Clone)]
pub struct PatternGenerator {
    rates: Vec<(f64, f64)>,
    current: Vec<u64>,
    started: bool,
}

impl PatternGenerator {
    /// Creates a generator; lanes start from the stationary distribution.
    pub fn new(workload: &Workload) -> Self {
        PatternGenerator {
            rates: workload
                .stimuli()
                .iter()
                .map(PiStimulus::transition_rates)
                .collect(),
            current: vec![0; workload.len()],
            started: false,
        }
    }

    /// Advances one clock cycle and returns the 64-lane word of every PI.
    pub fn step<R: Rng + ?Sized>(&mut self, workload: &Workload, rng: &mut R) -> &[u64] {
        if !self.started {
            for (i, s) in workload.stimuli().iter().enumerate() {
                self.current[i] = random_word(s.p1, rng);
            }
            self.started = true;
        } else {
            for (i, &(a, b)) in self.rates.iter().enumerate() {
                let cur = self.current[i];
                let rise = random_word(a, rng); // applies where cur == 0
                let fall = random_word(b, rng); // applies where cur == 1
                self.current[i] = (!cur & (cur | rise)) | (cur & !fall);
            }
        }
        &self.current
    }
}

/// A 64-bit word whose bits are independently 1 with probability `p`.
pub fn random_word<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return u64::MAX;
    }
    // Compose from the 16-bit binary expansion p ≈ Σ b_k·2^(-k): processing
    // bits from least to most significant with fresh uniform words,
    // `w ← r|w` contributes 2^(-k) density, `w ← r&w` halves it.
    let mut bits = [false; 16];
    let mut scaled = p;
    for b in bits.iter_mut() {
        scaled *= 2.0;
        if scaled >= 1.0 {
            *b = true;
            scaled -= 1.0;
        }
    }
    let mut word = 0;
    for &b in bits.iter().rev() {
        let r = rng.gen::<u64>();
        word = if b { r | word } else { r & word };
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn independent_density() {
        let s = PiStimulus::independent(0.25);
        assert!((s.density - 2.0 * 0.25 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn transition_rates_stationary() {
        let s = PiStimulus {
            p1: 0.3,
            density: 0.2,
        };
        let (a, b) = s.transition_rates();
        // Stationarity: p0 * a == p1 * b == d/2.
        assert!((0.7 * a - 0.1).abs() < 1e-12);
        assert!((0.3 * b - 0.1).abs() < 1e-12);
    }

    #[test]
    fn density_clamped_to_feasible() {
        let s = PiStimulus {
            p1: 0.05,
            density: 0.9, // infeasible, max is 0.1
        };
        let (a, b) = s.transition_rates();
        assert!(a <= 1.0 && b <= 1.0);
        assert!((0.95 * a - 0.05).abs() < 1e-9);
    }

    #[test]
    fn random_word_density_matches_p() {
        let mut rng = StdRng::seed_from_u64(1);
        for &p in &[0.0, 0.1, 0.25, 0.5, 0.8, 1.0] {
            let mut ones = 0u32;
            let words = 2000;
            for _ in 0..words {
                ones += random_word(p, &mut rng).count_ones();
            }
            let freq = ones as f64 / (64.0 * words as f64);
            assert!((freq - p).abs() < 0.01, "p={p} measured {freq}");
        }
    }

    #[test]
    fn pattern_generator_matches_stationary_stats() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Workload::new(vec![PiStimulus {
            p1: 0.4,
            density: 0.3,
        }]);
        let mut gen = PatternGenerator::new(&w);
        let mut prev = 0u64;
        let mut ones = 0u64;
        let mut toggles = 0u64;
        let cycles = 4000;
        for c in 0..cycles {
            let word = gen.step(&w, &mut rng)[0];
            ones += word.count_ones() as u64;
            if c > 0 {
                toggles += (word ^ prev).count_ones() as u64;
            }
            prev = word;
        }
        let p1 = ones as f64 / (64.0 * cycles as f64);
        let d = toggles as f64 / (64.0 * (cycles - 1) as f64);
        assert!((p1 - 0.4).abs() < 0.02, "p1 measured {p1}");
        assert!((d - 0.3).abs() < 0.02, "density measured {d}");
    }

    #[test]
    fn random_workload_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Workload::random_with_density(20, &mut rng);
        for s in w.stimuli() {
            assert!((0.0..=1.0).contains(&s.p1));
            assert!(s.density >= 0.0);
            let (a, b) = s.transition_rates();
            assert!((0.0..=1.0).contains(&a));
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn uniform_workload() {
        let w = Workload::uniform(3, 0.5);
        assert_eq!(w.len(), 3);
        assert_eq!(w.p1(2), 0.5);
    }
}
