//! Monte-Carlo transient-fault injection (paper, Section V-B).
//!
//! Ground truth for the reliability task is produced by simulating each
//! circuit twice under identical stimuli — once fault-free, once with
//! per-gate transient faults injected at a small error rate (the paper uses
//! 0.05 % with 1 000 patterns of 100 cycles) — and recording, per node, the
//! conditional flipping probabilities:
//!
//! * `e01[v]` — probability the faulty value is 1 when the correct value is 0;
//! * `e10[v]` — probability the faulty value is 0 when the correct value is 1.
//!
//! Fault sites are gate outputs (AND/NOT) and flip-flop outputs; primary
//! inputs are assumed correct. Faults injected into FFs naturally persist
//! across cycles through the faulty state vector, reproducing the temporal
//! error propagation that makes sequential reliability hard for analytical
//! methods.

use deepseq_netlist::aig::{AigNode, NodeId, SeqAig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{PatternGenerator, Workload};

/// Options controlling fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultOptions {
    /// Per-site, per-cycle flip probability (paper: `0.0005`).
    pub error_rate: f64,
    /// Number of independent restart patterns (paper: 1000). Runs in
    /// batches of 64 lanes.
    pub patterns: usize,
    /// Clock cycles per pattern (paper: 100).
    pub cycles_per_pattern: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultOptions {
    /// The paper's setting: 0.05 % error rate, 1 000 × 100 cycles.
    fn default() -> Self {
        FaultOptions {
            error_rate: 0.0005,
            patterns: 1000,
            cycles_per_pattern: 100,
            seed: 0,
        }
    }
}

/// Per-node and circuit-level fault statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultResult {
    /// `P(faulty = 1 | correct = 0)` per node.
    pub e01: Vec<f64>,
    /// `P(faulty = 0 | correct = 1)` per node.
    pub e10: Vec<f64>,
    /// `P(faulty = correct)` per node.
    pub node_reliability: Vec<f64>,
    /// Circuit reliability: mean over primary outputs of `P(correct)` —
    /// the scalar compared in Table VII.
    pub output_reliability: f64,
}

impl FaultResult {
    /// Unconditional error probability of a node:
    /// `p0·e01 + p1·e10` given its logic-1 probability.
    pub fn error_probability(&self, v: usize, p1: f64) -> f64 {
        (1.0 - p1) * self.e01[v] + p1 * self.e10[v]
    }
}

/// Runs fault-free and faulty simulation side by side and collects error
/// statistics.
///
/// # Example
/// ```
/// use deepseq_netlist::SeqAig;
/// use deepseq_sim::{inject_faults, FaultOptions, Workload};
///
/// let mut aig = SeqAig::new("buf");
/// let a = aig.add_pi("a");
/// let n = aig.add_not(a);
/// aig.set_output(n, "y");
/// let w = Workload::uniform(1, 0.5);
/// let r = inject_faults(&aig, &w, &FaultOptions::default());
/// // With a 0.05% error rate the inverter flips rarely.
/// assert!(r.output_reliability > 0.99);
/// ```
pub fn inject_faults(aig: &SeqAig, workload: &Workload, opts: &FaultOptions) -> FaultResult {
    debug_assert_eq!(workload.len(), aig.num_pis());
    let n = aig.len();
    let pis = aig.pis();
    let ffs = aig.ffs();
    // Fault sites: every non-PI node.
    let sites: Vec<NodeId> = aig
        .iter()
        .filter(|(_, node)| !node.is_pi())
        .map(|(id, _)| id)
        .collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut golden = vec![0u64; n];
    let mut faulty = vec![0u64; n];
    let mut n0 = vec![0u64; n];
    let mut n1 = vec![0u64; n];
    let mut flips01 = vec![0u64; n];
    let mut flips10 = vec![0u64; n];
    let mut po_total = 0u64;
    let mut po_correct = 0u64;

    let batches = opts.patterns.div_ceil(64).max(1);
    let mut stream = FaultStream::new(opts.error_rate);
    let site_bits = (sites.len() as u64) * 64;

    for batch in 0..batches {
        let mut gen = PatternGenerator::new(workload);
        let mut batch_rng =
            StdRng::seed_from_u64(opts.seed ^ (batch as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut gff: Vec<u64> = ffs
            .iter()
            .map(|&ff| match aig.node(ff) {
                AigNode::Ff { init: true, .. } => u64::MAX,
                _ => 0,
            })
            .collect();
        let mut fff = gff.clone();

        for _cycle in 0..opts.cycles_per_pattern {
            // Fault masks for this cycle, in increasing node-id order.
            let faults = stream.cycle_faults(site_bits, &sites, &mut rng);
            let pi_words = gen.step(workload, &mut batch_rng);
            for (i, &pi) in pis.iter().enumerate() {
                golden[pi.index()] = pi_words[i];
                faulty[pi.index()] = pi_words[i];
            }
            for (i, &ff) in ffs.iter().enumerate() {
                golden[ff.index()] = gff[i];
                faulty[ff.index()] = fff[i];
            }
            // Apply FF-output faults before the combinational settle.
            for &(site, mask) in &faults {
                if aig.node(site).is_ff() {
                    faulty[site.index()] ^= mask;
                }
            }
            let mut fault_iter = faults.iter().peekable();
            for (id, node) in aig.iter() {
                match *node {
                    AigNode::And(a, b) => {
                        golden[id.index()] = golden[a.index()] & golden[b.index()];
                        faulty[id.index()] = faulty[a.index()] & faulty[b.index()];
                    }
                    AigNode::Not(a) => {
                        golden[id.index()] = !golden[a.index()];
                        faulty[id.index()] = !faulty[a.index()];
                    }
                    AigNode::Pi | AigNode::Ff { .. } => {}
                }
                // Inject gate-output faults in stride.
                while let Some(&&(site, mask)) = fault_iter.peek() {
                    if site < id {
                        fault_iter.next();
                    } else if site == id {
                        if !aig.node(site).is_ff() {
                            faulty[id.index()] ^= mask;
                        }
                        fault_iter.next();
                    } else {
                        break;
                    }
                }
            }
            // Statistics.
            for v in 0..n {
                let g = golden[v];
                let f = faulty[v];
                n0[v] += u64::from((!g).count_ones());
                n1[v] += u64::from(g.count_ones());
                flips01[v] += u64::from((!g & f).count_ones());
                flips10[v] += u64::from((g & !f).count_ones());
            }
            for (po, _) in aig.outputs() {
                let diff = golden[po.index()] ^ faulty[po.index()];
                po_total += 64;
                po_correct += u64::from(64 - diff.count_ones());
            }
            // Clock edge for both machines.
            for (i, &ff) in ffs.iter().enumerate() {
                let d = aig.ff_fanin(ff).expect("validated AIG");
                gff[i] = golden[d.index()];
                fff[i] = faulty[d.index()];
            }
        }
    }

    let mut e01 = vec![0.0; n];
    let mut e10 = vec![0.0; n];
    let mut node_rel = vec![1.0; n];
    for v in 0..n {
        e01[v] = if n0[v] > 0 {
            flips01[v] as f64 / n0[v] as f64
        } else {
            0.0
        };
        e10[v] = if n1[v] > 0 {
            flips10[v] as f64 / n1[v] as f64
        } else {
            0.0
        };
        let total = n0[v] + n1[v];
        if total > 0 {
            node_rel[v] = 1.0 - (flips01[v] + flips10[v]) as f64 / total as f64;
        }
    }
    FaultResult {
        e01,
        e10,
        node_reliability: node_rel,
        output_reliability: if po_total > 0 {
            po_correct as f64 / po_total as f64
        } else {
            1.0
        },
    }
}

/// Geometric-skipping fault-position stream over the flattened
/// `(site, lane)` bit index space of one cycle. Exact Bernoulli sampling at
/// a fraction of the cost of per-bit draws.
#[derive(Debug)]
struct FaultStream {
    error_rate: f64,
    carry: u64,
}

impl FaultStream {
    fn new(error_rate: f64) -> Self {
        FaultStream {
            error_rate: error_rate.clamp(0.0, 1.0),
            carry: 0,
        }
    }

    /// Fault masks for one cycle, merged per site, in increasing id order.
    fn cycle_faults<R: Rng + ?Sized>(
        &mut self,
        total_bits: u64,
        sites: &[NodeId],
        rng: &mut R,
    ) -> Vec<(NodeId, u64)> {
        let mut faults: Vec<(NodeId, u64)> = Vec::new();
        if self.error_rate <= 0.0 || total_bits == 0 {
            return faults;
        }
        let ln_keep = (1.0 - self.error_rate).ln();
        let mut pos = self.carry;
        while pos < total_bits {
            let site_idx = (pos / 64) as usize;
            let bit = pos % 64;
            let site = sites[site_idx];
            match faults.last_mut() {
                Some((last, mask)) if *last == site => *mask |= 1 << bit,
                _ => faults.push((site, 1 << bit)),
            }
            pos += 1 + next_gap(ln_keep, rng);
        }
        self.carry = pos - total_bits;
        faults
    }
}

/// Geometric gap: number of non-fault bits before the next fault.
fn next_gap<R: Rng + ?Sized>(ln_keep: f64, rng: &mut R) -> u64 {
    if ln_keep >= 0.0 {
        return 0; // error_rate == 1
    }
    let u: f64 = rng.gen::<f64>().max(1e-300);
    let gap = (u.ln() / ln_keep).floor();
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pipeline() -> SeqAig {
        let mut aig = SeqAig::new("pipe");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, g).unwrap();
        let n = aig.add_not(q);
        aig.set_output(n, "y");
        aig
    }

    fn opts(rate: f64) -> FaultOptions {
        FaultOptions {
            error_rate: rate,
            patterns: 256,
            cycles_per_pattern: 50,
            seed: 9,
        }
    }

    #[test]
    fn zero_error_rate_is_perfectly_reliable() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let r = inject_faults(&aig, &w, &opts(0.0));
        assert_eq!(r.output_reliability, 1.0);
        assert!(r.e01.iter().all(|&e| e == 0.0));
        assert!(r.e10.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn small_error_rate_gives_high_reliability() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let r = inject_faults(&aig, &w, &opts(0.0005));
        assert!(r.output_reliability > 0.99, "{}", r.output_reliability);
        assert!(r.output_reliability < 1.0);
    }

    #[test]
    fn higher_error_rate_lowers_reliability() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let low = inject_faults(&aig, &w, &opts(0.0005));
        let high = inject_faults(&aig, &w, &opts(0.02));
        assert!(high.output_reliability < low.output_reliability);
    }

    #[test]
    fn error_probabilities_scale_with_rate() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let r = inject_faults(&aig, &w, &opts(0.05));
        // The NOT output (last node) must show both error directions.
        let v = aig.len() - 1;
        assert!(r.e01[v] > 0.0 || r.e10[v] > 0.0);
        let p = r.error_probability(v, 0.5);
        assert!(p > 0.0 && p < 0.5);
    }

    #[test]
    fn pis_never_fault() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let r = inject_faults(&aig, &w, &opts(0.05));
        assert_eq!(r.e01[0], 0.0);
        assert_eq!(r.e10[0], 0.0);
        assert_eq!(r.e01[1], 0.0);
        assert_eq!(r.e10[1], 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let aig = small_pipeline();
        let w = Workload::uniform(2, 0.5);
        let r1 = inject_faults(&aig, &w, &opts(0.01));
        let r2 = inject_faults(&aig, &w, &opts(0.01));
        assert_eq!(r1, r2);
    }

    #[test]
    fn fault_stream_density_matches_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let sites: Vec<NodeId> = (0..100).map(NodeId).collect();
        let mut stream = FaultStream::new(0.01);
        let mut total_bits = 0u64;
        let mut fault_bits = 0u64;
        for _ in 0..500 {
            let faults = stream.cycle_faults(100 * 64, &sites, &mut rng);
            total_bits += 100 * 64;
            fault_bits += faults
                .iter()
                .map(|(_, m)| m.count_ones() as u64)
                .sum::<u64>();
        }
        let density = fault_bits as f64 / total_bits as f64;
        assert!((density - 0.01).abs() < 0.001, "density {density}");
    }

    #[test]
    fn fault_masks_sorted_and_merged() {
        let mut rng = StdRng::seed_from_u64(5);
        let sites: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut stream = FaultStream::new(0.3);
        let faults = stream.cycle_faults(10 * 64, &sites, &mut rng);
        for pair in faults.windows(2) {
            assert!(pair[0].0 < pair[1].0, "sites must be strictly increasing");
        }
    }
}
