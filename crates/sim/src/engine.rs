//! The 64-lane bit-parallel sequential simulator.
//!
//! Every node value is a `u64` word; bit `k` belongs to lane `k`, an
//! independent stimulus stream. One simulated clock cycle therefore yields 64
//! Monte-Carlo samples. The paper's ground-truth generation (a 10 000-cycle
//! random pattern per circuit) maps to `cycles ≈ 10_000 / 64` with identical
//! statistics, or any higher number for tighter estimates.
//!
//! The per-cycle ordering mirrors hardware: flip-flop outputs hold their
//! state from the previous cycle while the combinational part settles, then
//! all FFs load their D inputs at the clock edge.

use deepseq_netlist::aig::{AigNode, SeqAig};
use deepseq_netlist::netlist::{GateId, GateKind, Netlist};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::probability::{NodeProbabilities, ProbabilityAccumulator};
use crate::workload::{PatternGenerator, Workload};

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Clock cycles to simulate (each contributes 64 lane-samples).
    pub cycles: usize,
    /// Leading cycles excluded from the statistics (reset transient).
    pub warmup: usize,
    /// RNG seed for the stimulus streams.
    pub seed: u64,
}

impl Default for SimOptions {
    /// 256 cycles × 64 lanes ≈ 16 k samples, 16 warm-up cycles, seed 0 —
    /// slightly more data than the paper's single 10 000-cycle pattern.
    fn default() -> Self {
        SimOptions {
            cycles: 256,
            warmup: 16,
            seed: 0,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-node logic and transition probabilities.
    pub probs: NodeProbabilities,
}

/// Simulates `aig` under `workload` and collects per-node probabilities.
///
/// The `workload` must cover exactly `aig.num_pis()` inputs (PI id order);
/// extra or missing entries are a caller bug and panic in debug builds.
///
/// # Example
/// See the [crate-level example](crate).
pub fn simulate(aig: &SeqAig, workload: &Workload, opts: &SimOptions) -> SimResult {
    debug_assert_eq!(workload.len(), aig.num_pis());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = aig.len();
    let pis = aig.pis();
    let ffs = aig.ffs();

    let mut values = vec![0u64; n];
    let mut prev = vec![0u64; n];
    // FF state starts at the power-on value in every lane.
    let mut ff_state: Vec<u64> = ffs
        .iter()
        .map(|&ff| match aig.node(ff) {
            AigNode::Ff { init, .. } => {
                if *init {
                    u64::MAX
                } else {
                    0
                }
            }
            _ => unreachable!("ffs() returns only FFs"),
        })
        .collect();

    let mut gen = PatternGenerator::new(workload);
    let mut acc = ProbabilityAccumulator::new(n);

    for cycle in 0..opts.cycles {
        // 1. Apply stimulus and present FF states.
        let pi_words = gen.step(workload, &mut rng);
        for (i, &pi) in pis.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        for (i, &ff) in ffs.iter().enumerate() {
            values[ff.index()] = ff_state[i];
        }
        // 2. Settle combinational logic (ordered ids ⇒ a single scan).
        for (id, node) in aig.iter() {
            match *node {
                AigNode::And(a, b) => values[id.index()] = values[a.index()] & values[b.index()],
                AigNode::Not(a) => values[id.index()] = !values[a.index()],
                AigNode::Pi | AigNode::Ff { .. } => {}
            }
        }
        // 3. Record statistics after warm-up.
        if cycle >= opts.warmup {
            let with_prev = cycle > opts.warmup;
            acc.record(&values, with_prev.then_some(prev.as_slice()));
        }
        prev.copy_from_slice(&values);
        // 4. Clock edge: FFs capture their D inputs.
        for (i, &ff) in ffs.iter().enumerate() {
            let d = aig.ff_fanin(ff).expect("validated AIG has connected FFs");
            ff_state[i] = values[d.index()];
        }
    }

    SimResult {
        probs: acc.finish(),
    }
}

/// Visitor variant of [`simulate`]: calls `visit(cycle, values)` with the
/// settled node words each cycle (including warm-up cycles). Used by the
/// fault injector and the SAIF toggle counter.
pub fn simulate_with<F>(
    aig: &SeqAig,
    workload: &Workload,
    opts: &SimOptions,
    mut visit: F,
) -> SimResult
where
    F: FnMut(usize, &[u64]),
{
    debug_assert_eq!(workload.len(), aig.num_pis());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = aig.len();
    let pis = aig.pis();
    let ffs = aig.ffs();
    let mut values = vec![0u64; n];
    let mut prev = vec![0u64; n];
    let mut ff_state: Vec<u64> = ffs
        .iter()
        .map(|&ff| match aig.node(ff) {
            AigNode::Ff { init: true, .. } => u64::MAX,
            _ => 0,
        })
        .collect();
    let mut gen = PatternGenerator::new(workload);
    let mut acc = ProbabilityAccumulator::new(n);

    for cycle in 0..opts.cycles {
        let pi_words = gen.step(workload, &mut rng);
        for (i, &pi) in pis.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        for (i, &ff) in ffs.iter().enumerate() {
            values[ff.index()] = ff_state[i];
        }
        for (id, node) in aig.iter() {
            match *node {
                AigNode::And(a, b) => values[id.index()] = values[a.index()] & values[b.index()],
                AigNode::Not(a) => values[id.index()] = !values[a.index()],
                AigNode::Pi | AigNode::Ff { .. } => {}
            }
        }
        visit(cycle, &values);
        if cycle >= opts.warmup {
            let with_prev = cycle > opts.warmup;
            acc.record(&values, with_prev.then_some(prev.as_slice()));
        }
        prev.copy_from_slice(&values);
        for (i, &ff) in ffs.iter().enumerate() {
            let d = aig.ff_fanin(ff).expect("validated AIG has connected FFs");
            ff_state[i] = values[d.index()];
        }
    }
    SimResult {
        probs: acc.finish(),
    }
}

/// Simulates a generic [`Netlist`] with the same lane semantics. The
/// `workload` covers the netlist's inputs in input id order.
///
/// # Panics
/// Panics if the netlist has a combinational cycle (validate it first).
pub fn simulate_netlist(netlist: &Netlist, workload: &Workload, opts: &SimOptions) -> SimResult {
    debug_assert_eq!(workload.len(), netlist.inputs().len());
    let order = netlist
        .topo_order()
        .expect("simulate_netlist requires an acyclic combinational part");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = netlist.len();
    let inputs = netlist.inputs();
    let dffs = netlist.dffs();

    let mut values = vec![0u64; n];
    let mut prev = vec![0u64; n];
    let mut ff_state: Vec<u64> = dffs
        .iter()
        .map(|&d| if netlist.gate(d).init { u64::MAX } else { 0 })
        .collect();
    let mut gen = PatternGenerator::new(workload);
    let mut acc = ProbabilityAccumulator::new(n);

    for cycle in 0..opts.cycles {
        let pi_words = gen.step(workload, &mut rng);
        for (i, &pi) in inputs.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        for (i, &ff) in dffs.iter().enumerate() {
            values[ff.index()] = ff_state[i];
        }
        for &gate_id in &order {
            values[gate_id.index()] = eval_gate(netlist, gate_id, &values);
        }
        if cycle >= opts.warmup {
            let with_prev = cycle > opts.warmup;
            acc.record(&values, with_prev.then_some(prev.as_slice()));
        }
        prev.copy_from_slice(&values);
        for (i, &ff) in dffs.iter().enumerate() {
            let d = netlist.gate(ff).fanins[0];
            ff_state[i] = values[d.index()];
        }
    }
    SimResult {
        probs: acc.finish(),
    }
}

/// Evaluates one gate's 64-lane word given the current values.
fn eval_gate(netlist: &Netlist, id: GateId, values: &[u64]) -> u64 {
    let gate = netlist.gate(id);
    let val = |g: GateId| values[g.index()];
    match gate.kind {
        GateKind::Input | GateKind::Dff => values[id.index()],
        GateKind::Buf => val(gate.fanins[0]),
        GateKind::Not => !val(gate.fanins[0]),
        GateKind::And => gate.fanins.iter().fold(u64::MAX, |acc, &f| acc & val(f)),
        GateKind::Nand => !gate.fanins.iter().fold(u64::MAX, |acc, &f| acc & val(f)),
        GateKind::Or => gate.fanins.iter().fold(0, |acc, &f| acc | val(f)),
        GateKind::Nor => !gate.fanins.iter().fold(0, |acc, &f| acc | val(f)),
        GateKind::Xor => gate.fanins.iter().fold(0, |acc, &f| acc ^ val(f)),
        GateKind::Xnor => !gate.fanins.iter().fold(0, |acc, &f| acc ^ val(f)),
        GateKind::Mux => {
            let s = val(gate.fanins[0]);
            let a = val(gate.fanins[1]);
            let b = val(gate.fanins[2]);
            (!s & a) | (s & b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::lower_to_aig;

    fn opts() -> SimOptions {
        SimOptions {
            cycles: 600,
            warmup: 20,
            seed: 42,
        }
    }

    #[test]
    fn and_gate_probability_is_product() {
        let mut aig = SeqAig::new("and");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let w = Workload::uniform(2, 0.5);
        let r = simulate(&aig, &w, &opts());
        assert!((r.probs.p1[a.index()] - 0.5).abs() < 0.02);
        assert!((r.probs.p1[g.index()] - 0.25).abs() < 0.02);
        // Independent-per-cycle inputs: p01(AND) = p0 * p1 = 0.75 * 0.25.
        assert!((r.probs.p01[g.index()] - 0.1875).abs() < 0.02);
    }

    #[test]
    fn not_gate_inverts_probability() {
        let mut aig = SeqAig::new("not");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        let w = Workload::uniform(1, 0.8);
        let r = simulate(&aig, &w, &opts());
        assert!((r.probs.p1[n.index()] - 0.2).abs() < 0.02);
        // NOT transitions mirror the input's (swapped direction).
        assert!((r.probs.p01[n.index()] - r.probs.p10[a.index()]).abs() < 1e-12);
    }

    #[test]
    fn toggle_ff_alternates() {
        let mut aig = SeqAig::new("toggle");
        let q = aig.add_ff("q", false);
        let n = aig.add_not(q);
        aig.connect_ff(q, n).unwrap();
        let w = Workload::uniform(0, 0.5);
        let r = simulate(&aig, &w, &opts());
        assert!((r.probs.p1[q.index()] - 0.5).abs() < 0.01);
        // Toggles every cycle: half the cycle pairs are rises.
        assert!((r.probs.p01[q.index()] - 0.5).abs() < 0.01);
        assert!((r.probs.p10[q.index()] - 0.5).abs() < 0.01);
    }

    #[test]
    fn constant_zero_ff_stays_zero() {
        // FF feeding itself holds its initial value forever.
        let mut aig = SeqAig::new("hold");
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, q).unwrap();
        let w = Workload::uniform(0, 0.5);
        let r = simulate(&aig, &w, &opts());
        assert_eq!(r.probs.p1[q.index()], 0.0);
        assert_eq!(r.probs.toggle_rate(q.index()), 0.0);
    }

    #[test]
    fn ff_init_one_holds_one() {
        let mut aig = SeqAig::new("hold1");
        let q = aig.add_ff("q", true);
        aig.connect_ff(q, q).unwrap();
        let w = Workload::uniform(0, 0.5);
        let r = simulate(&aig, &w, &opts());
        assert_eq!(r.probs.p1[q.index()], 1.0);
    }

    #[test]
    fn ff_delays_input_by_one_cycle() {
        // q follows the PI with one cycle delay; its p1 must match the PI's.
        let mut aig = SeqAig::new("delay");
        let a = aig.add_pi("a");
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, a).unwrap();
        let w = Workload::uniform(1, 0.3);
        let r = simulate(&aig, &w, &opts());
        assert!((r.probs.p1[q.index()] - 0.3).abs() < 0.02);
        assert!((r.probs.p01[q.index()] - 0.21).abs() < 0.02);
    }

    #[test]
    fn probabilities_are_consistent() {
        let mut aig = SeqAig::new("mixed");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", false);
        let g2 = aig.add_and(q, n);
        aig.connect_ff(q, g2).unwrap();
        let w = Workload::uniform(2, 0.6);
        let r = simulate(&aig, &w, &opts());
        assert!(r.probs.check_consistency(0.03).is_ok());
    }

    #[test]
    fn netlist_and_lowered_aig_agree() {
        // The lowering preserves per-gate probabilities: simulate both
        // representations under the same seed and compare mapped nodes.
        use deepseq_netlist::netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate(GateKind::Xor, vec![a, b]);
        let m = nl.add_gate(GateKind::Mux, vec![c, x, a]);
        let q = nl.add_dff("q", false);
        let o = nl.add_gate(GateKind::Nor, vec![m, q]);
        nl.connect_dff(q, o).unwrap();
        nl.set_output(o, "y");

        let lowered = lower_to_aig(&nl).unwrap();
        let w = Workload::uniform(3, 0.5);
        let o1 = opts();
        let rn = simulate_netlist(&nl, &w, &o1);
        let ra = simulate(&lowered.aig, &w, &o1);
        for (gid, _) in nl.iter() {
            let node = lowered.node_for(gid);
            assert!(
                (rn.probs.p1[gid.index()] - ra.probs.p1[node.index()]).abs() < 1e-12,
                "p1 mismatch at {gid}"
            );
            assert!(
                (rn.probs.p01[gid.index()] - ra.probs.p01[node.index()]).abs() < 1e-12,
                "p01 mismatch at {gid}"
            );
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut aig = SeqAig::new("det");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        let _ = aig.add_and(a, n);
        let w = Workload::uniform(1, 0.4);
        let r1 = simulate(&aig, &w, &opts());
        let r2 = simulate(&aig, &w, &opts());
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut aig = SeqAig::new("det");
        let a = aig.add_pi("a");
        let _ = aig.add_not(a);
        let w = Workload::uniform(1, 0.4);
        let mut o2 = opts();
        o2.seed = 43;
        let r1 = simulate(&aig, &w, &opts());
        let r2 = simulate(&aig, &w, &o2);
        assert_ne!(r1, r2);
    }

    #[test]
    fn visitor_sees_every_cycle() {
        let mut aig = SeqAig::new("v");
        let a = aig.add_pi("a");
        let _ = aig.add_not(a);
        let w = Workload::uniform(1, 0.5);
        let mut seen = 0usize;
        let o = SimOptions {
            cycles: 10,
            warmup: 2,
            seed: 1,
        };
        simulate_with(&aig, &w, &o, |_, _| seen += 1);
        assert_eq!(seen, 10);
    }
}
