//! Property-based tests: simulation statistics on random circuits must obey
//! probability-theoretic invariants, and lowering must preserve behaviour.

use deepseq_netlist::netlist::{GateKind, Netlist};
use deepseq_netlist::{lower_to_aig, NodeId, SeqAig};
use deepseq_sim::{inject_faults, simulate, simulate_netlist, FaultOptions, SimOptions, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..5, 0usize..4, 1usize..30, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                aig.add_not(NodeId(next(len) as u32));
            } else {
                aig.add_and(NodeId(next(len) as u32), NodeId(next(len) as u32));
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            aig.connect_ff(ff, NodeId(next(len) as u32)).unwrap();
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (1usize..5, 0usize..3, 1usize..15, any::<u64>()).prop_map(|(n_in, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Mux,
        ];
        let mut nl = Netlist::new("prop");
        for i in 0..n_in {
            nl.add_input(format!("in{i}"));
        }
        let mut dffs = Vec::new();
        for i in 0..n_ff {
            dffs.push(nl.add_dff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = nl.len();
            let kind = kinds[next(kinds.len())];
            let arity = kind.fixed_arity().unwrap_or(1 + next(3));
            let fanins = (0..arity)
                .map(|_| deepseq_netlist::GateId(next(len) as u32))
                .collect();
            nl.add_gate(kind, fanins);
        }
        let len = nl.len();
        for &dff in &dffs {
            nl.connect_dff(dff, deepseq_netlist::GateId(next(len) as u32))
                .unwrap();
        }
        nl.set_output(deepseq_netlist::GateId((len - 1) as u32), "out");
        nl
    })
}

fn opts() -> SimOptions {
    SimOptions {
        cycles: 200,
        warmup: 10,
        seed: 11,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probabilities_are_consistent(aig in arb_seq_aig(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Workload::random(aig.num_pis(), &mut rng);
        let r = simulate(&aig, &w, &opts());
        prop_assert!(r.probs.check_consistency(0.05).is_ok(),
            "{:?}", r.probs.check_consistency(0.05));
    }

    #[test]
    fn and_output_never_exceeds_fanin_probability(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let r = simulate(&aig, &w, &opts());
        for (id, node) in aig.iter() {
            if let deepseq_netlist::AigNode::And(a, b) = *node {
                let p = r.probs.p1[id.index()];
                prop_assert!(p <= r.probs.p1[a.index()] + 1e-12);
                prop_assert!(p <= r.probs.p1[b.index()] + 1e-12);
            }
        }
    }

    #[test]
    fn not_output_complements_fanin(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.3);
        let r = simulate(&aig, &w, &opts());
        for (id, node) in aig.iter() {
            if let deepseq_netlist::AigNode::Not(a) = *node {
                prop_assert!((r.probs.p1[id.index()] + r.probs.p1[a.index()] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lowering_preserves_probabilities(nl in arb_netlist()) {
        let lowered = lower_to_aig(&nl).unwrap();
        let w = Workload::uniform(nl.inputs().len(), 0.5);
        let rn = simulate_netlist(&nl, &w, &opts());
        let ra = simulate(&lowered.aig, &w, &opts());
        for (gid, _) in nl.iter() {
            let node = lowered.node_for(gid);
            prop_assert!((rn.probs.p1[gid.index()] - ra.probs.p1[node.index()]).abs() < 1e-12);
            prop_assert!((rn.probs.p01[gid.index()] - ra.probs.p01[node.index()]).abs() < 1e-12);
            prop_assert!((rn.probs.p10[gid.index()] - ra.probs.p10[node.index()]).abs() < 1e-12);
        }
    }

    #[test]
    fn fault_free_run_matches_simulation(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let fr = inject_faults(&aig, &w, &FaultOptions {
            error_rate: 0.0,
            patterns: 64,
            cycles_per_pattern: 30,
            seed: 3,
        });
        prop_assert_eq!(fr.output_reliability, 1.0);
        prop_assert!(fr.node_reliability.iter().all(|&r| r == 1.0));
    }

    #[test]
    fn reliability_bounded(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let fr = inject_faults(&aig, &w, &FaultOptions {
            error_rate: 0.01,
            patterns: 64,
            cycles_per_pattern: 30,
            seed: 3,
        });
        prop_assert!((0.0..=1.0).contains(&fr.output_reliability));
        for v in 0..aig.len() {
            prop_assert!((0.0..=1.0).contains(&fr.e01[v]));
            prop_assert!((0.0..=1.0).contains(&fr.e10[v]));
        }
    }
}
