//! Shared helpers of the serve integration tests: a tiny blocking HTTP
//! client, a deterministic circuit generator, and the two-mode-aware
//! prediction comparison used by the equivalence suites.

// Each test binary compiles its own copy and uses a different subset.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_netlist::{write_aiger, SeqAig};
use deepseq_nn::Pool;
use deepseq_serve::{Engine, EngineOptions, InferenceModel};

/// A parsed HTTP response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

/// One `Connection: close` HTTP/1.1 exchange against `addr`.
pub fn exchange(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Response {
    let raw = raw_exchange(
        addr,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes()
        .into_iter()
        .chain(body.iter().copied())
        .collect(),
    );
    parse_response(&raw)
}

/// Sends arbitrary bytes and reads to EOF — for malformed-request tests.
pub fn raw_exchange(addr: SocketAddr, payload: Vec<u8>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.write_all(&payload).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

/// Parses status code and body out of a raw HTTP response.
pub fn parse_response(raw: &[u8]) -> Response {
    let text = String::from_utf8_lossy(raw);
    let status = text
        .lines()
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:.200}"));
    let body = match text.find("\r\n\r\n") {
        Some(at) => text[at + 4..].to_string(),
        None => String::new(),
    };
    Response { status, body }
}

/// Asserts the Prometheus text-exposition correctness of a `/metrics`
/// payload, beyond any individual test's needles:
///
/// * every line is `name[{labels}] value` with a numeric value;
/// * every histogram series has ascending `le` bounds, monotonically
///   non-decreasing cumulative bucket counts, a `+Inf` bucket, and
///   matching `_sum` / `_count` lines with `_count` == the `+Inf` bucket;
/// * the pool and per-stage families added by the tracing layer are
///   present (`deepseq_pool_*`, `deepseq_stage_seconds`) — they are part
///   of the contract whether or not tracing is enabled.
///
/// Not every test binary scrapes `/metrics`, so the helper may go unused
/// in some of them.
#[allow(dead_code)]
pub fn assert_prometheus_contract(text: &str) {
    use std::collections::BTreeMap;
    // (family, labels-without-le) → [(le, cumulative count)] in file order.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut values: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed metrics line: {line}"));
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric metrics value: {line}"));
        values.insert(series.to_string(), value);
        let Some((name, rest)) = series.split_once('{') else {
            continue;
        };
        let Some(family) = name.strip_suffix("_bucket") else {
            continue;
        };
        let labels = rest
            .strip_suffix('}')
            .unwrap_or_else(|| panic!("unterminated label set: {line}"));
        let mut le = None;
        let mut others = Vec::new();
        for label in labels.split(',') {
            if let Some(bound) = label.strip_prefix("le=") {
                let bound = bound.trim_matches('"');
                le = Some(if bound == "+Inf" {
                    f64::INFINITY
                } else {
                    bound
                        .parse()
                        .unwrap_or_else(|_| panic!("unparseable le bound: {line}"))
                });
            } else if !label.is_empty() {
                others.push(label);
            }
        }
        let le = le.unwrap_or_else(|| panic!("bucket without le label: {line}"));
        buckets
            .entry((family.to_string(), others.join(",")))
            .or_default()
            .push((le, value));
    }
    assert!(!buckets.is_empty(), "no histogram series in /metrics");
    for ((family, labels), series) in &buckets {
        let id = format!("{family}{{{labels}}}");
        for pair in series.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "{id}: le bounds not ascending ({} then {})",
                pair[0].0,
                pair[1].0
            );
            assert!(
                pair[0].1 <= pair[1].1,
                "{id}: cumulative bucket counts decrease ({} at le={}, then {} at le={})",
                pair[0].1,
                pair[0].0,
                pair[1].1,
                pair[1].0
            );
        }
        let (last_le, inf_count) = *series.last().expect("non-empty series");
        assert!(last_le.is_infinite(), "{id}: missing le=\"+Inf\" bucket");
        let scalar = |suffix: &str| -> f64 {
            let key = if labels.is_empty() {
                format!("{family}_{suffix}")
            } else {
                format!("{family}_{suffix}{{{labels}}}")
            };
            *values
                .get(&key)
                .unwrap_or_else(|| panic!("{id}: missing {family}_{suffix} line"))
        };
        assert_eq!(
            scalar("count"),
            inf_count,
            "{id}: +Inf bucket disagrees with _count"
        );
        assert!(scalar("sum") >= 0.0, "{id}: negative _sum");
    }
    for required in [
        "deepseq_pool_threads ",
        "deepseq_pool_steals_total ",
        "deepseq_pool_parks_total ",
        "deepseq_pool_wakeups_total ",
        "deepseq_stage_seconds_bucket{",
        "deepseq_stage_p50_seconds{",
        "deepseq_stage_p95_seconds{",
    ] {
        assert!(
            text.lines().any(|line| line.starts_with(required)),
            "`{required}` missing from /metrics:\n{text}"
        );
    }
}

/// The documented end-to-end fast-mode bound: under `DEEPSEQ_KERNEL=simd`
/// a full serving forward pass stays within this relative error of the
/// tape path (see docs/ARCHITECTURE.md, "Numerics contract"). Bitwise
/// mode needs no bound — the paths are bit-equal.
pub const FAST_MODE_FORWARD_EPS: f32 = 1e-4;

/// Compare a serving-side output matrix against its tape-side reference
/// under whichever half of the two-mode numerics contract is active:
/// bitwise equality in bitwise mode (the default), relative error ≤
/// [`FAST_MODE_FORWARD_EPS`] under `DEEPSEQ_KERNEL=simd`.
pub fn matrices_match(
    got: &deepseq_nn::Matrix,
    want: &deepseq_nn::Matrix,
    what: &str,
) -> Result<(), String> {
    if got.shape() != want.shape() {
        return Err(format!(
            "{what}: shape {:?} vs {:?}",
            got.shape(),
            want.shape()
        ));
    }
    if deepseq_nn::Kernel::fast_mode() {
        deepseq_nn::numerics::close_rel(got.data(), want.data(), FAST_MODE_FORWARD_EPS)
            .map_err(|msg| format!("{what} (fast mode): {msg}"))
    } else {
        match deepseq_nn::numerics::max_ulp_distance(got.data(), want.data()) {
            0 => Ok(()),
            ulp => Err(format!("{what}: bitwise mode diverged (max {ulp} ULP)")),
        }
    }
}

/// Panicking wrapper around [`matrices_match`].
#[track_caller]
pub fn assert_matrices_match(got: &deepseq_nn::Matrix, want: &deepseq_nn::Matrix, what: &str) {
    if let Err(msg) = matrices_match(got, want, what) {
        panic!("{msg}");
    }
}

/// A deterministic engine (hidden 8, 2 iterations, fresh seeded weights)
/// on its own `threads`-wide pool.
pub fn test_engine(threads: usize) -> Engine {
    let model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    });
    Engine::with_pool(
        InferenceModel::from_model(&model).expect("canonical params"),
        EngineOptions {
            workers: threads,
            cache_capacity: 64,
            ..EngineOptions::default()
        },
        Arc::new(Pool::new(threads)),
    )
}

/// The `index`-th distinct test circuit: a `2 + index`-bit ripple counter
/// with an enable PI, in ASCII AIGER.
pub fn counter_aiger(index: usize) -> String {
    write_aiger(&counter_aig(index))
}

/// The same circuit as a [`SeqAig`] (for in-process comparison requests).
pub fn counter_aig(index: usize) -> SeqAig {
    let bits = 2 + index;
    let mut aig = SeqAig::new(format!("counter{bits}"));
    let enable = aig.add_pi("enable");
    let ffs: Vec<_> = (0..bits)
        .map(|b| aig.add_ff(format!("q{b}"), b % 2 == 0))
        .collect();
    let mut carry = enable;
    for (b, &ff) in ffs.iter().enumerate() {
        let nq = aig.add_not(ff);
        let ncarry = aig.add_not(carry);
        let l = aig.add_and(ff, ncarry);
        let r = aig.add_and(nq, carry);
        let nl = aig.add_not(l);
        let nr = aig.add_not(r);
        let nxor = aig.add_and(nl, nr);
        let next = aig.add_not(nxor);
        let new_carry = aig.add_and(ff, carry);
        aig.connect_ff(ff, next).expect("ff wiring");
        aig.set_output(ff, format!("count{b}"));
        carry = new_carry;
    }
    aig
}
