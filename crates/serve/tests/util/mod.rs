//! Shared helpers of the HTTP integration tests: a tiny blocking client
//! and a deterministic circuit generator.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_netlist::{write_aiger, SeqAig};
use deepseq_nn::Pool;
use deepseq_serve::{Engine, EngineOptions, InferenceModel};

/// A parsed HTTP response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

/// One `Connection: close` HTTP/1.1 exchange against `addr`.
pub fn exchange(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Response {
    let raw = raw_exchange(
        addr,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes()
        .into_iter()
        .chain(body.iter().copied())
        .collect(),
    );
    parse_response(&raw)
}

/// Sends arbitrary bytes and reads to EOF — for malformed-request tests.
pub fn raw_exchange(addr: SocketAddr, payload: Vec<u8>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.write_all(&payload).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

/// Parses status code and body out of a raw HTTP response.
pub fn parse_response(raw: &[u8]) -> Response {
    let text = String::from_utf8_lossy(raw);
    let status = text
        .lines()
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:.200}"));
    let body = match text.find("\r\n\r\n") {
        Some(at) => text[at + 4..].to_string(),
        None => String::new(),
    };
    Response { status, body }
}

/// A deterministic engine (hidden 8, 2 iterations, fresh seeded weights)
/// on its own `threads`-wide pool.
pub fn test_engine(threads: usize) -> Engine {
    let model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    });
    Engine::with_pool(
        InferenceModel::from_model(&model).expect("canonical params"),
        EngineOptions {
            workers: threads,
            cache_capacity: 64,
        },
        Arc::new(Pool::new(threads)),
    )
}

/// The `index`-th distinct test circuit: a `2 + index`-bit ripple counter
/// with an enable PI, in ASCII AIGER.
pub fn counter_aiger(index: usize) -> String {
    write_aiger(&counter_aig(index))
}

/// The same circuit as a [`SeqAig`] (for in-process comparison requests).
pub fn counter_aig(index: usize) -> SeqAig {
    let bits = 2 + index;
    let mut aig = SeqAig::new(format!("counter{bits}"));
    let enable = aig.add_pi("enable");
    let ffs: Vec<_> = (0..bits)
        .map(|b| aig.add_ff(format!("q{b}"), b % 2 == 0))
        .collect();
    let mut carry = enable;
    for (b, &ff) in ffs.iter().enumerate() {
        let nq = aig.add_not(ff);
        let ncarry = aig.add_not(carry);
        let l = aig.add_and(ff, ncarry);
        let r = aig.add_and(nq, carry);
        let nl = aig.add_not(l);
        let nr = aig.add_not(r);
        let nxor = aig.add_and(nl, nr);
        let next = aig.add_not(nxor);
        let new_carry = aig.add_and(ff, carry);
        aig.connect_ff(ff, next).expect("ff wiring");
        aig.set_output(ff, format!("count{b}"));
        carry = new_carry;
    }
    aig
}
