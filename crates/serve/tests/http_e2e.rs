//! End-to-end tests of the HTTP serving edge: a real `HttpServer` on a
//! loopback port, exercised by plain `TcpStream` clients.

mod util;

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepseq_netlist::parse_aiger;
use deepseq_serve::json::response_to_json;
use deepseq_serve::{HttpServer, ServeRequest, ServerOptions};
use deepseq_sim::Workload;

use util::{assert_prometheus_contract, counter_aiger, exchange, raw_exchange, test_engine};

fn boot(options: ServerOptions) -> (HttpServer, SocketAddr) {
    let server = HttpServer::bind(test_engine(2), options).expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

/// 64 concurrent requests over 8 distinct circuits: every response is
/// 2xx, and every body is byte-identical to what the in-process engine
/// returns for the same request.
#[test]
fn concurrent_load_is_all_2xx_and_bitwise_identical_to_in_process() {
    let (server, addr) = boot(ServerOptions::default());

    // Pre-warm the server's cache with the 8 distinct circuits, one
    // sequential request each. Without this, which of the concurrent
    // requests below is the cache miss for its circuit would be a race,
    // and the `cache_hit` field in the body would be nondeterministic.
    for circuit in 0..8 {
        let body = counter_aiger(circuit);
        let warm = exchange(
            addr,
            "POST",
            &format!("/v1/embed?id={}", 1000 + circuit),
            body.as_bytes(),
        );
        assert_eq!(warm.status, 200, "warm-up {circuit}: {}", warm.body);
    }

    // Expected bodies from a second engine with identical weights, its
    // cache warmed the same way: every measured response is a hit.
    let reference = test_engine(1);
    let expected: Vec<String> = (0..72)
        .map(|ticket| {
            let aig = parse_aiger(&counter_aiger(ticket % 8)).expect("valid AIGER");
            let workload = Workload::uniform(aig.num_pis(), 0.5);
            let response = reference
                .serve_batch(vec![ServeRequest {
                    id: if ticket < 8 {
                        1000 + ticket as u64
                    } else {
                        ticket as u64 - 8
                    },
                    aig,
                    workload,
                    init_seed: 0,
                }])
                .pop()
                .expect("one response");
            response_to_json(&response, false)
        })
        .skip(8)
        .collect();
    let expected = Arc::new(expected);

    let handles: Vec<_> = (0..64)
        .map(|ticket| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let body = counter_aiger(ticket % 8);
                let response = exchange(
                    addr,
                    "POST",
                    &format!("/v1/embed?id={ticket}"),
                    body.as_bytes(),
                );
                assert_eq!(response.status, 200, "ticket {ticket}: {}", response.body);
                assert_eq!(
                    response.body, expected[ticket],
                    "ticket {ticket} diverges from the in-process engine"
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // The metrics endpoint reflects the load and honours its contract:
    // the cache hit rate parses as a float.
    let metrics = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let hit_ratio: f64 = metrics
        .body
        .lines()
        .find_map(|line| line.strip_prefix("deepseq_cache_hit_ratio "))
        .expect("hit ratio present")
        .trim()
        .parse()
        .expect("hit ratio parses as f64");
    // 8 distinct circuits over 8 warm-up + 64 load requests: 64 hits.
    assert!(hit_ratio >= 0.8, "hit ratio {hit_ratio}");
    for required in [
        "deepseq_requests_total{endpoint=\"embed\"} 72",
        "deepseq_responses_total{class=\"2xx\"} 72",
        // 72 embed connections + this metrics scrape's own connection.
        "deepseq_connections_total 73",
        "deepseq_http_request_duration_seconds_bucket{le=\"+Inf\"} 72",
        "deepseq_engine_duration_seconds_count 72",
        "deepseq_in_flight 0",
        "deepseq_config_warnings_total",
    ] {
        assert!(
            metrics.body.lines().any(|line| line.starts_with(required)),
            "`{required}` missing from:\n{}",
            metrics.body
        );
    }
    // Beyond the spot checks: the whole payload must be well-formed
    // Prometheus exposition with internally consistent histograms.
    assert_prometheus_contract(&metrics.body);

    let report = server.shutdown();
    assert_eq!(report.requests_served, 72);
    assert_eq!(report.connections_abandoned, 0);
}

/// Malformed requests get a JSON 400 (or 501 for unimplemented framing),
/// never a silently dropped connection.
#[test]
fn malformed_requests_get_json_errors_not_dropped_connections() {
    let (server, addr) = boot(ServerOptions {
        limits: deepseq_serve::HttpLimits {
            max_head_bytes: 1024,
            max_body_bytes: 2048,
        },
        ..ServerOptions::default()
    });

    // (payload, expected status) — all must produce a parseable HTTP
    // response with a JSON error body.
    let giant_body = format!(
        "POST /v1/embed HTTP/1.1\r\nContent-Length: 4096\r\n\r\n{}",
        "x".repeat(4096)
    );
    let giant_head = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "y".repeat(2000)
    );
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"not http at all\r\n\r\n".to_vec(), 400),
        (b"GET /healthz HTTP/0.9\r\n\r\n".to_vec(), 400),
        (
            b"POST /v1/embed HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(),
            400,
        ),
        (giant_body.into_bytes(), 400),
        (giant_head.into_bytes(), 400),
        (
            b"POST /v1/embed HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            501,
        ),
    ];
    for (payload, want) in cases {
        let raw = raw_exchange(addr, payload.clone());
        assert!(
            !raw.is_empty(),
            "connection dropped without a response for {:?}",
            String::from_utf8_lossy(&payload)
        );
        let response = util::parse_response(&raw);
        assert_eq!(
            response.status,
            want,
            "payload {:?}",
            String::from_utf8_lossy(&payload)
        );
        assert!(
            response.body.starts_with("{\"error\":"),
            "no JSON error body: {}",
            response.body
        );
    }

    // Invalid circuit payloads on a well-formed request: 400 + JSON.
    for body in [
        &b"aag 1 1\n"[..],
        b"this is not a netlist",
        b"\xff\xfe\x00",
        b"",
    ] {
        let response = exchange(addr, "POST", "/v1/embed", body);
        assert_eq!(response.status, 400, "body {body:?}");
        assert!(
            response.body.starts_with("{\"error\":"),
            "{}",
            response.body
        );
    }

    server.shutdown();
}

/// With one compute slot and no queue, a request arriving while another
/// is in flight is answered 429 immediately.
#[test]
fn full_admission_queue_answers_429() {
    // A 1-thread pool gives every connection its own OS thread (the
    // server's no-worker fallback), so the probe below is never stuck
    // behind the slow request's compute.
    let server = HttpServer::bind(
        test_engine(1),
        ServerOptions {
            max_inflight: 1,
            max_queue: 0,
            ..ServerOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let metrics = server.metrics();

    // A slow request: a big circuit (cache-cold) occupies the slot.
    let slow = std::thread::spawn(move || {
        let body = counter_aiger(600);
        exchange(addr, "POST", "/v1/embed?id=1", body.as_bytes())
    });

    // Wait (in-process) until the slow request holds the compute slot.
    let deadline = Instant::now() + Duration::from_secs(30);
    while metrics.in_flight.load(std::sync::atomic::Ordering::Relaxed) != 1 {
        assert!(Instant::now() < deadline, "slow request never admitted");
        std::thread::yield_now();
    }

    let rejected = exchange(addr, "POST", "/v1/embed?id=2", b"aag 0 0 0 0 0\n");
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    assert!(
        rejected.body.starts_with("{\"error\":"),
        "{}",
        rejected.body
    );
    assert_eq!(
        metrics
            .rejected_queue_full
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    let slow = slow.join().expect("slow client");
    assert_eq!(slow.status, 200, "{}", slow.body);
    server.shutdown();
}

/// A zero deadline expires while queued: 504 over the wire.
#[test]
fn expired_deadline_answers_504() {
    let (server, addr) = boot(ServerOptions::default());
    let body = counter_aiger(0);
    let response = exchange(addr, "POST", "/v1/embed?deadline_ms=0", body.as_bytes());
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(
        response.body.starts_with("{\"error\":"),
        "{}",
        response.body
    );
    server.shutdown();
}

/// A client that dribbles its body slower than the idle keep-alive window
/// must not be cut off: the idle timeout applies *between* requests, and
/// once the head is parsed the socket runs on the remaining per-request
/// deadline budget instead. The old code re-armed `idle_keepalive` for the
/// body read and killed slow uploads mid-request.
#[test]
fn slow_body_upload_survives_the_idle_keepalive_window() {
    let (server, addr) = boot(ServerOptions {
        idle_keepalive: Duration::from_millis(60),
        deadline: Duration::from_secs(10),
        ..ServerOptions::default()
    });
    use std::io::{Read, Write};
    let body = counter_aiger(0);
    let bytes = body.as_bytes();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let head = format!(
        "POST /v1/embed HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        bytes.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    let (first, rest) = bytes.split_at(bytes.len() / 2);
    stream.write_all(first).expect("send first half");
    stream.flush().expect("flush");
    // Several idle-keepalive windows pass with the body half-sent.
    std::thread::sleep(Duration::from_millis(200));
    stream.write_all(rest).expect("send second half");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let response = util::parse_response(&raw);
    assert_eq!(response.status, 200, "{}", response.body);
    server.shutdown();
}

/// Keep-alive: two requests over one connection, the second after the
/// first's full response.
#[test]
fn keep_alive_serves_sequential_requests() {
    let (server, addr) = boot(ServerOptions::default());
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    for round in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        // Read one response's worth: headers + small body. The server
        // answers with Content-Length, so read until the body is in.
        let mut collected = Vec::new();
        let mut buffer = [0u8; 1024];
        loop {
            let text = String::from_utf8_lossy(&collected).to_string();
            if let Some(at) = text.find("\r\n\r\n") {
                let need: usize = text
                    .lines()
                    .find_map(|line| {
                        line.to_ascii_lowercase()
                            .strip_prefix("content-length: ")
                            .and_then(|v| v.trim().parse().ok())
                    })
                    .expect("content-length header");
                if collected.len() >= at + 4 + need {
                    assert!(text.starts_with("HTTP/1.1 200"), "round {round}: {text}");
                    break;
                }
            }
            let n = stream.read(&mut buffer).expect("read");
            assert!(n > 0, "server closed a keep-alive connection early");
            collected.extend_from_slice(&buffer[..n]);
        }
    }
    server.shutdown();
}
