//! Graceful-drain property: shutting down with requests in flight
//! completes every admitted request and accepts zero new connections.

mod util;

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use deepseq_serve::{HttpServer, ServerOptions};

use util::{counter_aiger, exchange, test_engine};

#[test]
fn drain_completes_in_flight_requests_and_accepts_no_new_connections() {
    // One compute slot: of the four clients below, one computes and three
    // wait in the admission queue when the drain hits. The pool is wider
    // than the client count so every connection handler gets a worker.
    let server = HttpServer::bind(
        test_engine(6),
        ServerOptions {
            max_inflight: 1,
            max_queue: 8,
            ..ServerOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let metrics = server.metrics();

    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                // Distinct circuits: every request is cache-cold compute.
                let body = counter_aiger(100 + i);
                exchange(addr, "POST", &format!("/v1/embed?id={i}"), body.as_bytes())
            })
        })
        .collect();

    // Wait (in-process, no extra connections) until all four requests are
    // past the drain gate: one in flight, three queued.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let admitted =
            metrics.in_flight.load(Ordering::Relaxed) + metrics.queue_depth.load(Ordering::Relaxed);
        if admitted == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "requests never reached the admission gate (admitted {admitted})"
        );
        std::thread::yield_now();
    }

    server.request_drain();
    let report = server.shutdown();

    // Every admitted request completed successfully.
    for (i, client) in clients.into_iter().enumerate() {
        let response = client.join().expect("client thread");
        assert_eq!(response.status, 200, "client {i}: {}", response.body);
    }
    assert_eq!(report.requests_served, 4);
    assert_eq!(report.connections_abandoned, 0);
    // Exactly the four client connections were ever accepted…
    assert_eq!(metrics.connections_total.load(Ordering::Relaxed), 4);
    assert_eq!(metrics.connections_open.load(Ordering::Relaxed), 0);
    // …and the port no longer accepts connections at all.
    let refused = std::net::TcpStream::connect(addr);
    assert!(refused.is_err(), "listener still accepting after drain");
}

/// Shutdown returns promptly once the drained condition flips: every
/// input of the condition (connection close, admission release, deadline
/// expiry) pokes the drain condvar, so the waiter sleeps the full grace in
/// one wait instead of polling on a 100 ms timer. An idle keep-alive
/// connection pins the server un-drained for 300 ms; once the client
/// closes it, shutdown must return within a few milliseconds — far under
/// the old polling cap, which added up to 100 ms of pure latency here.
#[test]
fn shutdown_returns_promptly_after_the_last_connection_closes() {
    let server = HttpServer::bind(test_engine(2), ServerOptions::default()).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics();

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    while metrics.connections_open.load(Ordering::Relaxed) != 1 {
        assert!(Instant::now() < deadline, "connection never registered");
        std::thread::yield_now();
    }

    let closed_at = std::sync::Arc::new(std::sync::Mutex::new(None));
    let closer = {
        let closed_at = std::sync::Arc::clone(&closed_at);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            *closed_at.lock().expect("closed_at") = Some(Instant::now());
            drop(stream);
        })
    };
    let report = server.shutdown();
    let returned = Instant::now();
    closer.join().expect("closer thread");

    assert_eq!(report.connections_abandoned, 0);
    let closed_at = closed_at
        .lock()
        .expect("closed_at")
        .expect("close recorded");
    let lag = returned.duration_since(closed_at);
    assert!(
        lag < Duration::from_millis(60),
        "shutdown lagged the connection close by {lag:?}"
    );
}

/// A drain with nothing in flight shuts down promptly and cleanly.
#[test]
fn idle_drain_is_immediate() {
    let server = HttpServer::bind(test_engine(1), ServerOptions::default()).expect("bind");
    let addr = server.local_addr();
    let health = exchange(addr, "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    let started = Instant::now();
    let report = server.shutdown();
    assert_eq!(report.requests_served, 0);
    assert_eq!(report.connections_abandoned, 0);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle drain took {:?}",
        started.elapsed()
    );
    assert!(std::net::TcpStream::connect(addr).is_err());
}
