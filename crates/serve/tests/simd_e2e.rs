//! End-to-end fast mode: this binary opts into `DEEPSEQ_KERNEL=simd`
//! before any kernel dispatch and pins the serving-side half of the
//! two-mode numerics contract:
//!
//! * the selection surface routes serving (and only serving) onto the
//!   fused kernels — `Kernel::for_serve()` honors `simd`, the training
//!   default `Kernel::global()` refuses it;
//! * a full `InferenceModel` forward pass stays within the documented
//!   relative-error bound (`util::FAST_MODE_FORWARD_EPS`) of the tape
//!   path, which keeps running the bitwise reference kernels in the same
//!   process;
//! * the threaded engine returns bitwise-identical predictions to an
//!   in-process tape-free forward — fast mode is self-deterministic, so
//!   crossing the engine boundary (own pool, own workspace) may not
//!   change a single bit.
//!
//! The contract holds with or without AVX2 (the portable fused fallback
//! is bit-identical), so nothing here skips on feature detection.

mod util;

use std::sync::Once;

use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_nn::Kernel;
use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest, Workspace};
use deepseq_sim::Workload;

/// Flip this process into fast mode before the first kernel dispatch
/// caches `DEEPSEQ_KERNEL`. Every test calls this first; tests sharing
/// the binary makes the setting process-wide, which is exactly the
/// deployment shape being modeled.
fn enable_fast_mode() {
    static INIT: Once = Once::new();
    INIT.call_once(|| std::env::set_var("DEEPSEQ_KERNEL", "simd"));
    assert!(
        Kernel::fast_mode(),
        "DEEPSEQ_KERNEL=simd was set too late: the kernel choice was already cached"
    );
}

fn small_config() -> DeepSeqConfig {
    DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    }
}

#[test]
fn fast_mode_selection_surface() {
    enable_fast_mode();
    // Serving honors fast mode; shape-dispatch resolves to the fused
    // kernels for real product sizes and keeps tiny products on naive.
    assert_eq!(Kernel::for_serve(), Kernel::Simd);
    assert_eq!(Kernel::Auto.resolve(256, 256, 64), Kernel::Simd);
    assert_eq!(Kernel::Simd.resolve(2, 2, 2), Kernel::Naive);
    assert!(
        !Kernel::Auto.is_bitwise(),
        "Auto must report fast-mode numerics"
    );
    // Training refuses fast mode: the tape default stays on the bitwise
    // reference kernel no matter what the environment says.
    assert_eq!(Kernel::global(), Kernel::Naive);
}

#[test]
fn forward_stays_within_documented_bound_of_tape_path() {
    enable_fast_mode();
    let config = small_config();
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_model(&model).unwrap();
    let mut ws = Workspace::new(); // serving default → fused kernels
    for index in 0..4 {
        let aig = util::counter_aig(index);
        let graph = CircuitGraph::build(&aig);
        let h0 = initial_states(
            &aig,
            &Workload::uniform(aig.num_pis(), 0.4),
            8,
            index as u64,
        );
        let tape = model.predict(&graph, &h0); // tape path → bitwise kernels
        let free = frozen.run(&graph, &h0, &mut ws);
        let ctx = format!("counter{index}");
        util::assert_matrices_match(&free.predictions.tr, &tape.tr, &format!("{ctx} tr"));
        util::assert_matrices_match(&free.predictions.lg, &tape.lg, &format!("{ctx} lg"));
        let emb_tape = model.embed_graph(&graph, &h0);
        util::assert_matrices_match(&free.embedding, &emb_tape, &format!("{ctx} embedding"));
    }
}

#[test]
fn engine_matches_in_process_forward_bitwise() {
    enable_fast_mode();
    let config = small_config();
    let model = DeepSeq::new(config);
    // Two frozen models from the same deterministic build: identical bits.
    let engine = Engine::new(
        InferenceModel::from_model(&model).unwrap(),
        EngineOptions {
            workers: 3,
            cache_capacity: 8,
            ..EngineOptions::default()
        },
    );
    let frozen = InferenceModel::from_model(&model).unwrap();
    let requests: Vec<ServeRequest> = (0..3)
        .map(|i| {
            let aig = util::counter_aig(i);
            let workload = Workload::uniform(aig.num_pis(), 0.5);
            ServeRequest {
                id: i as u64,
                aig,
                workload,
                init_seed: 1,
            }
        })
        .collect();
    let responses = engine.serve_batch(requests);
    let mut ws = Workspace::new();
    for response in &responses {
        let aig = util::counter_aig(response.id as usize);
        let graph = CircuitGraph::build(&aig);
        let h0 = initial_states(&aig, &Workload::uniform(aig.num_pis(), 0.5), 8, 1);
        let expected = frozen.run(&graph, &h0, &mut ws).predictions;
        let served = response.result.as_ref().expect("valid circuits serve");
        // Bitwise, not bounded: both sides run fast mode, and fast mode
        // is self-deterministic across pools, workspaces and runs.
        assert_eq!(
            served.data.predictions, expected,
            "engine and in-process fast-mode forwards diverged on request {}",
            response.id
        );
    }
}
