//! Property tests of the serving subsystem: the content address must be
//! blind to node renumbering (that is what makes it *content* addressing),
//! the threaded engine must return exactly what a direct forward pass
//! returns, and the level-parallel forward pass must be bitwise identical
//! at every thread count.

use std::collections::HashMap;
use std::sync::Arc;

use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_netlist::{AigNode, NodeId, SeqAig};
use deepseq_nn::{Kernel, Pool};
use deepseq_serve::{CacheKey, Engine, EngineOptions, InferenceModel, ServeRequest, Workspace};
use deepseq_sim::PiStimulus;
use deepseq_sim::Workload;
use proptest::prelude::*;

mod util;

/// Strategy: a small random sequential AIG (same recipe as the netlist
/// crate's property tests).
fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..6, 0usize..5, 0usize..30, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                let a = NodeId(next(len) as u32);
                aig.add_not(a);
            } else {
                let a = NodeId(next(len) as u32);
                let b = NodeId(next(len) as u32);
                aig.add_and(a, b);
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            let d = NodeId(next(len) as u32);
            aig.connect_ff(ff, d).expect("ff connect");
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

/// Strategy: a *wide* random sequential AIG — the first gate wave draws
/// fanins from the sources only, so one level holds dozens of nodes and the
/// level-parallel path genuinely chunks it (MIN_NODES_PER_CHUNK is 16).
fn arb_wide_aig() -> impl Strategy<Value = SeqAig> {
    (3usize..6, 1usize..4, 60usize..140, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("wide");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        let sources = aig.len();
        for g in 0..n_gate {
            // First two thirds: fanins from the sources only (one wide
            // level); the rest from anywhere, for depth.
            let bound = if g < n_gate * 2 / 3 {
                sources
            } else {
                aig.len()
            };
            if next(4) == 0 {
                aig.add_not(NodeId(next(bound) as u32));
            } else {
                let a = NodeId(next(bound) as u32);
                let b = NodeId(next(bound) as u32);
                aig.add_and(a, b);
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            let d = NodeId(next(len) as u32);
            aig.connect_ff(ff, d).expect("ff connect");
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

/// A circuit of self-contained blocks (each: one PI, one FF, four gates
/// drawing fanins only from the block) — every block is exactly one
/// weakly-connected component, so a K-block circuit partitions into K
/// fanin cones for the cone memo.
fn multi_block_aig(seeds: &[u64]) -> SeqAig {
    let mut aig = SeqAig::new("blocks");
    for (b, &seed) in seeds.iter().enumerate() {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let pi = aig.add_pi(format!("b{b}pi"));
        let ff = aig.add_ff(format!("b{b}ff"), next(2) == 1);
        let mut nodes = vec![pi, ff];
        for _ in 0..4 {
            let a = nodes[next(nodes.len())];
            let c = nodes[next(nodes.len())];
            nodes.push(if next(3) == 0 {
                aig.add_not(a)
            } else {
                aig.add_and(a, c)
            });
        }
        aig.connect_ff(ff, *nodes.last().unwrap())
            .expect("ff connect");
    }
    aig
}

/// Random valid topological renumbering (mirror of the netlist property
/// helper; kept local so the crates' tests stay self-contained).
fn renumber(aig: &SeqAig, seed: u64) -> SeqAig {
    let n = aig.len();
    let mut state = seed | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
    };
    let mut out = SeqAig::new(aig.name());
    let mut mapped: Vec<Option<NodeId>> = vec![None; n];
    let mut remaining: Vec<NodeId> = aig.iter().map(|(id, _)| id).collect();
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, id)| match *aig.node(**id) {
                AigNode::Pi | AigNode::Ff { .. } => true,
                AigNode::And(a, b) => mapped[a.index()].is_some() && mapped[b.index()].is_some(),
                AigNode::Not(a) => mapped[a.index()].is_some(),
            })
            .map(|(i, _)| i)
            .collect();
        let pick = ready[next(ready.len())];
        let id = remaining.swap_remove(pick);
        let new_id = match *aig.node(id) {
            AigNode::Pi => out.add_pi(aig.node_name(id).unwrap_or("pi")),
            AigNode::Ff { init, .. } => out.add_ff(aig.node_name(id).unwrap_or("ff"), init),
            AigNode::And(a, b) => {
                out.add_and(mapped[a.index()].unwrap(), mapped[b.index()].unwrap())
            }
            AigNode::Not(a) => out.add_not(mapped[a.index()].unwrap()),
        };
        mapped[id.index()] = Some(new_id);
    }
    for (id, node) in aig.iter() {
        if let AigNode::Ff { d: Some(d), .. } = *node {
            out.connect_ff(mapped[id.index()].unwrap(), mapped[d.index()].unwrap())
                .expect("renumbered FF connect");
        }
    }
    for (node, name) in aig.outputs() {
        out.set_output(mapped[node.index()].unwrap(), name.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_key_invariant_under_renumbering(aig in arb_seq_aig(), perm_seed in any::<u64>(), seed in any::<u64>()) {
        // Give every PI a distinct stimulus keyed by its name...
        let stim_of = |name: &str| {
            let salt = name.bytes().map(|b| b as u64).sum::<u64>() % 97;
            PiStimulus::independent(0.01 + salt as f64 / 100.0)
        };
        let workload = Workload::new(
            aig.pis().iter().map(|&pi| stim_of(aig.node_name(pi).unwrap())).collect(),
        );
        let renumbered = renumber(&aig, perm_seed);
        // ...and rebuild the workload in the renumbered circuit's PI order.
        let workload2 = Workload::new(
            renumbered.pis().iter().map(|&pi| stim_of(renumbered.node_name(pi).unwrap())).collect(),
        );
        prop_assert_eq!(
            CacheKey::for_request(&aig, &workload, seed),
            CacheKey::for_request(&renumbered, &workload2, seed),
            "renumbering broke the content address"
        );
    }

    #[test]
    fn inference_bitwise_identical_across_thread_counts(aig in arb_wide_aig(), seed in any::<u64>()) {
        // The chunk boundary only decides *which* scratch a node's update
        // runs in, never the arithmetic: predictions and embedding must be
        // bitwise equal across pools of 1, 2, 4 and 7 threads, for every
        // kernel (including the serve-default auto policy, and including
        // `Simd` — fast mode changes which bits, never their dependence on
        // thread count).
        let config = DeepSeqConfig { hidden_dim: 16, iterations: 2, ..DeepSeqConfig::default() };
        let model = DeepSeq::new(config);
        let frozen = InferenceModel::from_model(&model).unwrap();
        let graph = CircuitGraph::build(&aig);
        let h0 = initial_states(&aig, &Workload::uniform(aig.num_pis(), 0.5), 16, seed);
        for kernel in [Kernel::Auto, Kernel::Blocked, Kernel::Simd] {
            let mut ws = Workspace::with_pool(kernel, Arc::new(Pool::new(1)));
            let reference = frozen.run(&graph, &h0, &mut ws);
            for threads in [2usize, 4, 7] {
                let mut ws = Workspace::with_pool(kernel, Arc::new(Pool::new(threads)));
                let got = frozen.run(&graph, &h0, &mut ws);
                for (tag, got_m, want_m) in [
                    ("tr", &got.predictions.tr, &reference.predictions.tr),
                    ("lg", &got.predictions.lg, &reference.predictions.lg),
                    ("embedding", &got.embedding, &reference.embedding),
                ] {
                    prop_assert_eq!(got_m.shape(), want_m.shape());
                    for (i, (x, y)) in got_m.data().iter().zip(want_m.data()).enumerate() {
                        prop_assert_eq!(
                            x.to_bits(), y.to_bits(),
                            "{} {} t{} elem {}: {} vs {}",
                            tag, kernel.name(), threads, i, x, y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_matches_direct_forward(aigs in proptest::collection::vec(arb_seq_aig(), 1..4), workers in 1usize..4) {
        let config = DeepSeqConfig { hidden_dim: 6, iterations: 2, ..DeepSeqConfig::default() };
        let model = DeepSeq::new(config);
        let frozen = InferenceModel::from_model(&model).unwrap();
        let engine = Engine::new(frozen, EngineOptions { workers, cache_capacity: 8,
                                                         ..EngineOptions::default() });

        let requests: Vec<ServeRequest> = aigs.iter().enumerate().map(|(i, aig)| ServeRequest {
            id: i as u64,
            aig: aig.clone(),
            workload: Workload::uniform(aig.num_pis(), 0.5),
            init_seed: 1,
        }).collect();
        let responses = engine.serve_batch(requests);

        let mut expected = HashMap::new();
        for (i, aig) in aigs.iter().enumerate() {
            let graph = CircuitGraph::build(aig);
            let h0 = initial_states(aig, &Workload::uniform(aig.num_pis(), 0.5), 6, 1);
            expected.insert(i as u64, model.predict(&graph, &h0));
        }
        // Two-mode-aware comparison: bitwise against the tape path in the
        // default mode; within the documented forward bound under
        // `DEEPSEQ_KERNEL=simd`, where the engine runs fused kernels but
        // the tape path stays on the reference loops.
        for response in &responses {
            let served = response.result.as_ref().expect("valid circuits serve");
            let want = &expected[&response.id];
            for (tag, got_m, want_m) in [
                ("tr", &served.data.predictions.tr, &want.tr),
                ("lg", &served.data.predictions.lg, &want.lg),
            ] {
                let res = util::matrices_match(got_m, want_m, tag);
                prop_assert!(
                    res.is_ok(),
                    "engine diverged from the tape path on request {}: {:?}",
                    response.id, res
                );
            }
        }
    }

    #[test]
    fn cone_reuse_is_bitwise_identical_to_full_recompute(
        seeds in proptest::collection::vec(any::<u64>(), 2..5),
        edit in any::<u64>(),
    ) {
        let config = DeepSeqConfig { hidden_dim: 8, iterations: 2, ..DeepSeqConfig::default() };
        let model = DeepSeq::new(config);
        let base = multi_block_aig(&seeds);
        // Near-duplicate: rebuild with only the LAST block's seed changed, so
        // every earlier block keeps its node ids — and, because the initial
        // states are drawn row-sequentially from a seeded RNG, its exact h0
        // rows. Those prefix cones must all hit the memo.
        let mut edited_seeds = seeds.clone();
        *edited_seeds.last_mut().unwrap() ^= edit | 1;
        let edited = multi_block_aig(&edited_seeds);
        let request = |aig: &SeqAig, id: u64| ServeRequest {
            id,
            aig: aig.clone(),
            workload: Workload::uniform(aig.num_pis(), 0.5),
            init_seed: 3,
        };
        // The memo must be bitwise-invisible at every thread count: a
        // memo-warm answer for the edit equals a cold full recompute.
        // cache_capacity: 0 disables the exact-match cache so the served
        // result is forced through the cone path.
        for threads in [1usize, 4] {
            let pool = Arc::new(Pool::new(threads));
            let memoed = Engine::with_pool(
                InferenceModel::from_model(&model).unwrap(),
                EngineOptions { workers: 2, cache_capacity: 0, cone_capacity: 64 },
                Arc::clone(&pool),
            );
            let plain = Engine::with_pool(
                InferenceModel::from_model(&model).unwrap(),
                EngineOptions { workers: 2, cache_capacity: 0, cone_capacity: 0 },
                pool,
            );
            memoed.serve_batch(vec![request(&base, 0)]); // warm the memo
            let warm = memoed
                .serve_batch(vec![request(&edited, 1)])
                .pop().unwrap().result.expect("edited circuit serves");
            let cold = plain
                .serve_batch(vec![request(&edited, 2)])
                .pop().unwrap().result.expect("edited circuit serves");
            prop_assert!(
                warm.cones_reused >= seeds.len() - 1,
                "expected at least {} cones reused, got {}",
                seeds.len() - 1, warm.cones_reused
            );
            for (tag, got_m, want_m) in [
                ("tr", &warm.data.predictions.tr, &cold.data.predictions.tr),
                ("lg", &warm.data.predictions.lg, &cold.data.predictions.lg),
                ("embedding", &warm.data.embedding, &cold.data.embedding),
            ] {
                prop_assert_eq!(got_m.shape(), want_m.shape());
                for (i, (x, y)) in got_m.data().iter().zip(want_m.data()).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "{} t{} elem {}: {} vs {}",
                        tag, threads, i, x, y
                    );
                }
            }
        }
    }
}
