//! Chaos suite: every named fault point armed at rate 1.0 under concurrent
//! load, holding the serving stack to its fault-tolerance contract:
//!
//! * no hung connections — every exchange completes or the socket closes;
//! * no non-JSON error bodies — internal failures answer typed 500/503
//!   JSON (`{"error":…}`), never a panic-torn connection;
//! * injected-fault and caught-panic counters match the failures observed
//!   at the HTTP edge;
//! * recovery — disarming restores full 200 service on the same server;
//! * determinism — with faults disarmed, predictions are bitwise-identical
//!   to a never-faulted engine (injection points cost one relaxed atomic
//!   load when disarmed and never perturb numerics when armed).
//!
//! Fault state is process-global (`deepseq_nn::fault`), so every test
//! serializes on [`CHAOS_LOCK`] and disarms via drop guard even when the
//! assertion itself panics. The arming seed comes from
//! `DEEPSEQ_CHAOS_SEED` (CI runs a small seed matrix); the injection
//! draws are thread-stable, so rate-1.0 behaviour is seed-independent and
//! lower rates stay reproducible per seed.

mod util;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_nn::fault::{self, FaultPoint, FaultSpec};
use deepseq_serve::{panics_caught, HttpServer, ServerOptions};
use util::{assert_matrices_match, counter_aiger, exchange, test_engine};

/// Serializes the tests in this binary: faults are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Arms `spec` for the guard's lifetime; disarms on drop (panic included).
struct Armed {
    _lock: MutexGuard<'static, ()>,
}

impl Armed {
    fn no_fault() -> Armed {
        let lock = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::set_armed(None);
        Armed { _lock: lock }
    }

    fn new(spec: &str) -> Armed {
        let lock = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = FaultSpec::parse(spec).expect("valid fault spec");
        fault::set_armed(Some(spec));
        Armed { _lock: lock }
    }

    /// Re-arms (or disarms with `None`) without releasing the suite lock.
    fn rearm(&self, spec: Option<&str>) {
        fault::set_armed(spec.map(|s| FaultSpec::parse(s).expect("valid fault spec")));
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::set_armed(None);
    }
}

/// The CI seed-matrix knob; rate-1.0 tests pass under every seed.
fn chaos_seed() -> u64 {
    std::env::var("DEEPSEQ_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(1)
}

fn boot() -> HttpServer {
    HttpServer::bind(
        test_engine(4),
        ServerOptions {
            max_queue: 256,
            ..ServerOptions::default()
        },
    )
    .expect("bind chaos server")
}

/// Fires `total` embed requests from `threads` client threads and returns
/// the observed status counts as (2xx, 5xx, other).
fn fire_load(server: &HttpServer, threads: usize, total: usize) -> (usize, usize, usize) {
    let addr = server.local_addr();
    let ok = Arc::new(AtomicUsize::new(0));
    let internal = Arc::new(AtomicUsize::new(0));
    let other = Arc::new(AtomicUsize::new(0));
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let (ok, internal, other, next) = (
                Arc::clone(&ok),
                Arc::clone(&internal),
                Arc::clone(&other),
                Arc::clone(&next),
            );
            std::thread::spawn(move || loop {
                let ticket = next.fetch_add(1, Ordering::Relaxed);
                if ticket >= total {
                    return;
                }
                let circuit = counter_aiger(ticket % 4);
                let response = exchange(
                    addr,
                    "POST",
                    &format!("/v1/embed?id={ticket}&summary=1"),
                    circuit.as_bytes(),
                );
                // Every response — success or failure — must be JSON.
                assert!(
                    response.body.starts_with('{'),
                    "non-JSON body at status {}: {:.200}",
                    response.status,
                    response.body
                );
                match response.status {
                    200..=299 => ok.fetch_add(1, Ordering::Relaxed),
                    500..=599 => internal.fetch_add(1, Ordering::Relaxed),
                    _ => other.fetch_add(1, Ordering::Relaxed),
                };
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("load thread");
    }
    (
        ok.load(Ordering::Relaxed),
        internal.load(Ordering::Relaxed),
        other.load(Ordering::Relaxed),
    )
}

#[test]
fn task_panic_under_load_answers_typed_500s_and_recovers() {
    let armed = Armed::new(&format!("task_panic:1.0:{}", chaos_seed()));
    let server = boot();
    let panics_before = panics_caught();
    let injected_before = fault::injected_count(FaultPoint::TaskPanic);

    let (ok, internal, other) = fire_load(&server, 16, 64);
    assert_eq!(ok, 0, "no request should survive rate-1.0 task_panic");
    assert_eq!(internal, 64, "every request answers a typed 500");
    assert_eq!(other, 0);
    // Counters match the failures seen at the edge.
    assert_eq!(panics_caught() - panics_before, 64);
    assert_eq!(
        fault::injected_count(FaultPoint::TaskPanic) - injected_before,
        64
    );
    // The error bodies carry the typed engine error.
    let response = exchange(
        server.local_addr(),
        "POST",
        "/v1/embed?summary=1",
        counter_aiger(0).as_bytes(),
    );
    assert_eq!(response.status, 500);
    assert!(
        response.body.contains("\"error\":") && response.body.contains("panic"),
        "{}",
        response.body
    );

    // Recovery: disarm on the same live server, full service returns.
    armed.rearm(None);
    let (ok, internal, other) = fire_load(&server, 16, 32);
    assert_eq!((ok, internal, other), (32, 0, 0));

    // The /metrics exposition carries both reliability counters.
    let metrics = exchange(server.local_addr(), "GET", "/metrics", b"");
    util::assert_prometheus_contract(&metrics.body);
    let needle_value = |needle: &str| -> f64 {
        metrics
            .body
            .lines()
            .find_map(|line| line.strip_prefix(needle))
            .unwrap_or_else(|| panic!("{needle} missing:\n{}", metrics.body))
            .trim()
            .parse()
            .expect("numeric metric")
    };
    assert!(needle_value("deepseq_panics_caught_total ") >= 65.0);
    assert!(needle_value("deepseq_faults_injected_total{point=\"task_panic\"} ") >= 65.0);

    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0, "clean drain after chaos");
}

#[test]
fn engine_reply_drop_answers_typed_500s_and_recovers() {
    let armed = Armed::new(&format!("engine_reply_drop:1.0:{}", chaos_seed()));
    let server = boot();
    let injected_before = fault::injected_count(FaultPoint::EngineReplyDrop);

    let (ok, internal, other) = fire_load(&server, 16, 48);
    assert_eq!((ok, internal, other), (0, 48, 0));
    assert_eq!(
        fault::injected_count(FaultPoint::EngineReplyDrop) - injected_before,
        48
    );
    let response = exchange(
        server.local_addr(),
        "POST",
        "/v1/embed?summary=1",
        counter_aiger(1).as_bytes(),
    );
    assert_eq!(response.status, 500);
    assert!(
        response.body.contains("reply"),
        "typed ReplyDropped error expected: {}",
        response.body
    );

    armed.rearm(None);
    let (ok, internal, other) = fire_load(&server, 16, 32);
    assert_eq!((ok, internal, other), (32, 0, 0));
    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0);
}

#[test]
fn slow_stage_faults_delay_but_serve_correctly() {
    let armed = Armed::new(&format!("slow_stage@forward:1.0:{}", chaos_seed()));
    let server = boot();

    let started = Instant::now();
    let (ok, internal, other) = fire_load(&server, 16, 32);
    assert_eq!((ok, internal, other), (32, 0, 0));
    // Each forward pass sleeps ≥ 25ms while armed; with 4 compute slots and
    // 32 cache-missing-or-slow requests the wall clock shows it.
    assert!(
        started.elapsed() >= Duration::from_millis(25),
        "slow_stage produced no visible delay"
    );
    assert!(fault::injected_count(FaultPoint::SlowStage) > 0);

    armed.rearm(None);
    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0);
}

#[test]
fn cache_evict_fault_forces_recompute_every_time() {
    let armed = Armed::no_fault();
    let server = boot();
    let addr = server.local_addr();
    let circuit = counter_aiger(2);

    // Warm the cache, prove the hit path works disarmed.
    let warm = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert_eq!(warm.status, 200);
    let hit = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert!(hit.body.contains("\"cache_hit\":true"), "{}", hit.body);

    // Armed: the entry is evicted before every lookup — served, but always
    // recomputed.
    armed.rearm(Some(&format!("cache_evict:1.0:{}", chaos_seed())));
    for _ in 0..3 {
        let response = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
        assert_eq!(response.status, 200);
        assert!(
            response.body.contains("\"cache_hit\":false"),
            "{}",
            response.body
        );
    }
    assert!(fault::injected_count(FaultPoint::CacheEvict) >= 3);

    // Disarmed again: the recomputed entry sticks and hits.
    armed.rearm(None);
    let warm = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert_eq!(warm.status, 200);
    let hit = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert!(hit.body.contains("\"cache_hit\":true"), "{}", hit.body);

    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0);
}

#[test]
fn socket_write_fault_drops_connections_without_killing_the_server() {
    let armed = Armed::new(&format!("socket_write:1.0:{}", chaos_seed()));
    let server = boot();
    let addr = server.local_addr();

    // Armed at 1.0, no response bytes ever leave the server: the write is
    // torn down as a peer reset. The contract is at the server side — no
    // wedged handler, no leaked admission slot, a clean drain afterwards.
    let circuit = counter_aiger(3);
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let body = circuit.clone();
            std::thread::spawn(move || {
                let raw = util::raw_exchange(
                    addr,
                    format!(
                        "POST /v1/embed?summary=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                         Content-Length: {}\r\n\r\n",
                        body.len()
                    )
                    .into_bytes()
                    .into_iter()
                    .chain(body.bytes())
                    .collect(),
                );
                assert!(
                    raw.is_empty(),
                    "injected socket_write fault leaked {} response bytes",
                    raw.len()
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert!(fault::injected_count(FaultPoint::SocketWrite) >= 8);

    // Recovery on the same server: responses flow again.
    armed.rearm(None);
    let response = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert_eq!(response.status, 200);

    let report = server.shutdown();
    assert_eq!(
        report.connections_abandoned, 0,
        "socket faults leaked connections"
    );
}

#[test]
fn checkpoint_read_fault_degrades_reload_and_recovery_restores_service() {
    let armed = Armed::no_fault();
    let dir = std::env::temp_dir().join(format!("deepseq-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("chaos-model.dsqm");
    let model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    });
    std::fs::write(&path, model.save_binary()).expect("write checkpoint");

    let server = HttpServer::bind(
        test_engine(2),
        ServerOptions {
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let circuit = counter_aiger(0);

    // Warm the cache while healthy.
    assert_eq!(
        exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes()).status,
        200
    );

    // Injected checkpoint corruption: the reload fails with a typed error
    // and the server degrades instead of dying.
    armed.rearm(Some(&format!("checkpoint_read:1.0:{}", chaos_seed())));
    let reload = exchange(addr, "POST", "/admin/reload", b"");
    assert_eq!(reload.status, 500);
    assert!(
        reload.body.starts_with("{\"error\":") && reload.body.contains("checkpoint"),
        "{}",
        reload.body
    );
    assert!(fault::injected_count(FaultPoint::CheckpointRead) >= 1);
    assert!(server.degraded());

    // Degraded: the readiness probe flips, cache hits still flow, misses
    // shed with 503 + Retry-After rather than computing.
    assert_eq!(exchange(addr, "GET", "/healthz?ready=1", b"").status, 503);
    assert_eq!(exchange(addr, "GET", "/healthz", b"").status, 200);
    let hit = exchange(addr, "POST", "/v1/embed?summary=1", circuit.as_bytes());
    assert_eq!(hit.status, 200);
    assert!(hit.body.contains("\"cache_hit\":true"), "{}", hit.body);
    let miss = exchange(
        addr,
        "POST",
        "/v1/embed?summary=1&seed=77",
        circuit.as_bytes(),
    );
    assert_eq!(miss.status, 503);
    assert!(miss.body.starts_with("{\"error\":"), "{}", miss.body);

    // Disarm and reload again: the checkpoint reads clean, degraded mode
    // clears, and shed traffic computes again.
    armed.rearm(None);
    assert_eq!(exchange(addr, "POST", "/admin/reload", b"").status, 200);
    assert!(!server.degraded());
    assert_eq!(exchange(addr, "GET", "/healthz?ready=1", b"").status, 200);
    let served = exchange(
        addr,
        "POST",
        "/v1/embed?summary=1&seed=77",
        circuit.as_bytes(),
    );
    assert_eq!(served.status, 200);

    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One shard degraded while slow-stage faults fire: every request still
/// answers 200 via ring failover to the healthy shard, the readiness probe
/// stays up, the rerouted counter records the detour, and recovery restores
/// home-shard service on the same live server.
#[test]
fn one_shard_degraded_under_chaos_reroutes_without_shedding() {
    let armed = Armed::new(&format!("slow_stage@forward:1.0:{}", chaos_seed()));
    let server = HttpServer::bind(
        test_engine(4),
        ServerOptions {
            max_queue: 256,
            shards: 2,
            ..ServerOptions::default()
        },
    )
    .expect("bind sharded chaos server");
    let addr = server.local_addr();

    // Degrade the home shard of circuit 0 so at least a quarter of the
    // load below has to fail over.
    let home = server
        .router()
        .home(deepseq_netlist::structural_hash(&util::counter_aig(0)));
    let degrade = exchange(addr, "POST", &format!("/admin/degrade?shard={home}"), b"");
    assert_eq!(degrade.status, 200, "{}", degrade.body);

    let (ok, internal, other) = fire_load(&server, 16, 48);
    assert_eq!(
        (ok, internal, other),
        (48, 0, 0),
        "one healthy shard must absorb the full load"
    );
    assert!(fault::injected_count(FaultPoint::SlowStage) > 0);

    // Alive and ready: one degraded shard out of two is not an outage.
    assert_eq!(exchange(addr, "GET", "/healthz?ready=1", b"").status, 200);
    let health = exchange(addr, "GET", "/healthz", b"");
    assert!(
        health.body.contains("\"shards\":2") && health.body.contains("\"shards_degraded\":1"),
        "{}",
        health.body
    );

    // The detour shows up in the per-shard exposition.
    let metrics = exchange(addr, "GET", "/metrics", b"");
    util::assert_prometheus_contract(&metrics.body);
    assert!(
        metrics
            .body
            .lines()
            .any(|line| line.starts_with(&format!("deepseq_shard_degraded{{shard=\"{home}\"}} 1"))),
        "{}",
        metrics.body
    );
    let rerouted: u64 = metrics
        .body
        .lines()
        .filter_map(|line| line.strip_prefix("deepseq_shard_rerouted_total{shard="))
        .filter_map(|rest| rest.split("} ").nth(1))
        .filter_map(|value| value.trim().parse::<u64>().ok())
        .sum();
    assert!(
        rerouted >= 12,
        "expected ≥12 rerouted requests, saw {rerouted}"
    );

    // Recovery: clear the shard, disarm, full home-shard service returns.
    let clear = exchange(
        addr,
        "POST",
        &format!("/admin/degrade?mode=off&shard={home}"),
        b"",
    );
    assert_eq!(clear.status, 200, "{}", clear.body);
    armed.rearm(None);
    let (ok, internal, other) = fire_load(&server, 8, 16);
    assert_eq!((ok, internal, other), (16, 0, 0));

    let report = server.shutdown();
    assert_eq!(
        report.connections_abandoned, 0,
        "sharded chaos leaked connections"
    );
}

#[test]
fn disarmed_determinism_is_bitwise_against_a_never_faulted_engine() {
    let armed = Armed::no_fault();
    use deepseq_serve::ServeRequest;
    use deepseq_sim::Workload;

    let request = |id| {
        let aig = util::counter_aig(1);
        let workload = Workload::uniform(aig.num_pis(), 0.5);
        ServeRequest {
            id,
            aig,
            workload,
            init_seed: 0,
        }
    };

    // Reference: an engine that never saw an armed fault.
    let reference = test_engine(2)
        .serve_batch(vec![request(0)])
        .pop()
        .expect("one response");
    let reference = reference.result.expect("reference serves");

    // Same engine shape, but run through an armed episode (slow stages and
    // forced evictions at rate 1.0) before the comparison pass.
    let engine = test_engine(2);
    armed.rearm(Some(&format!("slow_stage@forward:1.0:{}", chaos_seed())));
    let during = engine
        .serve_batch(vec![request(1)])
        .pop()
        .expect("one response")
        .result
        .expect("slow but served");
    armed.rearm(Some(&format!("cache_evict:1.0:{}", chaos_seed())));
    let evicted = engine
        .serve_batch(vec![request(2)])
        .pop()
        .expect("one response")
        .result
        .expect("evicted but served");
    armed.rearm(None);
    let after = engine
        .serve_batch(vec![request(3)])
        .pop()
        .expect("one response")
        .result
        .expect("serves disarmed");

    // Faults never perturb numerics: armed or disarmed, every pass is
    // bitwise-identical to the never-faulted reference.
    for (label, served) in [
        ("armed-slow", &during),
        ("armed-evict", &evicted),
        ("disarmed", &after),
    ] {
        assert_matrices_match(
            &served.data.predictions.lg,
            &reference.data.predictions.lg,
            &format!("{label} lg predictions"),
        );
        assert_matrices_match(
            &served.data.predictions.tr,
            &reference.data.predictions.tr,
            &format!("{label} tr predictions"),
        );
        assert_matrices_match(
            &served.data.embedding,
            &reference.data.embedding,
            &format!("{label} embedding"),
        );
    }
}
