//! End-to-end tracing: a real request against a real server produces a
//! span tree covering the whole pipeline, the stage metrics fill in, and
//! the chrome://tracing export stays well-formed.
//!
//! Tracing state is process-global, so the whole enabled/disabled
//! sequence lives in ONE test function — parallel test threads must not
//! race `set_enabled`.

mod util;

use deepseq_nn::trace;
use deepseq_serve::{HttpServer, ServerOptions};

use util::{assert_prometheus_contract, counter_aiger, exchange, raw_exchange, test_engine};

/// Pulls a header value out of a raw HTTP response.
fn header(raw: &[u8], name: &str) -> Option<String> {
    let text = String::from_utf8_lossy(raw);
    text.split("\r\n\r\n").next()?.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name)
            .then(|| value.trim().to_string())
    })
}

#[test]
fn tracing_covers_the_pipeline_end_to_end() {
    let server = HttpServer::bind(test_engine(2), ServerOptions::default()).expect("bind");
    let addr = server.local_addr();

    // Disabled (the default): the debug endpoint refuses, requests carry
    // no trace id header.
    assert!(!trace::enabled(), "tracing must default to off");
    let refused = exchange(addr, "GET", "/debug/trace", b"");
    assert_eq!(refused.status, 404, "{}", refused.body);
    let body = counter_aiger(50);
    let raw = raw_exchange(
        addr,
        format!(
            "POST /v1/embed?id=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    );
    assert_eq!(util::parse_response(&raw).status, 200);
    assert!(header(&raw, "deepseq-trace-id").is_none());

    // Enabled: the same request is traced under a fresh request id.
    trace::set_enabled(true);
    let body = counter_aiger(51);
    let raw = raw_exchange(
        addr,
        format!(
            "POST /v1/embed?id=2 HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    );
    assert_eq!(util::parse_response(&raw).status, 200);
    let trace_id = header(&raw, "deepseq-trace-id").expect("traced response carries its id");
    let trace_id: u64 = trace_id.parse().expect("numeric trace id");
    assert!(trace_id > 0);

    // The span tree covers the pipeline: queue wait, cache lookup, the
    // per-level fan-out and the GEMM leaves, all under one request span.
    let tree = exchange(addr, "GET", &format!("/debug/trace?id={trace_id}"), b"");
    assert_eq!(tree.status, 200, "{}", tree.body);
    assert!(tree.body.starts_with(&format!("{{\"trace\":{trace_id},")));
    for kind in [
        "request",
        "parse",
        "queue_wait",
        "cache_lookup",
        "forward",
        "level_chunk",
        "gemm",
        "serialize",
    ] {
        assert!(
            tree.body.contains(&format!("\"kind\":\"{kind}\"")),
            "span tree misses {kind}:\n{}",
            tree.body
        );
    }
    // GEMM spans decode their packed dimensions.
    assert!(tree.body.contains("\"dims\":["), "{}", tree.body);

    // Unknown and malformed ids fail cleanly.
    assert_eq!(
        exchange(addr, "GET", "/debug/trace?id=99999999", b"").status,
        404
    );
    assert_eq!(
        exchange(addr, "GET", "/debug/trace?id=bogus", b"").status,
        400
    );

    // The id-less form is the per-stage latency summary.
    let summary = exchange(addr, "GET", "/debug/trace", b"");
    assert_eq!(summary.status, 200);
    assert!(summary.body.starts_with("{\"dropped_spans\":"));
    assert!(
        summary.body.contains("{\"stage\":\"gemm\","),
        "{}",
        summary.body
    );

    // The stage histograms feed /metrics, and the payload as a whole honours
    // the Prometheus exposition contract.
    let metrics = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    assert_prometheus_contract(&metrics.body);
    let gemm_count: f64 = metrics
        .body
        .lines()
        .find_map(|line| line.strip_prefix("deepseq_stage_seconds_count{stage=\"gemm\"} "))
        .expect("gemm stage count present")
        .trim()
        .parse()
        .expect("numeric");
    assert!(gemm_count > 0.0, "no gemm observations:\n{}", metrics.body);

    // The chrome://tracing export is structurally sound and includes the
    // spans recorded above.
    let profile = trace::chrome_trace_json();
    assert!(profile.starts_with("{\"traceEvents\":["), "{profile:.120}");
    assert!(
        profile.ends_with("]}"),
        "…{}",
        &profile[profile.len().saturating_sub(120)..]
    );
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"name\":\"gemm\"",
        "\"ts\":",
    ] {
        assert!(profile.contains(needle), "profile misses {needle}");
    }

    trace::set_enabled(false);
    server.shutdown();
}
