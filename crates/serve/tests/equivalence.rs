//! The acceptance gate of the serving subsystem: the tape-free forward pass
//! must produce predictions **bitwise equal** to `DeepSeq::forward` on the
//! same checkpoint — across every aggregator, every propagation scheme,
//! random circuits and the synthetic design suite. Under the opt-in fast
//! mode (`DEEPSEQ_KERNEL=simd`) the same suite runs with the
//! bounded-relative-error half of the two-mode numerics contract instead
//! (see `util::matrices_match`).

mod util;

use deepseq_core::encoding::initial_states;
use deepseq_core::{Aggregator, CircuitGraph, DeepSeq, DeepSeqConfig, PropagationScheme};
use deepseq_data::designs;
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_netlist::{lower_to_aig, SeqAig};
use deepseq_serve::{InferenceModel, Workspace};
use deepseq_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_equivalent(aig: &SeqAig, config: DeepSeqConfig, ws: &mut Workspace) {
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_model(&model).unwrap();
    let graph = CircuitGraph::build(aig);
    let workload = Workload::uniform(aig.num_pis(), 0.4);
    let h0 = initial_states(aig, &workload, config.hidden_dim, 7);
    let tape = model.predict(&graph, &h0);
    let free = frozen.run(&graph, &h0, ws).predictions;
    let ctx = format!("{} with {config:?}", aig.name());
    util::assert_matrices_match(&free.tr, &tape.tr, &format!("tr predictions on {ctx}"));
    util::assert_matrices_match(&free.lg, &tape.lg, &format!("lg predictions on {ctx}"));
    // The pooled embedding matches the tape-side readout too.
    let emb_tape = model.embed_graph(&graph, &h0);
    let emb_free = frozen.run(&graph, &h0, ws).embedding;
    util::assert_matrices_match(&emb_free, &emb_tape, &format!("embedding on {ctx}"));
}

#[test]
fn equivalent_on_random_circuits_across_all_configs() {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = CircuitSpec::default();
    let circuits: Vec<SeqAig> = (0..3)
        .map(|i| random_circuit(&format!("r{i}"), &spec, &mut rng))
        .collect();
    let mut ws = Workspace::new();
    for agg in [
        Aggregator::ConvSum,
        Aggregator::Attention,
        Aggregator::DualAttention,
    ] {
        for scheme in [
            PropagationScheme::DagConv,
            PropagationScheme::DagRec,
            PropagationScheme::Custom,
        ] {
            let config = DeepSeqConfig {
                hidden_dim: 8,
                iterations: 2,
                aggregator: agg,
                scheme,
                seed: 3,
            };
            for aig in &circuits {
                assert_equivalent(aig, config, &mut ws);
            }
        }
    }
}

#[test]
fn equivalent_on_synthetic_design_suite() {
    // Two of the six Table IV designs (the smaller ones keep test time
    // reasonable); the workspace is reused across designs on purpose —
    // buffer reuse across differently-sized circuits must not leak state.
    let mut ws = Workspace::new();
    let config = DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    };
    for netlist in [designs::ptc(), designs::rtcclock()] {
        let lowered = lower_to_aig(&netlist).expect("valid design");
        assert_equivalent(&lowered.aig, config, &mut ws);
    }
}

#[test]
fn equivalent_after_binary_checkpoint_roundtrip() {
    let mut rng = StdRng::seed_from_u64(5);
    let aig = random_circuit("ck", &CircuitSpec::default(), &mut rng);
    let config = DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    };
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_binary_checkpoint(&model.save_binary()).unwrap();
    let graph = CircuitGraph::build(&aig);
    let h0 = initial_states(&aig, &Workload::uniform(aig.num_pis(), 0.5), 8, 0);
    let tape = model.predict(&graph, &h0);
    let free = frozen.predict(&graph, &h0);
    util::assert_matrices_match(&free.tr, &tape.tr, "roundtripped tr predictions");
    util::assert_matrices_match(&free.lg, &tape.lg, "roundtripped lg predictions");
}

#[test]
fn workspace_reuse_is_deterministic() {
    // Serving the same request twice through one workspace gives identical
    // bits; interleaving an unrelated circuit in between must not matter.
    let mut rng = StdRng::seed_from_u64(9);
    let a = random_circuit("a", &CircuitSpec::default(), &mut rng);
    let b = random_circuit(
        "b",
        &CircuitSpec {
            num_gates: 60,
            ..CircuitSpec::default()
        },
        &mut rng,
    );
    let config = DeepSeqConfig {
        hidden_dim: 8,
        iterations: 2,
        ..DeepSeqConfig::default()
    };
    let frozen = InferenceModel::from_model(&DeepSeq::new(config)).unwrap();
    let ga = CircuitGraph::build(&a);
    let gb = CircuitGraph::build(&b);
    let ha = initial_states(&a, &Workload::uniform(a.num_pis(), 0.5), 8, 1);
    let hb = initial_states(&b, &Workload::uniform(b.num_pis(), 0.5), 8, 1);
    let mut ws = Workspace::new();
    let first = frozen.run(&ga, &ha, &mut ws).predictions;
    let _ = frozen.run(&gb, &hb, &mut ws);
    let second = frozen.run(&ga, &ha, &mut ws).predictions;
    assert_eq!(first, second);
}
