//! The HTTP/1.1 network front door of the serving engine.
//!
//! [`HttpServer::bind`] puts an [`Engine`] behind a `std::net::TcpListener`:
//! a dedicated accept thread hands each connection to the engine's shared
//! worker [`Pool`](deepseq_nn::Pool) (via `Pool::spawn`; on a 1-thread
//! pool, which has no workers, connections fall back to one thread each so
//! the accept loop never blocks behind a request). Connection handlers
//! speak the small HTTP slice of [`http`](crate::http), route to the
//! endpoints below, and record everything in a shared
//! [`Metrics`] registry.
//!
//! # Endpoints
//!
//! | Method + path | Purpose |
//! |---|---|
//! | `POST /v1/embed` | circuit text in (AIGER/`.bench`), prediction JSON out |
//! | `GET /healthz` | liveness (always 200); `?ready=1` readiness (503 while draining/degraded) |
//! | `GET /metrics` | Prometheus text exposition |
//! | `POST /admin/drain` | request graceful drain (loopback deployments) |
//! | `POST /admin/degrade` | enter (`?mode=on`, default) or leave (`?mode=off`) degraded mode |
//! | `POST /admin/reload` | re-read the startup checkpoint and swap it in |
//!
//! # Degraded mode
//!
//! A degraded server keeps serving **cache hits** (they are known-good
//! results) and sheds cache misses with `503` + `Retry-After` instead of
//! computing. It is entered three ways: explicitly via `/admin/degrade`,
//! automatically when `/admin/reload` fails (the old weights keep serving
//! hits, but no new compute runs on weights the operator tried and failed
//! to replace), and automatically under sustained admission saturation
//! (`ServerOptions::saturation_trip` consecutive 429s). `/healthz?ready=1`
//! reports `503` while degraded so load balancers route around the
//! instance; plain `/healthz` stays `200` so supervisors don't kill it.
//!
//! # Admission, backpressure, deadlines
//!
//! Embed requests pass a bounded admission gate before touching the
//! engine: at most `max_inflight` compute concurrently, at most
//! `max_queue` wait behind them. Overflow is answered `429` immediately —
//! the queue never grows without bound — and a request whose deadline
//! expires while it waits (or computes) is answered `504`. The gate is
//! what turns "millions of users" worth of open sockets into a bounded
//! amount of queued compute.
//!
//! # Graceful drain
//!
//! [`HttpServer::shutdown`] (or `POST /admin/drain`, or
//! [`HttpServer::request_drain`]) stops the accept loop, lets every
//! admitted request finish, answers `503` to requests arriving on
//! already-open connections, and closes those connections as they go
//! idle. `shutdown` returns once every connection closed (or the
//! `drain_grace` cap expired). In-flight work is never dropped — the
//! drain property test in `crates/serve/tests/http_drain.rs` holds the
//! server to exactly that.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deepseq_netlist::{lower_to_aig, parse_aiger, structural_hash, SeqAig};
use deepseq_nn::fault::{self, FaultPoint};
use deepseq_nn::trace;
use deepseq_nn::CheckpointMap;
use deepseq_sim::Workload;

use crate::cache::CacheStats;
use crate::engine::{Engine, EngineError, ServeRequest, ServeResponse};
use crate::http::{
    read_request_with, write_response, HttpError, HttpLimits, HttpRequest, HttpResponse,
};
use crate::infer::InferenceModel;
use crate::json::response_to_json;
use crate::metrics::Metrics;
use crate::shard::ShardRouter;
use crate::ServeError;

/// Locks a mutex, recovering the guard if a panicking holder poisoned it.
/// Server state (admission counters, drain flag) stays meaningful across a
/// caught panic, so refusing to serve because of poisoning would turn one
/// contained failure into a cascading one.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Sizing and policy knobs of an [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Embed requests processed concurrently. `0` sizes from the engine's
    /// pool thread count.
    pub max_inflight: usize,
    /// Embed requests allowed to wait behind the in-flight ones before
    /// newcomers get `429`.
    pub max_queue: usize,
    /// Per-request deadline: time from reading the request to finishing
    /// compute. Expiry answers `504`. Requests may tighten (never extend)
    /// it with `?deadline_ms=`.
    pub deadline: Duration,
    /// Head/body size caps of the HTTP reader.
    pub limits: HttpLimits,
    /// Idle time after which a keep-alive connection is closed. Also
    /// bounds how long a drain waits on idle connections.
    pub idle_keepalive: Duration,
    /// Hard cap on how long [`HttpServer::shutdown`] waits for open
    /// connections after the admitted requests finished.
    pub drain_grace: Duration,
    /// Checkpoint the server was started from, if any — `POST /admin/reload`
    /// re-reads it (and is `409` without one).
    pub checkpoint_path: Option<String>,
    /// Consecutive `429` (queue-full) rejections, with no successful
    /// admission in between, after which the server enters degraded mode on
    /// its own. `0` disables the automatic trip (the default); explicit
    /// `POST /admin/degrade` and failed reloads still degrade.
    pub saturation_trip: u64,
    /// Engine shards behind the [`ShardRouter`] (clamped to at least 1).
    /// Requests partition across them by structural hash; `/admin/reload`
    /// and `/admin/degrade` accept `?shard=K` to target one shard.
    pub shards: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 0,
            max_queue: 64,
            deadline: Duration::from_secs(30),
            limits: HttpLimits::default(),
            idle_keepalive: Duration::from_secs(5),
            drain_grace: Duration::from_secs(30),
            checkpoint_path: None,
            saturation_trip: 0,
            shards: 1,
        }
    }
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests the engine served over the server's lifetime.
    pub requests_served: u64,
    /// Connections still open when `drain_grace` expired (0 on a clean
    /// drain).
    pub connections_abandoned: u64,
}

/// Admission gate state: how many embed requests hold a compute slot and
/// how many wait for one.
struct AdmissionState {
    in_flight: usize,
    queued: usize,
}

/// Bounded admission for embed requests (see the [module docs](self)).
struct Admission {
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

/// Outcome of one admission attempt.
enum Admit {
    /// A compute slot is held; release it with [`Admission::release`].
    Go,
    /// The wait queue is full — answer `429`.
    QueueFull,
    /// The deadline expired while waiting — answer `504`.
    DeadlineExpired,
}

impl Admission {
    fn new() -> Admission {
        Admission {
            state: Mutex::new(AdmissionState {
                in_flight: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Tries to take a compute slot, waiting (bounded by `max_queue` and
    /// `deadline`) when all slots are busy. Mirrors the gate state into
    /// the `queue_depth` / `in_flight` gauges.
    fn acquire(
        &self,
        max_inflight: usize,
        max_queue: usize,
        deadline: Instant,
        metrics: &Metrics,
    ) -> Admit {
        let mut state = lock_recover(&self.state);
        if state.in_flight < max_inflight && state.queued == 0 {
            state.in_flight += 1;
            metrics
                .in_flight
                .store(state.in_flight as u64, Ordering::Relaxed);
            return Admit::Go;
        }
        if state.queued >= max_queue {
            return Admit::QueueFull;
        }
        state.queued += 1;
        metrics
            .queue_depth
            .store(state.queued as u64, Ordering::Relaxed);
        loop {
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                metrics
                    .queue_depth
                    .store(state.queued as u64, Ordering::Relaxed);
                return Admit::DeadlineExpired;
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poison| poison.into_inner());
            state = next;
            if state.in_flight < max_inflight {
                state.queued -= 1;
                state.in_flight += 1;
                metrics
                    .queue_depth
                    .store(state.queued as u64, Ordering::Relaxed);
                metrics
                    .in_flight
                    .store(state.in_flight as u64, Ordering::Relaxed);
                return Admit::Go;
            }
        }
    }

    /// Returns a compute slot and wakes one waiter.
    fn release(&self, metrics: &Metrics) {
        let mut state = lock_recover(&self.state);
        state.in_flight -= 1;
        metrics
            .in_flight
            .store(state.in_flight as u64, Ordering::Relaxed);
        self.freed.notify_one();
    }

    /// True when no request holds or waits for a slot.
    fn is_empty(&self) -> bool {
        let state = lock_recover(&self.state);
        state.in_flight == 0 && state.queued == 0
    }
}

/// State shared between the accept thread, every connection handler, and
/// the [`HttpServer`] handle.
struct ServerShared {
    /// The engine shards and the structural-hash routing between them.
    /// Degraded (cache-only) mode lives per shard inside the router; the
    /// whole server is degraded exactly when every shard is.
    router: ShardRouter,
    metrics: Arc<Metrics>,
    options: ServerOptions,
    max_inflight: usize,
    admission: Admission,
    draining: AtomicBool,
    /// Consecutive queue-full rejections since the last admission; trips
    /// degraded mode at `options.saturation_trip`.
    queue_full_streak: AtomicU64,
    /// Signalled when a drain is requested (admin endpoint or handle) and
    /// when a connection closes (so `shutdown` can wait for zero).
    drain_lock: Mutex<()>,
    drain_cv: Condvar,
    started: Instant,
}

impl ServerShared {
    /// Shard 0 — the engine the server was built from. All shards share
    /// its worker pool and cone memo.
    fn primary(&self) -> &Engine {
        self.router.engine(0)
    }

    fn request_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.notify_drain_waiters();
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Sets every shard's degraded flag at once (the whole-server toggle of
    /// `POST /admin/degrade` without `?shard=`).
    fn set_degraded(&self, on: bool) {
        for index in 0..self.router.len() {
            self.router.set_degraded(index, on);
        }
        if !on {
            self.queue_full_streak.store(0, Ordering::Relaxed);
        }
    }

    /// True when the whole server is cache-only: every shard degraded.
    fn is_degraded(&self) -> bool {
        self.router.all_degraded()
    }

    /// Records one queue-full rejection; a long enough streak with no
    /// admission in between trips degraded mode (sustained saturation).
    fn note_queue_full(&self) {
        let trip = self.options.saturation_trip;
        if trip == 0 {
            return;
        }
        let streak = self.queue_full_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= trip {
            self.set_degraded(true);
        }
    }

    /// Records one successful admission, resetting the saturation streak.
    fn note_admitted(&self) {
        if self.options.saturation_trip != 0 {
            self.queue_full_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Wakes anything blocked on `drain_cv` (`shutdown`'s drain wait and
    /// `wait_for_drain_request`). Called on every state change the drain
    /// condition reads — drain requested, a connection closed, the
    /// admission gate emptied — so the waiters never have to poll.
    fn notify_drain_waiters(&self) {
        let _guard = lock_recover(&self.drain_lock);
        self.drain_cv.notify_all();
    }
}

/// Decrements the open-connection gauge and pokes the drain condvar when a
/// handler exits, however it exits.
struct ConnectionGuard {
    shared: Arc<ServerShared>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.shared
            .metrics
            .connections_open
            .fetch_sub(1, Ordering::Relaxed);
        self.shared.notify_drain_waiters();
    }
}

/// A bound, accepting HTTP server (see the [module docs](self)).
pub struct HttpServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `options.addr` and starts accepting connections on a
    /// dedicated thread. The engine becomes shard 0 of a [`ShardRouter`]
    /// (`options.shards` total); its pool runs the connection handlers.
    pub fn bind(engine: Engine, options: ServerOptions) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let max_inflight = if options.max_inflight == 0 {
            engine.pool().threads().max(1)
        } else {
            options.max_inflight
        };
        let metrics = Arc::new(Metrics::default());
        {
            // Feed the engine-side latency histogram from the engine's own
            // instrumentation hook, so it covers every path into the
            // engine, cache hits included. Installed before the shards are
            // forked — forks copy the hook, so every shard reports here.
            let histogram = Arc::clone(&metrics);
            engine.set_served_hook(Arc::new(move |_response, latency| {
                histogram.engine_latency.observe(latency);
            }));
        }
        let router = ShardRouter::new(engine, options.shards);
        let shared = Arc::new(ServerShared {
            router,
            metrics,
            options,
            max_inflight,
            admission: Admission::new(),
            draining: AtomicBool::new(false),
            queue_full_streak: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            started: Instant::now(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("deepseq-http-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(HttpServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The primary engine behind the server (shard 0).
    pub fn engine(&self) -> &Engine {
        self.shared.primary()
    }

    /// The shard router behind the server.
    pub fn router(&self) -> &ShardRouter {
        &self.shared.router
    }

    /// True once a drain has been requested.
    pub fn drain_requested(&self) -> bool {
        self.shared.is_draining()
    }

    /// True while the server is in degraded (cache-only) mode.
    pub fn degraded(&self) -> bool {
        self.shared.is_degraded()
    }

    /// Enters or leaves degraded mode (`POST /admin/degrade` calls the
    /// same thing).
    pub fn set_degraded(&self, on: bool) {
        self.shared.set_degraded(on);
    }

    /// Requests a drain without blocking (`POST /admin/drain` calls the
    /// same thing). Follow with [`HttpServer::shutdown`] to wait it out.
    pub fn request_drain(&self) {
        self.shared.request_drain();
    }

    /// Blocks until a drain is requested (by [`HttpServer::request_drain`]
    /// or the admin endpoint) — the serve-mode main loop parks here.
    pub fn wait_for_drain_request(&self) {
        let mut guard = lock_recover(&self.shared.drain_lock);
        while !self.shared.is_draining() {
            guard = self
                .shared
                .drain_cv
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Gracefully drains and shuts down: stops accepting, finishes every
    /// admitted request, waits for connections to close (bounded by
    /// `drain_grace`), and joins the accept thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.request_drain();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let grace = self.shared.options.drain_grace;
        let deadline = Instant::now() + grace;
        {
            let mut guard = lock_recover(&self.shared.drain_lock);
            loop {
                let drained = self.shared.admission.is_empty()
                    && self.shared.metrics.connections_open.load(Ordering::Relaxed) == 0;
                if drained {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                // Every input of the drained condition notifies `drain_cv`
                // on change (connection close, admission release/expiry),
                // so the full remaining grace can be slept in one wait —
                // no polling cap adding up to 100 ms of shutdown latency.
                let (next, _) = self
                    .shared
                    .drain_cv
                    .wait_timeout(guard, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                guard = next;
            }
        }
        DrainReport {
            requests_served: self.shared.router.stats().iter().map(|s| s.served).sum(),
            connections_abandoned: self.shared.metrics.connections_open.load(Ordering::Relaxed),
        }
    }
}

/// Accepts connections until a drain is requested, then drops the
/// listener (new connects are refused by the OS from that point on).
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        if shared.is_draining() {
            return; // dropping the listener closes the socket
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .connections_open
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handler = move || handle_connection(stream, conn_shared);
                // A 1-thread pool has no workers and runs spawned jobs
                // inline, which would wedge the accept loop behind one
                // connection — give those connections their own thread.
                if shared.primary().pool().threads() > 1 {
                    shared.primary().pool().spawn(handler);
                } else {
                    let _ = std::thread::Builder::new()
                        .name("deepseq-http-conn".to_string())
                        .spawn(handler);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection: keep-alive request loop, routing, error
/// rendering. Never panics the worker on a bad peer.
///
/// # Socket timeouts
///
/// The read timeout distinguishes two very different waits. *Between*
/// requests, the socket may sit idle only `idle_keepalive` before the
/// connection is reclaimed. *Within* a request — from the moment the head
/// is parsed — body reads and the response write instead run against the
/// request's own deadline budget: a client legitimately trickling a large
/// body is not killed by the (much shorter) keepalive timeout, and a stuck
/// peer cannot pin a worker past the deadline either.
fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let _guard = ConnectionGuard {
        shared: Arc::clone(&shared),
    };
    let _ = stream.set_nodelay(true);
    // Timeout-control handle: `set_read_timeout`/`set_write_timeout` act on
    // the shared socket, so this clone adjusts the reader and writer halves
    // below without borrowing either.
    let Ok(control) = stream.try_clone() else {
        return;
    };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        // Waiting for the next request head is the only *idle* period.
        let _ = control.set_read_timeout(Some(shared.options.idle_keepalive));
        let mut head_parsed_at = None;
        let request =
            match read_request_with(&mut reader, &mut writer, &shared.options.limits, |_head| {
                // The head is in: the request's deadline clock starts now,
                // and body reads share its budget instead of the keepalive
                // timeout.
                head_parsed_at = Some(Instant::now());
                let _ = control.set_read_timeout(Some(clamp_timeout(shared.options.deadline)));
            }) {
                Ok(request) => request,
                Err(HttpError::Closed) => return,
                Err(HttpError::Io(_)) => return, // timeout/reset: nothing to answer
                Err(HttpError::BadRequest(msg)) => {
                    // Malformed input answers 400 with a JSON error body — the
                    // connection is closed (framing may be lost) but never
                    // dropped without a response.
                    let response = HttpResponse::error(400, &msg).closing();
                    shared.metrics.count_status(400);
                    let _ = write_response(&mut writer, &response);
                    return;
                }
                Err(HttpError::NotImplemented(msg)) => {
                    let response = HttpResponse::error(501, &msg).closing();
                    shared.metrics.count_status(501);
                    let _ = write_response(&mut writer, &response);
                    return;
                }
            };
        let mut response = route(&shared, &request);
        // During a drain, finish the request we already read but close the
        // connection; new requests belong on a live instance.
        if request.wants_close() || shared.is_draining() {
            response.close = true;
        }
        shared.metrics.count_status(response.status);
        // The response write runs against what is left of the request's
        // deadline budget — a stalled peer cannot pin this worker for
        // longer than the request was allowed to live.
        let deadline = head_parsed_at.unwrap_or_else(Instant::now) + shared.options.deadline;
        let remaining = deadline.saturating_duration_since(Instant::now());
        let _ = control.set_write_timeout(Some(clamp_timeout(remaining)));
        let wrote = {
            // Re-enter the request's trace (echoed on the response) so
            // the socket-write span joins its span tree.
            let _trace = response_trace_scope(&response);
            let _span = trace::span(trace::SpanKind::SocketWrite);
            if fault::should_inject(FaultPoint::SocketWrite) {
                // Model a peer reset mid-write: the connection is torn down
                // (the error return below closes it) but the server, its
                // admission slot accounting, and the drain machinery are
                // untouched.
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected socket_write fault",
                ))
            } else {
                write_response(&mut writer, &response)
            }
        };
        if wrote.is_err() || response.close {
            return;
        }
    }
}

/// Clamps a socket timeout to at least 100 ms: `set_read_timeout(Some(0))`
/// is an `Err` by contract, and even a request whose budget just expired
/// deserves the few syscalls it takes to push its `504` out.
fn clamp_timeout(budget: Duration) -> Duration {
    budget.max(Duration::from_millis(100))
}

/// Scope for the trace id a response carries in its `deepseq-trace-id`
/// header, if tracing is on and the response has one.
fn response_trace_scope(response: &HttpResponse) -> Option<trace::TraceScope> {
    if !trace::enabled() {
        return None;
    }
    response
        .extra_headers
        .iter()
        .find(|(name, _)| name == "deepseq-trace-id")
        .and_then(|(_, value)| value.parse::<u64>().ok())
        .map(trace::scope)
}

/// Dispatches one parsed request to its endpoint.
fn route(shared: &Arc<ServerShared>, request: &HttpRequest) -> HttpResponse {
    let metrics = &shared.metrics;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/embed") => {
            metrics.requests_embed.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            // Mint a per-request trace id at the edge; the thread-local
            // scope carries it through the engine into pool tasks and
            // kernel dispatch, and the response echoes it so clients can
            // fetch the span tree from `/debug/trace?id=…`.
            let trace_id = if trace::enabled() {
                trace::next_trace_id()
            } else {
                0
            };
            let _trace = (trace_id != 0).then(|| trace::scope(trace_id));
            let request_span = trace::span(trace::SpanKind::Request);
            let mut response = embed(shared, request, start);
            drop(request_span);
            if trace_id != 0 {
                response = response.with_header("deepseq-trace-id", trace_id.to_string());
            }
            metrics.request_latency.observe(start.elapsed());
            response
        }
        ("GET", "/debug/trace") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            debug_trace(request)
        }
        ("GET", "/healthz") => {
            metrics.requests_healthz.fetch_add(1, Ordering::Relaxed);
            healthz(shared, request)
        }
        ("GET", "/metrics") => {
            metrics.requests_metrics.fetch_add(1, Ordering::Relaxed);
            let stats = shared.router.stats();
            // Aggregate the embedding-cache view across shards; the
            // per-shard split is in the deepseq_shard_* families.
            let mut cache = CacheStats::default();
            for stat in &stats {
                cache.hits += stat.cache.hits;
                cache.misses += stat.cache.misses;
                cache.evictions += stat.cache.evictions;
                cache.entries += stat.cache.entries;
                cache.capacity += stat.cache.capacity;
            }
            let cones = shared.primary().cone_stats();
            let pool = shared.primary().pool().stats();
            HttpResponse::text(
                200,
                metrics.render(
                    &cache,
                    &cones,
                    &pool,
                    &stats,
                    shared.is_draining(),
                    shared.is_degraded(),
                ),
            )
        }
        ("POST", "/admin/drain") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            shared.request_drain();
            HttpResponse::json(200, "{\"status\":\"draining\"}").closing()
        }
        ("POST", "/admin/degrade") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            admin_degrade(shared, request)
        }
        ("POST", "/admin/reload") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            admin_reload(shared, request)
        }
        (_, "/v1/embed")
        | (_, "/healthz")
        | (_, "/metrics")
        | (_, "/admin/drain")
        | (_, "/admin/degrade")
        | (_, "/admin/reload")
        | (_, "/debug/trace") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, &format!("{} not allowed here", request.method))
        }
        (_, path) => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(404, &format!("no such endpoint {path}"))
        }
    }
}

/// `GET /debug/trace`: span-level introspection. With `?id=N` (the
/// `deepseq-trace-id` echoed on a traced embed response), the span tree
/// of that request; without a query, a per-stage latency summary.
/// Answers `404` while tracing is disabled.
fn debug_trace(request: &HttpRequest) -> HttpResponse {
    if !trace::enabled() {
        return HttpResponse::error(
            404,
            "tracing is disabled; set DEEPSEQ_TRACE=1 or pass --trace-out",
        );
    }
    match request.query_param("id") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(id) if id > 0 => {
                let records = trace::collect(id);
                if records.is_empty() {
                    return HttpResponse::error(404, &format!("no spans recorded for trace {id}"));
                }
                HttpResponse::json(200, crate::json::trace_tree_json(id, &records))
            }
            _ => HttpResponse::error(400, &format!("malformed trace id {raw:?}")),
        },
        None => HttpResponse::json(
            200,
            crate::json::stage_summary_json(&trace::stage_stats(), trace::dropped_spans()),
        ),
    }
}

/// `GET /healthz`: liveness by default (200 as long as the process
/// answers, with `draining` / `degraded` / `ready` detail in the body);
/// with `?ready=1`, a readiness probe that answers `503` while the server
/// is draining or degraded, so load balancers route around it while
/// `kubelet`-style liveness checks keep it alive.
fn healthz(shared: &Arc<ServerShared>, request: &HttpRequest) -> HttpResponse {
    let draining = shared.is_draining();
    let degraded = shared.is_degraded();
    let shards = shared.router.len();
    let shards_degraded = (0..shards)
        .filter(|&i| shared.router.is_degraded(i))
        .count();
    let ready = !draining && !degraded;
    let body = format!(
        "{{\"status\":\"{}\",\"live\":true,\"ready\":{ready},\"draining\":{draining},\
         \"degraded\":{degraded},\"shards\":{shards},\"shards_degraded\":{shards_degraded},\
         \"uptime_ms\":{}}}",
        if ready { "ok" } else { "degraded" },
        shared.started.elapsed().as_millis()
    );
    let readiness_probe = matches!(request.query_param("ready"), Some("1" | "true"));
    let status = if readiness_probe && !ready { 503 } else { 200 };
    HttpResponse::json(status, body)
}

/// Parses the optional `?shard=K` target of the admin endpoints: `Ok(None)`
/// without the parameter (whole server), `Ok(Some(k))` for a valid index,
/// `Err(response)` — a ready-to-send `400` — otherwise.
fn shard_param(
    shared: &Arc<ServerShared>,
    request: &HttpRequest,
) -> Result<Option<usize>, HttpResponse> {
    match request.query_param("shard") {
        None => Ok(None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(index) if index < shared.router.len() => Ok(Some(index)),
            Ok(index) => Err(HttpResponse::error(
                400,
                &format!(
                    "shard {index} out of range (server has {} shards)",
                    shared.router.len()
                ),
            )),
            Err(_) => Err(HttpResponse::error(
                400,
                &format!("malformed shard index {raw:?}"),
            )),
        },
    }
}

/// `POST /admin/degrade`: enters (`?mode=on`, the default) or leaves
/// (`?mode=off`) degraded mode — for the whole server, or for one shard
/// with `?shard=K` (healthy shards keep computing; the router probes past
/// the degraded one).
fn admin_degrade(shared: &Arc<ServerShared>, request: &HttpRequest) -> HttpResponse {
    let shard = match shard_param(shared, request) {
        Ok(shard) => shard,
        Err(response) => return response,
    };
    let on = match request.query_param("mode") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return HttpResponse::error(400, &format!("unknown mode {other:?} (on | off)"))
        }
    };
    let status = if on { "degraded" } else { "ok" };
    match shard {
        None => {
            shared.set_degraded(on);
            HttpResponse::json(200, format!("{{\"status\":\"{status}\"}}"))
        }
        Some(index) => {
            shared.router.set_degraded(index, on);
            HttpResponse::json(
                200,
                format!("{{\"status\":\"{status}\",\"shard\":{index}}}"),
            )
        }
    }
}

/// `POST /admin/reload`: re-reads the checkpoint the server was started
/// from and swaps it in — into every shard (one decode, one shared model
/// `Arc`) by default, or into one shard with `?shard=K` (canary reloads:
/// the other shards keep their weights and caches). A failed reload —
/// missing file, corrupt bytes, checksum mismatch — leaves the old model
/// serving but flips the targeted shard(s) into degraded mode: the
/// operator asked for weights the server cannot vouch for, so only cache
/// hits keep flowing there until a reload succeeds or degraded mode is
/// cleared explicitly.
fn admin_reload(shared: &Arc<ServerShared>, request: &HttpRequest) -> HttpResponse {
    let shard = match shard_param(shared, request) {
        Ok(shard) => shard,
        Err(response) => return response,
    };
    let Some(path) = shared.options.checkpoint_path.as_deref() else {
        return HttpResponse::error(
            409,
            "no checkpoint to reload (server started without --checkpoint)",
        );
    };
    match reload_checkpoint(path) {
        Ok(model) => {
            let model = Arc::new(model);
            match shard {
                None => {
                    // One decode serves every shard: they share the Arc
                    // (and its generation), not N copies of the weights.
                    for index in 0..shared.router.len() {
                        shared
                            .router
                            .engine(index)
                            .swap_model_arc(Arc::clone(&model));
                    }
                    shared.set_degraded(false);
                    HttpResponse::json(200, "{\"status\":\"reloaded\"}")
                }
                Some(index) => {
                    shared.router.engine(index).swap_model_arc(model);
                    shared.router.set_degraded(index, false);
                    HttpResponse::json(
                        200,
                        format!("{{\"status\":\"reloaded\",\"shard\":{index}}}"),
                    )
                }
            }
        }
        Err(msg) => {
            match shard {
                None => shared.set_degraded(true),
                Some(index) => {
                    shared.router.set_degraded(index, true);
                }
            }
            HttpResponse::error(500, &format!("checkpoint reload failed ({msg}); degraded"))
        }
    }
}

/// Loads a checkpoint for [`admin_reload`], sniffing binary (`DSQM`)
/// versus text by the magic. The file is mapped ([`CheckpointMap`]), not
/// copied into a heap buffer — decoding reads straight out of the page
/// cache, and N-shard reloads never hold two transient copies of the
/// weights.
fn reload_checkpoint(path: &str) -> Result<InferenceModel, String> {
    let map = CheckpointMap::open(path.as_ref()).map_err(|e| format!("reading {path}: {e}"))?;
    let bytes = map.bytes();
    if bytes.starts_with(&deepseq_core::model::MODEL_MAGIC) {
        InferenceModel::from_binary_checkpoint(bytes).map_err(|e| e.to_string())
    } else {
        let text =
            std::str::from_utf8(bytes).map_err(|_| format!("{path} is neither binary nor text"))?;
        InferenceModel::from_text_checkpoint(text).map_err(|e| e.to_string())
    }
}

/// `POST /v1/embed`: parse → admit → engine → JSON.
fn embed(shared: &Arc<ServerShared>, request: &HttpRequest, start: Instant) -> HttpResponse {
    let metrics = &shared.metrics;
    if shared.is_draining() {
        metrics.rejected_draining.fetch_add(1, Ordering::Relaxed);
        return HttpResponse::error(503, "server is draining").closing();
    }
    let parse_span = trace::span(trace::SpanKind::Parse);
    let serve_request = match parse_embed_request(request) {
        Ok(serve_request) => serve_request,
        Err(msg) => return HttpResponse::error(400, &msg),
    };
    drop(parse_span);
    let summary = matches!(request.query_param("summary"), Some("1" | "true"));
    // Partition by the circuit's canonical structural hash: the same
    // circuit always computes on the same home shard (so its exact-cache
    // entry is where its requests land), with ring-probe failover past
    // degraded shards.
    let hash = structural_hash(&serve_request.aig);
    let Some(decision) = shared.router.route(hash) else {
        // Every shard is degraded — the whole server is cache-only: hits
        // still flow (the cached result is known good), misses shed
        // immediately. No compute runs on a server that cannot vouch for
        // its weights or is saturated. Earlier failovers may have cached
        // the result away from home, so every shard's cache is probed in
        // ring order from the home shard.
        let (home, n) = (shared.router.home(hash), shared.router.len());
        for probe in 0..n {
            let engine = shared.router.engine((home + probe) % n);
            if let Some(response) = engine.lookup_cached(&serve_request) {
                return HttpResponse::json(200, response_to_json(&response, summary));
            }
        }
        metrics.rejected_degraded.fetch_add(1, Ordering::Relaxed);
        return HttpResponse::error(503, "server is degraded; cache miss shed")
            .with_header("retry-after", "5".to_string());
    };
    // Requests may tighten the configured deadline, never extend it.
    let deadline_budget = match request.query_param("deadline_ms") {
        None => shared.options.deadline,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(shared.options.deadline),
            Err(_) => return HttpResponse::error(400, &format!("malformed deadline_ms {raw:?}")),
        },
    };
    let deadline = start + deadline_budget;

    let queue_span = trace::span(trace::SpanKind::QueueWait);
    let admit = shared.admission.acquire(
        shared.max_inflight,
        shared.options.max_queue,
        deadline,
        metrics,
    );
    drop(queue_span);
    match admit {
        Admit::QueueFull => {
            metrics.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            shared.note_queue_full();
            HttpResponse::error(429, "admission queue is full; retry later")
                .with_header("retry-after", "1".to_string())
        }
        Admit::DeadlineExpired => {
            metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
            // The expired request left the admission queue: a draining
            // shutdown may be waiting for exactly that.
            shared.notify_drain_waiters();
            HttpResponse::error(504, "deadline expired while queued")
        }
        Admit::Go => {
            shared.note_admitted();
            let request_id = serve_request.id;
            let design = serve_request.aig.name().to_string();
            // serve_batch with one request runs it inline on this thread;
            // level fan-out inside the engine still spreads across the
            // pool's scoped queues.
            let in_flight = shared.router.track(decision.shard);
            let mut responses = shared
                .router
                .engine(decision.shard)
                .serve_batch(vec![serve_request]);
            drop(in_flight);
            shared.admission.release(metrics);
            shared.notify_drain_waiters();
            // serve_batch answers every request (typed errors included);
            // should that invariant ever break, answer a typed 500, never
            // panic a connection handler.
            let response = responses.pop().unwrap_or(ServeResponse {
                id: request_id,
                design,
                result: Err(ServeError::Engine(EngineError::ReplyDropped)),
            });
            if Instant::now() > deadline {
                metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                return HttpResponse::error(504, "deadline expired during processing");
            }
            let status = match &response.result {
                Ok(_) => 200,
                // Server-side machinery failures (caught panic, dropped
                // reply) are 500s; everything else is the request's fault.
                Err(e) if e.is_internal() => 500,
                Err(_) => 400,
            };
            let serialize_span = trace::span(trace::SpanKind::Serialize);
            let body = response_to_json(&response, summary);
            drop(serialize_span);
            HttpResponse::json(status, body)
        }
    }
}

/// Builds a [`ServeRequest`] from the HTTP request's body and query.
fn parse_embed_request(request: &HttpRequest) -> Result<ServeRequest, String> {
    if request.body.is_empty() {
        return Err("empty body; POST an ASCII AIGER (`aag …`) or `.bench` netlist".to_string());
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8 circuit text".to_string())?;
    let name = request.query_param("name").unwrap_or("request");
    let format = match request.query_param("format") {
        Some("aiger") => "aiger",
        Some("bench") => "bench",
        Some(other) => return Err(format!("unknown format {other:?} (aiger | bench)")),
        // Sniff: an ASCII AIGER always opens with its `aag` header.
        None if text.trim_start().starts_with("aag") => "aiger",
        None => "bench",
    };
    let aig: SeqAig = if format == "aiger" {
        parse_aiger(text).map_err(|e| format!("invalid AIGER payload: {e}"))?
    } else {
        let netlist = deepseq_netlist::bench_io::parse_bench_named(text, name)
            .map_err(|e| format!("invalid .bench payload: {e}"))?;
        lower_to_aig(&netlist)
            .map_err(|e| format!("lowering .bench payload: {e}"))?
            .aig
    };
    let p1 = match request.query_param("p1") {
        None => 0.5,
        Some(raw) => raw
            .parse::<f64>()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or(format!("malformed p1 {raw:?} (float in [0, 1])"))?,
    };
    let parse_u64 = |key: &str| -> Result<u64, String> {
        match request.query_param(key) {
            None => Ok(0),
            Some(raw) => raw.parse().map_err(|_| format!("malformed {key} {raw:?}")),
        }
    };
    Ok(ServeRequest {
        id: parse_u64("id")?,
        init_seed: parse_u64("seed")?,
        workload: Workload::uniform(aig.num_pis(), p1),
        aig,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceModel;
    use crate::EngineOptions;
    use deepseq_core::{DeepSeq, DeepSeqConfig};
    use deepseq_nn::Pool;

    fn test_engine() -> Engine {
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        Engine::with_pool(
            InferenceModel::from_model(&model).expect("canonical params"),
            EngineOptions {
                workers: 2,
                cache_capacity: 8,
                ..EngineOptions::default()
            },
            Arc::new(Pool::new(2)),
        )
    }

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, query: &[(&str, &str)], body: &[u8]) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn shared() -> Arc<ServerShared> {
        shared_with(ServerOptions::default())
    }

    fn shared_with(options: ServerOptions) -> Arc<ServerShared> {
        let shards = options.shards.max(1);
        Arc::new(ServerShared {
            router: ShardRouter::new(test_engine(), shards),
            metrics: Arc::new(Metrics::default()),
            options,
            max_inflight: 2,
            admission: Admission::new(),
            draining: AtomicBool::new(false),
            queue_full_streak: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            started: Instant::now(),
        })
    }

    /// A 2-node toggle circuit in ASCII AIGER.
    const TOGGLE_AAG: &[u8] = b"aag 1 0 1 1 0\n2 3\n2\n";

    #[test]
    fn embed_round_trips_a_circuit() {
        let shared = shared();
        let response = route(&shared, &post("/v1/embed", &[("id", "7")], TOGGLE_AAG));
        assert_eq!(response.status, 200, "{:?}", response.body);
        let body = String::from_utf8(response.body).expect("json body");
        assert!(body.starts_with("{\"id\":7,"), "{body}");
        assert!(body.contains("\"cache_hit\":false"), "{body}");
        // Second identical request hits the cache.
        let response = route(&shared, &post("/v1/embed", &[("id", "8")], TOGGLE_AAG));
        let body = String::from_utf8(response.body).expect("json body");
        assert!(body.contains("\"cache_hit\":true"), "{body}");
    }

    #[test]
    fn embed_rejects_garbage_with_400() {
        let shared = shared();
        for (query, body) in [
            (vec![], b"not a circuit at all".to_vec()),
            (vec![], b"aag 1 1\n".to_vec()),
            (vec![], Vec::new()),
            (vec![], vec![0xff, 0xfe]),
            (vec![("p1", "2.0")], TOGGLE_AAG.to_vec()),
            (vec![("seed", "abc")], TOGGLE_AAG.to_vec()),
            (vec![("format", "verilog")], TOGGLE_AAG.to_vec()),
            (vec![("deadline_ms", "soon")], TOGGLE_AAG.to_vec()),
        ] {
            let response = route(&shared, &post("/v1/embed", &query, &body));
            assert_eq!(response.status, 400, "{query:?}");
            let body = String::from_utf8(response.body).expect("json");
            assert!(body.starts_with("{\"error\":"), "{body}");
        }
    }

    #[test]
    fn zero_deadline_expires_with_504() {
        let shared = shared();
        let response = route(
            &shared,
            &post("/v1/embed", &[("deadline_ms", "0")], TOGGLE_AAG),
        );
        assert_eq!(response.status, 504);
        assert_eq!(shared.metrics.deadline_expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let shared = shared();
        let health = route(&shared, &get("/healthz"));
        assert_eq!(health.status, 200);
        assert!(String::from_utf8(health.body)
            .unwrap()
            .contains("\"draining\":false"));

        // Serve one circuit so the cache counters are nonzero.
        route(&shared, &post("/v1/embed", &[], TOGGLE_AAG));
        let metrics = route(&shared, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(text.contains("deepseq_cache_hit_ratio"), "{text}");
        assert!(text.contains("deepseq_cone_hits_total"), "{text}");
        assert!(
            text.contains("deepseq_shard_served_total{shard=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("deepseq_shard_degraded{shard=\"0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("deepseq_http_request_duration_seconds_bucket"),
            "{text}"
        );

        assert_eq!(route(&shared, &get("/nope")).status, 404);
        assert_eq!(route(&shared, &get("/v1/embed")).status, 405);
    }

    #[test]
    fn draining_rejects_embeds_with_503() {
        let shared = shared();
        shared.request_drain();
        let response = route(&shared, &post("/v1/embed", &[], TOGGLE_AAG));
        assert_eq!(response.status, 503);
        assert!(response.close);
        let health = route(&shared, &get("/healthz"));
        assert!(String::from_utf8(health.body)
            .unwrap()
            .contains("\"draining\":true"));
    }

    #[test]
    fn degraded_mode_serves_hits_and_sheds_misses() {
        let shared = shared();
        // Populate the cache while healthy.
        let warm = route(&shared, &post("/v1/embed", &[("id", "1")], TOGGLE_AAG));
        assert_eq!(warm.status, 200);

        let degrade = route(&shared, &post("/admin/degrade", &[], b""));
        assert_eq!(degrade.status, 200);
        assert!(shared.is_degraded());

        // Hit: still served, marked as a cache hit.
        let hit = route(&shared, &post("/v1/embed", &[("id", "2")], TOGGLE_AAG));
        assert_eq!(hit.status, 200);
        let body = String::from_utf8(hit.body).unwrap();
        assert!(body.contains("\"cache_hit\":true"), "{body}");

        // Miss: shed with 503 + Retry-After, counted.
        let miss = route(&shared, &post("/v1/embed", &[("seed", "99")], TOGGLE_AAG));
        assert_eq!(miss.status, 503);
        assert!(miss
            .extra_headers
            .iter()
            .any(|(name, _)| name == "retry-after"));
        let body = String::from_utf8(miss.body).unwrap();
        assert!(body.starts_with("{\"error\":"), "{body}");
        assert_eq!(shared.metrics.rejected_degraded.load(Ordering::Relaxed), 1);

        // Recovery: mode=off restores full service.
        let restore = route(&shared, &post("/admin/degrade", &[("mode", "off")], b""));
        assert_eq!(restore.status, 200);
        assert!(!shared.is_degraded());
        let served = route(&shared, &post("/v1/embed", &[("seed", "99")], TOGGLE_AAG));
        assert_eq!(served.status, 200);
    }

    #[test]
    fn degrade_rejects_unknown_modes() {
        let shared = shared();
        let response = route(&shared, &post("/admin/degrade", &[("mode", "maybe")], b""));
        assert_eq!(response.status, 400);
        assert!(!shared.is_degraded());
    }

    #[test]
    fn healthz_splits_liveness_from_readiness() {
        let shared = shared();
        // Healthy: both views 200 and ready.
        let live = route(&shared, &get("/healthz"));
        assert_eq!(live.status, 200);
        assert!(String::from_utf8(live.body)
            .unwrap()
            .contains("\"ready\":true"));

        shared.set_degraded(true);
        // Liveness stays 200 (the process is fine) …
        let live = route(&shared, &get("/healthz"));
        assert_eq!(live.status, 200);
        let body = String::from_utf8(live.body).unwrap();
        assert!(body.contains("\"ready\":false"), "{body}");
        assert!(body.contains("\"degraded\":true"), "{body}");
        // … while the readiness probe reports 503.
        let ready = route(
            &shared,
            &HttpRequest {
                method: "GET".into(),
                path: "/healthz".into(),
                query: vec![("ready".into(), "1".into())],
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(ready.status, 503);
    }

    #[test]
    fn sustained_queue_saturation_trips_degraded_mode() {
        let shared = shared_with(ServerOptions {
            saturation_trip: 3,
            ..ServerOptions::default()
        });
        shared.note_queue_full();
        shared.note_queue_full();
        assert!(!shared.is_degraded());
        // An admission in between resets the streak.
        shared.note_admitted();
        shared.note_queue_full();
        shared.note_queue_full();
        assert!(!shared.is_degraded());
        shared.note_queue_full();
        assert!(shared.is_degraded());
        // Clearing degraded mode also clears the streak.
        shared.set_degraded(false);
        shared.note_queue_full();
        assert!(!shared.is_degraded());
    }

    #[test]
    fn reload_without_checkpoint_answers_409() {
        let shared = shared();
        let response = route(&shared, &post("/admin/reload", &[], b""));
        assert_eq!(response.status, 409);
        assert!(!shared.is_degraded());
    }

    #[test]
    fn failed_reload_degrades_and_successful_reload_recovers() {
        let dir = std::env::temp_dir().join(format!("deepseq-reload-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.dsqm");
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        std::fs::write(&path, model.save_binary()).expect("write checkpoint");

        let shared = shared_with(ServerOptions {
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..ServerOptions::default()
        });
        // Good checkpoint: reload succeeds, stays healthy.
        let ok = route(&shared, &post("/admin/reload", &[], b""));
        assert_eq!(ok.status, 200, "{:?}", String::from_utf8(ok.body));
        assert!(!shared.is_degraded());

        // Corrupt the checkpoint (single bit flip in the body): reload
        // fails with the CRC guard and the server degrades.
        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).expect("rewrite checkpoint");
        let bad = route(&shared, &post("/admin/reload", &[], b""));
        assert_eq!(bad.status, 500);
        assert!(shared.is_degraded());
        let body = String::from_utf8(bad.body).unwrap();
        assert!(body.starts_with("{\"error\":"), "{body}");

        // Restore the file: the next reload succeeds and clears degraded.
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).expect("restore checkpoint");
        let ok = route(&shared, &post("/admin/reload", &[], b""));
        assert_eq!(ok.status, 200);
        assert!(!shared.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_shard_degrade_reroutes_instead_of_shedding() {
        let shared = shared_with(ServerOptions {
            shards: 2,
            ..ServerOptions::default()
        });
        let aig = parse_aiger(std::str::from_utf8(TOGGLE_AAG).unwrap()).unwrap();
        let home = shared.router.home(structural_hash(&aig));
        let other = 1 - home;

        // Degrade only the toggle circuit's home shard.
        let resp = route(
            &shared,
            &post("/admin/degrade", &[("shard", &home.to_string())], b""),
        );
        assert_eq!(resp.status, 200);
        assert!(shared.router.is_degraded(home));
        assert!(
            !shared.is_degraded(),
            "one healthy shard keeps the server up"
        );

        // Requests still compute — absorbed by the healthy shard.
        let served = route(&shared, &post("/v1/embed", &[], TOGGLE_AAG));
        assert_eq!(served.status, 200);
        let stats = shared.router.stats();
        assert_eq!(stats[other].served, 1);
        assert_eq!(stats[other].rerouted, 1);
        assert_eq!(stats[home].served, 0);

        // healthz: still ready, but the shard detail shows the hole.
        let health = route(&shared, &get("/healthz"));
        assert_eq!(health.status, 200);
        let body = String::from_utf8(health.body).unwrap();
        assert!(body.contains("\"ready\":true"), "{body}");
        assert!(body.contains("\"shards\":2"), "{body}");
        assert!(body.contains("\"shards_degraded\":1"), "{body}");

        // Degrade the absorber too: the server is now cache-only, but the
        // hit cached on the absorber during failover still flows.
        route(
            &shared,
            &post("/admin/degrade", &[("shard", &other.to_string())], b""),
        );
        assert!(shared.is_degraded());
        let hit = route(&shared, &post("/v1/embed", &[], TOGGLE_AAG));
        assert_eq!(hit.status, 200);
        assert!(String::from_utf8(hit.body)
            .unwrap()
            .contains("\"cache_hit\":true"));
        let miss = route(&shared, &post("/v1/embed", &[("seed", "9")], TOGGLE_AAG));
        assert_eq!(miss.status, 503);
        assert_eq!(shared.metrics.rejected_degraded.load(Ordering::Relaxed), 1);

        // Per-shard recovery restores home routing.
        let resp = route(
            &shared,
            &post(
                "/admin/degrade",
                &[("mode", "off"), ("shard", &home.to_string())],
                b"",
            ),
        );
        assert_eq!(resp.status, 200);
        assert!(!shared.router.is_degraded(home));
        let served = route(&shared, &post("/v1/embed", &[("seed", "9")], TOGGLE_AAG));
        assert_eq!(served.status, 200);
        assert_eq!(shared.router.stats()[home].served, 1);
    }

    #[test]
    fn shard_params_are_validated() {
        let shared = shared();
        for (path, query) in [
            ("/admin/degrade", ("shard", "5")),
            ("/admin/degrade", ("shard", "many")),
            ("/admin/reload", ("shard", "5")),
        ] {
            let response = route(&shared, &post(path, &[query], b""));
            assert_eq!(response.status, 400, "{path} {query:?}");
        }
        assert!(!shared.is_degraded());
    }

    #[test]
    fn per_shard_reload_swaps_one_model_and_full_reload_shares_one() {
        let dir =
            std::env::temp_dir().join(format!("deepseq-shard-reload-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.dsqm");
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        std::fs::write(&path, model.save_binary()).expect("write checkpoint");

        let shared = shared_with(ServerOptions {
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            shards: 2,
            ..ServerOptions::default()
        });
        let before: Vec<u64> = shared
            .router
            .stats()
            .iter()
            .map(|s| s.model_generation)
            .collect();
        assert_eq!(before[0], before[1], "forked shards start on one model");

        // Canary reload: only shard 1 moves to new weights.
        let ok = route(&shared, &post("/admin/reload", &[("shard", "1")], b""));
        assert_eq!(ok.status, 200, "{:?}", String::from_utf8(ok.body));
        let after = shared.router.stats();
        assert_eq!(after[0].model_generation, before[0]);
        assert_ne!(after[1].model_generation, before[1]);

        // Full reload: both shards share one freshly decoded model.
        let ok = route(&shared, &post("/admin/reload", &[], b""));
        assert_eq!(ok.status, 200);
        let after = shared.router.stats();
        assert_eq!(after[0].model_generation, after[1].model_generation);
        assert_ne!(after[0].model_generation, before[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_gate_overflows_and_releases() {
        let metrics = Metrics::default();
        let admission = Admission::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        // Fill both slots, then the 1-deep queue, then overflow.
        assert!(matches!(
            admission.acquire(2, 1, deadline, &metrics),
            Admit::Go
        ));
        assert!(matches!(
            admission.acquire(2, 1, deadline, &metrics),
            Admit::Go
        ));
        let short = Instant::now() + Duration::from_millis(30);
        assert!(matches!(
            admission.acquire(2, 0, short, &metrics),
            Admit::QueueFull
        ));
        // A queued request whose deadline passes reports expiry.
        assert!(matches!(
            admission.acquire(2, 1, short, &metrics),
            Admit::DeadlineExpired
        ));
        admission.release(&metrics);
        admission.release(&metrics);
        assert!(admission.is_empty());
        assert_eq!(metrics.in_flight.load(Ordering::Relaxed), 0);
    }
}
