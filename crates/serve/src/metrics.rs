//! Serving metrics: counters, gauges, latency histograms, and the
//! `/metrics` text exposition.
//!
//! Everything is lock-free atomics so the hot path (one histogram insert +
//! a few counter bumps per request) costs nanoseconds, and a scrape never
//! blocks a request. The exposition follows the Prometheus text format
//! (`# TYPE` lines, `_bucket{le="…"}` cumulative histograms), which any
//! scraper — and the `serve-e2e` CI load client — can parse line by line
//! without a client library.
//!
//! The registry deliberately includes [`config_warning_count`]
//! (re-exported from [`deepseq_nn::config`]): the `DEEPSEQ_THREADS` /
//! `DEEPSEQ_KERNEL` warn-once stderr messages also surface here as a
//! `deepseq_config_warnings_total` counter, so a misconfigured deployment
//! is visible in a scrape (and in CI logs) instead of a scrolled-away log
//! line.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use deepseq_nn::trace::{StageStats, STAGE_BUCKET_BOUNDS_NS};
use deepseq_nn::PoolStats;

use crate::cache::CacheStats;
use crate::shard::ShardStat;

pub use deepseq_nn::warning_count as config_warning_count;

/// Upper bounds (seconds) of the histogram buckets, `+Inf` implied.
/// Spans 100 µs (cache hits) to 10 s (huge circuits on a loaded box).
pub const LATENCY_BUCKETS: [f64; 14] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// A fixed-bucket cumulative latency histogram (atomic, insert-only).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS.len()],
    count: AtomicU64,
    /// Sum in nanoseconds (u64 wraps after ~584 years of accumulated
    /// latency; acceptable).
    sum_nanos: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let seconds = latency.as_secs_f64();
        for (bound, bucket) in LATENCY_BUCKETS.iter().zip(&self.buckets) {
            if seconds <= *bound {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders the histogram in Prometheus text format under `name`.
    fn render(&self, out: &mut String, name: &str) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, bucket) in LATENCY_BUCKETS.iter().zip(&self.buckets) {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{bound}\"}} {}",
                bucket.load(Ordering::Relaxed)
            );
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
}

/// The server-wide metrics registry (shared by `Arc`).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_open: AtomicU64,
    /// Requests read, by endpoint.
    pub requests_embed: AtomicU64,
    /// `/healthz` requests.
    pub requests_healthz: AtomicU64,
    /// `/metrics` requests.
    pub requests_metrics: AtomicU64,
    /// Requests to any other path/method (404/405/…).
    pub requests_other: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (including 429s, counted separately below too).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (including 504s, counted separately below too).
    pub responses_5xx: AtomicU64,
    /// Requests rejected because the admission queue was full (429).
    pub rejected_queue_full: AtomicU64,
    /// Requests whose deadline expired before/at processing (504).
    pub deadline_expired: AtomicU64,
    /// Requests rejected during drain (503).
    pub rejected_draining: AtomicU64,
    /// Embed cache-misses shed with 503 while degraded.
    pub rejected_degraded: AtomicU64,
    /// Embed requests currently waiting for an admission slot (gauge).
    pub queue_depth: AtomicU64,
    /// Embed requests currently holding an admission slot (gauge).
    pub in_flight: AtomicU64,
    /// End-to-end time per embed request: admission wait + parse + engine.
    pub request_latency: LatencyHistogram,
    /// Engine processing time per served request (from the engine's
    /// served-hook, so it covers cache hits and misses alike).
    pub engine_latency: LatencyHistogram,
}

impl Metrics {
    /// Counts a response's status class.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the registry (plus the aggregated embedding-cache counters,
    /// the shared cone-memo counters, the pool's scheduler counters, the
    /// per-shard routing gauges, the per-stage span histograms, the
    /// process-wide config-warning / caught-panic / injected-fault counts)
    /// in Prometheus text format.
    pub fn render(
        &self,
        cache: &CacheStats,
        cones: &CacheStats,
        pool: &PoolStats,
        shards: &[ShardStat],
        draining: bool,
        degraded: bool,
    ) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);

        counter(
            &mut out,
            "deepseq_connections_total",
            "Connections accepted since start.",
            load(&self.connections_total),
        );
        gauge(
            &mut out,
            "deepseq_connections_open",
            "Connections currently open.",
            load(&self.connections_open) as f64,
        );
        for (name, help, value) in [
            (
                "deepseq_requests_total{endpoint=\"embed\"}",
                "deepseq_requests_total",
                load(&self.requests_embed),
            ),
            (
                "deepseq_requests_total{endpoint=\"healthz\"}",
                "",
                load(&self.requests_healthz),
            ),
            (
                "deepseq_requests_total{endpoint=\"metrics\"}",
                "",
                load(&self.requests_metrics),
            ),
            (
                "deepseq_requests_total{endpoint=\"other\"}",
                "",
                load(&self.requests_other),
            ),
        ] {
            if !help.is_empty() {
                let _ = writeln!(out, "# HELP {help} Requests read, by endpoint.");
                let _ = writeln!(out, "# TYPE {help} counter");
            }
            let _ = writeln!(out, "{name} {value}");
        }
        for (label, value) in [
            ("2xx", load(&self.responses_2xx)),
            ("4xx", load(&self.responses_4xx)),
            ("5xx", load(&self.responses_5xx)),
        ] {
            if label == "2xx" {
                let _ = writeln!(
                    out,
                    "# HELP deepseq_responses_total Responses by status class."
                );
                let _ = writeln!(out, "# TYPE deepseq_responses_total counter");
            }
            let _ = writeln!(out, "deepseq_responses_total{{class=\"{label}\"}} {value}");
        }
        counter(
            &mut out,
            "deepseq_rejected_queue_full_total",
            "Embed requests rejected with 429 (admission queue full).",
            load(&self.rejected_queue_full),
        );
        counter(
            &mut out,
            "deepseq_deadline_expired_total",
            "Embed requests rejected with 504 (deadline expired).",
            load(&self.deadline_expired),
        );
        counter(
            &mut out,
            "deepseq_rejected_draining_total",
            "Embed requests rejected with 503 (server draining).",
            load(&self.rejected_draining),
        );
        counter(
            &mut out,
            "deepseq_rejected_degraded_total",
            "Embed cache-misses shed with 503 while degraded.",
            load(&self.rejected_degraded),
        );
        gauge(
            &mut out,
            "deepseq_queue_depth",
            "Embed requests waiting for an admission slot.",
            load(&self.queue_depth) as f64,
        );
        gauge(
            &mut out,
            "deepseq_in_flight",
            "Embed requests currently being processed.",
            load(&self.in_flight) as f64,
        );
        gauge(
            &mut out,
            "deepseq_draining",
            "1 while the server is draining, else 0.",
            if draining { 1.0 } else { 0.0 },
        );
        gauge(
            &mut out,
            "deepseq_degraded",
            "1 while the server is in degraded (cache-only) mode, else 0.",
            if degraded { 1.0 } else { 0.0 },
        );

        counter(
            &mut out,
            "deepseq_cache_hits_total",
            "Embedding-cache hits.",
            cache.hits,
        );
        counter(
            &mut out,
            "deepseq_cache_misses_total",
            "Embedding-cache misses.",
            cache.misses,
        );
        counter(
            &mut out,
            "deepseq_cache_evictions_total",
            "Embedding-cache evictions.",
            cache.evictions,
        );
        gauge(
            &mut out,
            "deepseq_cache_entries",
            "Embedding-cache resident entries.",
            cache.entries as f64,
        );
        gauge(
            &mut out,
            "deepseq_cache_capacity",
            "Embedding-cache capacity.",
            cache.capacity as f64,
        );
        gauge(
            &mut out,
            "deepseq_cache_hit_ratio",
            "Embedding-cache hit ratio in [0, 1] (0 before any lookup).",
            cache.hit_ratio(),
        );

        counter(
            &mut out,
            "deepseq_cone_hits_total",
            "Cone-memo hits (fanin-cone states reused across requests).",
            cones.hits,
        );
        counter(
            &mut out,
            "deepseq_cone_misses_total",
            "Cone-memo misses (cones recomputed).",
            cones.misses,
        );
        counter(
            &mut out,
            "deepseq_cone_evictions_total",
            "Cone-memo evictions.",
            cones.evictions,
        );
        gauge(
            &mut out,
            "deepseq_cone_entries",
            "Cone-memo resident entries.",
            cones.entries as f64,
        );
        gauge(
            &mut out,
            "deepseq_cone_capacity",
            "Cone-memo capacity (0 disables cone reuse).",
            cones.capacity as f64,
        );
        gauge(
            &mut out,
            "deepseq_cone_hit_ratio",
            "Cone-memo hit ratio in [0, 1] (0 before any lookup).",
            cones.hit_ratio(),
        );

        render_shards(&mut out, shards);

        gauge(
            &mut out,
            "deepseq_pool_threads",
            "Worker-pool parallelism (workers + caller).",
            pool.threads as f64,
        );
        counter(
            &mut out,
            "deepseq_pool_steals_total",
            "Pool jobs dequeued from another worker's queue.",
            pool.steals,
        );
        counter(
            &mut out,
            "deepseq_pool_parks_total",
            "Times a pool worker parked on the idle condvar.",
            pool.parks,
        );
        counter(
            &mut out,
            "deepseq_pool_wakeups_total",
            "Parked pool workers woken by a job notification.",
            pool.wakeups,
        );

        counter(
            &mut out,
            "deepseq_config_warnings_total",
            "Configuration warnings (DEEPSEQ_THREADS / DEEPSEQ_KERNEL) since start.",
            config_warning_count(),
        );
        counter(
            &mut out,
            "deepseq_panics_caught_total",
            "Worker-task panics caught at the engine boundary.",
            crate::engine::panics_caught(),
        );
        let _ = writeln!(
            out,
            "# HELP deepseq_faults_injected_total Injected faults by point \
             (populated while DEEPSEQ_FAULT is armed)."
        );
        let _ = writeln!(out, "# TYPE deepseq_faults_injected_total counter");
        for (point, value) in deepseq_nn::fault::injected_counts() {
            let _ = writeln!(
                out,
                "deepseq_faults_injected_total{{point=\"{point}\"}} {value}"
            );
        }

        self.request_latency
            .render(&mut out, "deepseq_http_request_duration_seconds");
        self.engine_latency
            .render(&mut out, "deepseq_engine_duration_seconds");
        render_stage_seconds(&mut out, &deepseq_nn::trace::stage_stats());
        out
    }
}

/// Renders the per-shard routing gauges/counters as `deepseq_shard_*`
/// families with a `shard` label — one row per shard so an operator can
/// see exactly which shard is degraded, hot, or absorbing failovers.
fn render_shards(out: &mut String, shards: &[ShardStat]) {
    /// Metric name, type, help text, and the per-shard value extractor.
    type ShardRow = (
        &'static str,
        &'static str,
        &'static str,
        fn(&ShardStat) -> u64,
    );
    let rows: [ShardRow; 7] = [
        (
            "deepseq_shard_degraded",
            "gauge",
            "1 while the shard is degraded (cache-only), else 0.",
            |s| u64::from(s.degraded),
        ),
        (
            "deepseq_shard_in_flight",
            "gauge",
            "Requests currently executing on the shard.",
            |s| s.in_flight,
        ),
        (
            "deepseq_shard_served_total",
            "counter",
            "Requests served by the shard since start.",
            |s| s.served,
        ),
        (
            "deepseq_shard_rerouted_total",
            "counter",
            "Requests the shard absorbed from degraded shards.",
            |s| s.rerouted,
        ),
        (
            "deepseq_shard_cache_hits_total",
            "counter",
            "Embedding-cache hits on the shard.",
            |s| s.cache.hits,
        ),
        (
            "deepseq_shard_cache_misses_total",
            "counter",
            "Embedding-cache misses on the shard.",
            |s| s.cache.misses,
        ),
        (
            "deepseq_shard_model_generation",
            "gauge",
            "Generation of the model the shard currently serves.",
            |s| s.model_generation,
        ),
    ];
    for (name, type_, help, value) in rows {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {type_}");
        for stat in shards {
            let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", stat.index, value(stat));
        }
    }
}

/// Renders the per-stage span histograms as one `deepseq_stage_seconds`
/// family with a `stage` label, plus p50/p95 gauges per stage. Every
/// [`SpanKind`](deepseq_nn::SpanKind) appears unconditionally (all-zero
/// while tracing is off), so scrapers and the exposition contract tests
/// never depend on the `DEEPSEQ_TRACE` switch.
fn render_stage_seconds(out: &mut String, stages: &[StageStats]) {
    let _ = writeln!(
        out,
        "# HELP deepseq_stage_seconds Span duration per pipeline stage \
         (populated while DEEPSEQ_TRACE is on)."
    );
    let _ = writeln!(out, "# TYPE deepseq_stage_seconds histogram");
    for stage in stages {
        let name = stage.kind.name();
        let mut cumulative = 0u64;
        for (&bound_ns, &n) in STAGE_BUCKET_BOUNDS_NS.iter().zip(&stage.buckets) {
            cumulative += n;
            let _ = writeln!(
                out,
                "deepseq_stage_seconds_bucket{{stage=\"{name}\",le=\"{}\"}} {cumulative}",
                bound_ns as f64 / 1e9
            );
        }
        let _ = writeln!(
            out,
            "deepseq_stage_seconds_bucket{{stage=\"{name}\",le=\"+Inf\"}} {}",
            stage.count
        );
        let _ = writeln!(
            out,
            "deepseq_stage_seconds_sum{{stage=\"{name}\"}} {}",
            stage.sum_ns as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "deepseq_stage_seconds_count{{stage=\"{name}\"}} {}",
            stage.count
        );
    }
    for (metric, q) in [
        ("deepseq_stage_p50_seconds", 0.5),
        ("deepseq_stage_p95_seconds", 0.95),
    ] {
        let _ = writeln!(
            out,
            "# HELP {metric} Approximate per-stage span duration quantile."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for stage in stages {
            let _ = writeln!(
                out,
                "{metric}{{stage=\"{}\"}} {}",
                stage.kind.name(),
                stage.quantile(q)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(50)); // ≤ every bucket
        h.observe(Duration::from_millis(3)); // ≤ 5ms …
        h.observe(Duration::from_secs(60)); // +Inf only
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render(&mut out, "x");
        assert!(out.contains("x_bucket{le=\"0.0001\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"0.005\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"2.5\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_count 3"), "{out}");
    }

    #[test]
    fn render_exposes_the_required_fields() {
        let m = Metrics::default();
        m.requests_embed.fetch_add(7, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(429);
        m.count_status(504);
        m.queue_depth.store(3, Ordering::Relaxed);
        m.in_flight.store(2, Ordering::Relaxed);
        m.request_latency.observe(Duration::from_millis(1));
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            entries: 4,
            capacity: 16,
        };
        let cones = CacheStats {
            hits: 9,
            misses: 3,
            evictions: 2,
            entries: 7,
            capacity: 1024,
        };
        let pool = PoolStats {
            threads: 4,
            steals: 11,
            parks: 5,
            wakeups: 3,
        };
        let shards = vec![
            ShardStat {
                index: 0,
                degraded: false,
                in_flight: 1,
                served: 12,
                rerouted: 0,
                cache,
                model_generation: 1,
            },
            ShardStat {
                index: 1,
                degraded: true,
                in_flight: 0,
                served: 4,
                rerouted: 2,
                cache,
                model_generation: 3,
            },
        ];
        let text = m.render(&cache, &cones, &pool, &shards, true, false);
        for needle in [
            "deepseq_requests_total{endpoint=\"embed\"} 7",
            "deepseq_responses_total{class=\"2xx\"} 1",
            "deepseq_responses_total{class=\"4xx\"} 1",
            "deepseq_responses_total{class=\"5xx\"} 1",
            "deepseq_queue_depth 3",
            "deepseq_in_flight 2",
            "deepseq_draining 1",
            "deepseq_degraded 0",
            "deepseq_rejected_degraded_total 0",
            "deepseq_cache_hit_ratio 0.75",
            "deepseq_cone_hits_total 9",
            "deepseq_cone_misses_total 3",
            "deepseq_cone_evictions_total 2",
            "deepseq_cone_entries 7",
            "deepseq_cone_capacity 1024",
            "deepseq_cone_hit_ratio 0.75",
            "deepseq_shard_degraded{shard=\"0\"} 0",
            "deepseq_shard_degraded{shard=\"1\"} 1",
            "deepseq_shard_in_flight{shard=\"0\"} 1",
            "deepseq_shard_served_total{shard=\"0\"} 12",
            "deepseq_shard_rerouted_total{shard=\"1\"} 2",
            "deepseq_shard_cache_hits_total{shard=\"1\"} 3",
            "deepseq_shard_model_generation{shard=\"1\"} 3",
            "deepseq_config_warnings_total",
            "deepseq_panics_caught_total",
            "deepseq_faults_injected_total{point=\"checkpoint_read\"}",
            "deepseq_faults_injected_total{point=\"engine_reply_drop\"}",
            "deepseq_http_request_duration_seconds_bucket{le=\"+Inf\"} 1",
            "deepseq_pool_threads 4",
            "deepseq_pool_steals_total 11",
            "deepseq_pool_parks_total 5",
            "deepseq_pool_wakeups_total 3",
            "deepseq_stage_seconds_bucket{stage=\"gemm\",le=\"+Inf\"}",
            "deepseq_stage_seconds_count{stage=\"queue_wait\"}",
            "deepseq_stage_p50_seconds{stage=\"forward\"}",
            "deepseq_stage_p95_seconds{stage=\"cache_lookup\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The hit-ratio line parses as a float — the contract the CI load
        // client enforces over the wire.
        let ratio_line = text
            .lines()
            .find(|l| l.starts_with("deepseq_cache_hit_ratio "))
            .expect("hit ratio line");
        let value: f64 = ratio_line
            .split_whitespace()
            .nth(1)
            .expect("value")
            .parse()
            .expect("parses");
        assert!((value - 0.75).abs() < 1e-12);
    }
}
