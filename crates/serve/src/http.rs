//! Hand-rolled HTTP/1.1 request reading and response writing.
//!
//! The build is offline (no axum/hyper), so the network front door speaks
//! a deliberately small, strictly validated slice of HTTP/1.1 over
//! `std::net` primitives:
//!
//! * request line + headers, terminated by an empty line (CRLF or bare LF);
//! * bodies sized by `Content-Length` only (`Transfer-Encoding` is
//!   rejected — chunked uploads are out of scope for a JSON inference API);
//! * keep-alive by default, honoring `Connection: close`;
//! * `Expect: 100-continue` answered before the body is read;
//! * hard caps on head and body size, so a misbehaving client cannot make
//!   the server buffer unbounded memory.
//!
//! Anything malformed or over the caps maps to a [`HttpError`] that the
//! server layer renders as a `400` with a JSON error body — a bad request
//! must never tear the connection down silently (see
//! `crates/serve/tests/http_e2e.rs` for the negative-path contract).

use std::fmt;
use std::io::{BufRead, Write};

/// Default cap on the request line + headers, in bytes.
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on request bodies, in bytes (a ~100k-line AIGER fits).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Size caps applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is rejected
    /// before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed cleanly before a request line arrived —
    /// normal end of a keep-alive connection, not a protocol error.
    Closed,
    /// Malformed request line, header, or length field — or a head/body
    /// over the configured caps. Maps to status `400`.
    BadRequest(String),
    /// A protocol feature this server deliberately does not implement
    /// (currently only `Transfer-Encoding`). Maps to status `501`.
    NotImplemented(String),
    /// The underlying socket failed or timed out mid-request.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::NotImplemented(msg) => write!(f, "not implemented: {msg}"),
            HttpError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one request head + body from `reader`.
///
/// When the head announces `Expect: 100-continue`, an interim
/// `100 Continue` is written to `writer` before the body is read (curl
/// sends the expectation for multi-kilobyte uploads and stalls without the
/// interim response).
pub fn read_request(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    limits: &HttpLimits,
) -> Result<HttpRequest, HttpError> {
    read_request_with(reader, writer, limits, |_| {})
}

/// [`read_request`] with an `on_head` hook, called once after the head is
/// parsed and validated but before any body byte is read.
///
/// The hook is how the server distinguishes *idle* time (waiting for the
/// next request line on a keep-alive connection) from *mid-request* time
/// (a client trickling a `Content-Length` body): it fires exactly at that
/// boundary, so the caller can switch the socket from its idle-keepalive
/// timeout to the request's remaining deadline budget.
pub fn read_request_with(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    limits: &HttpLimits,
    on_head: impl FnOnce(&HttpRequest),
) -> Result<HttpRequest, HttpError> {
    let head = read_head(reader, limits.max_head_bytes)?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method {method:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = parse_target(target)?;
    let mut request = HttpRequest {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented(
            "Transfer-Encoding is not supported; send a Content-Length body".into(),
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("malformed Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BadRequest(format!(
            "body of {content_length} bytes exceeds the {} byte limit",
            limits.max_body_bytes
        )));
    }
    on_head(&request);
    if content_length > 0 {
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        {
            writer
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .and_then(|()| writer.flush())
                .map_err(|e| HttpError::Io(e.to_string()))?;
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(|e| {
            HttpError::BadRequest(format!(
                "body shorter than Content-Length {content_length}: {e}"
            ))
        })?;
        request.body = body;
    }
    Ok(request)
}

/// Reads up to and including the blank line terminating the head; `cap`
/// bounds the buffered bytes. Returns the head without its terminator.
fn read_head(reader: &mut impl BufRead, cap: usize) -> Result<String, HttpError> {
    let mut head: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        };
        if available.is_empty() {
            return if head.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::BadRequest(
                    "connection closed mid-request head".into(),
                ))
            };
        }
        // Consume up to (and including) the first newline of this chunk;
        // the head terminator check below works line by line.
        let take = match available.iter().position(|&b| b == b'\n') {
            Some(at) => at + 1,
            None => available.len(),
        };
        head.extend_from_slice(&available[..take]);
        reader.consume(take);
        if head.len() > cap {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds the {cap} byte limit"
            )));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            let text = String::from_utf8(head)
                .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
            return Ok(text.trim_end_matches(['\r', '\n']).to_string());
        }
        // A lone newline first line (empty request line) is malformed.
        if head == b"\r\n" || head == b"\n" {
            return Err(HttpError::BadRequest("empty request line".into()));
        }
    }
}

/// Splits a request target into path and decoded query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target {target:?} is not an absolute path"
        )));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = Vec::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((percent_decode(key)?, percent_decode(value)?));
    }
    Ok((percent_decode(path)?, query))
}

/// Decodes `%XX` escapes and `+`-for-space in a query component.
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        return Err(HttpError::BadRequest(format!(
                            "malformed percent escape in {s:?}"
                        )))
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::BadRequest(format!("percent-decoded {s:?} is not UTF-8")))
}

/// One response to serialize.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (`200`, `400`, …).
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra `(name, value)` headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Announce + perform connection close after this response.
    pub close: bool,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse::json(
            status,
            format!("{{\"error\":\"{}\"}}", crate::json::escape(message)),
        )
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// Returns `self` with the close flag set.
    pub fn closing(mut self) -> HttpResponse {
        self.close = true;
        self
    }

    /// Returns `self` with an extra header appended.
    pub fn with_header(mut self, name: &str, value: String) -> HttpResponse {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

/// Canonical reason phrase of the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes `response` onto `writer` (status line, headers,
/// `Content-Length`, body) and flushes.
pub fn write_response(writer: &mut impl Write, response: &HttpResponse) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if response.close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<HttpRequest, HttpError> {
        parse_limited(raw, &HttpLimits::default())
    }

    fn parse_limited(raw: &[u8], limits: &HttpLimits) -> Result<HttpRequest, HttpError> {
        let mut reader = Cursor::new(raw.to_vec());
        let mut sink = Vec::new();
        read_request(&mut reader, &mut sink, limits)
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /v1/embed?p1=0.25&name=a%20b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/embed");
        assert_eq!(req.query_param("p1"), Some("0.25"));
        assert_eq!(req.query_param("name"), Some("a b"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/embed HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn bare_lf_heads_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_closed_not_bad_request() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1 EXTRA\r\n\r\n",
            b"GET /x SMTP/1.0\r\n\r\n",
            b"G=T /x HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn malformed_headers_and_lengths_are_rejected() {
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Truncated body: fewer bytes than announced.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            parse_limited(long_target.as_bytes(), &limits),
            Err(HttpError::BadRequest(_))
        ));
        // Over-cap Content-Length is rejected before any body read.
        assert!(matches!(
            parse_limited(
                b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
                &limits
            ),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn transfer_encoding_is_not_implemented() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::NotImplemented(_))
        ));
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let mut reader = Cursor::new(
            b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok".to_vec(),
        );
        let mut interim = Vec::new();
        let req = read_request(&mut reader, &mut interim, &HttpLimits::default()).unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn on_head_fires_after_the_head_but_before_the_body() {
        let mut reader =
            Cursor::new(b"POST /v1/embed HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec());
        let mut sink = Vec::new();
        let mut seen_at = None;
        let req = read_request_with(&mut reader, &mut sink, &HttpLimits::default(), |head| {
            assert_eq!(head.path, "/v1/embed");
            assert!(head.body.is_empty(), "hook must run before the body read");
            seen_at = Some(head.header("content-length").unwrap().to_string());
        })
        .unwrap();
        assert_eq!(seen_at.as_deref(), Some("5"));
        assert_eq!(req.body, b"hello");
        // Malformed heads never reach the hook.
        let mut reader = Cursor::new(b"GARBAGE\r\n\r\n".to_vec());
        let mut fired = false;
        let result = read_request_with(&mut reader, &mut sink, &HttpLimits::default(), |_| {
            fired = true;
        });
        assert!(result.is_err());
        assert!(!fired);
    }

    #[test]
    fn responses_carry_length_and_connection_headers() {
        let mut out = Vec::new();
        write_response(&mut out, &HttpResponse::json(200, "{}").closing()).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let resp = HttpResponse::error(429, "queue full").with_header("retry-after", "1".into());
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("HTTP/1.1 429 Too Many Requests"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%2Fb+c").unwrap(), "a/b c");
        assert!(percent_decode("bad%2").is_err());
        assert!(percent_decode("bad%zz").is_err());
    }
}
