//! Structural-hash sharding across engine shards.
//!
//! A [`ShardRouter`] owns N [`Engine`] shards forked off one primary
//! ([`Engine::fork_shard`]): they share the worker pool and the cone memo,
//! but each has its own embedding cache, request counter and — crucially —
//! its own model slot, so `/admin/reload` and degraded mode apply **per
//! shard**. Requests are partitioned by the circuit's canonical
//! [`structural_hash`](deepseq_netlist::structural_hash): one circuit
//! always lands on the same home shard (maximizing its exact-cache hits),
//! while near-duplicate circuits that land elsewhere still reuse component
//! states through the shared cone memo.
//!
//! Routing degrades gracefully: a degraded shard is skipped by probing the
//! next shards in ring order (the request counts as *rerouted* on the shard
//! that absorbs it), and only when **all** shards are degraded does
//! [`ShardRouter::route`] return `None` — the HTTP edge then serves
//! cache-only from the home shard, exactly like single-engine degraded
//! mode.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::cache::CacheStats;
use crate::engine::Engine;

/// One shard: an engine plus its routing state.
struct Shard {
    engine: Engine,
    degraded: AtomicBool,
    in_flight: AtomicU64,
    rerouted: AtomicU64,
}

/// A point-in-time snapshot of one shard, for `/metrics` and tests.
#[derive(Debug, Clone)]
pub struct ShardStat {
    /// Shard index (0-based).
    pub index: usize,
    /// True if the shard is in degraded (cache-only) mode.
    pub degraded: bool,
    /// Requests currently executing on the shard.
    pub in_flight: u64,
    /// Requests served by the shard since start.
    pub served: u64,
    /// Requests absorbed from degraded shards (failover landings).
    pub rerouted: u64,
    /// The shard's embedding-cache counters.
    pub cache: CacheStats,
    /// Generation of the model the shard currently serves.
    pub model_generation: u64,
}

/// Routing outcome of [`ShardRouter::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The shard chosen to execute the request.
    pub shard: usize,
    /// The structural-hash home shard (differs from `shard` after
    /// failover).
    pub home: usize,
}

/// Partitions requests across engine shards by structural hash, with
/// ring-probing failover past degraded shards (see the
/// [module docs](self)).
pub struct ShardRouter {
    shards: Vec<Shard>,
}

impl ShardRouter {
    /// Builds a router of `count` shards (clamped to at least 1): the
    /// primary engine becomes shard 0 and the rest are forked from it.
    pub fn new(primary: Engine, count: usize) -> ShardRouter {
        let count = count.max(1);
        let mut shards = Vec::with_capacity(count);
        for _ in 1..count {
            shards.push(Shard::new(primary.fork_shard()));
        }
        shards.insert(0, Shard::new(primary));
        ShardRouter { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false — a router holds at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The home shard of a structural hash.
    pub fn home(&self, structural_hash: u64) -> usize {
        (structural_hash % self.shards.len() as u64) as usize
    }

    /// Picks the serving shard for a structural hash: the home shard if
    /// healthy, else the next healthy shard in ring order (counted as a
    /// reroute on the absorber). `None` when every shard is degraded —
    /// serve cache-only from [`RouteDecision::home`] via
    /// [`ShardRouter::engine`] then.
    pub fn route(&self, structural_hash: u64) -> Option<RouteDecision> {
        let n = self.shards.len();
        let home = self.home(structural_hash);
        for probe in 0..n {
            let shard = (home + probe) % n;
            if !self.shards[shard].degraded.load(Ordering::Relaxed) {
                if shard != home {
                    self.shards[shard].rerouted.fetch_add(1, Ordering::Relaxed);
                }
                return Some(RouteDecision { shard, home });
            }
        }
        None
    }

    /// The engine of one shard (panics on an out-of-range index).
    pub fn engine(&self, index: usize) -> &Engine {
        &self.shards[index].engine
    }

    /// Sets a shard's degraded flag, returning the previous value.
    /// Out-of-range indices return `None`.
    pub fn set_degraded(&self, index: usize, degraded: bool) -> Option<bool> {
        self.shards
            .get(index)
            .map(|s| s.degraded.swap(degraded, Ordering::Relaxed))
    }

    /// True if the shard is degraded (out-of-range indices read as false).
    pub fn is_degraded(&self, index: usize) -> bool {
        self.shards
            .get(index)
            .is_some_and(|s| s.degraded.load(Ordering::Relaxed))
    }

    /// True when every shard is degraded (the whole service is
    /// cache-only).
    pub fn all_degraded(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.degraded.load(Ordering::Relaxed))
    }

    /// Marks a request in flight on `index`; the guard decrements on drop
    /// (including on panic unwinds through the serving path).
    pub fn track(&self, index: usize) -> InFlightGuard<'_> {
        self.shards[index].in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard {
            counter: &self.shards[index].in_flight,
        }
    }

    /// Point-in-time snapshot of every shard.
    pub fn stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, s)| ShardStat {
                index,
                degraded: s.degraded.load(Ordering::Relaxed),
                in_flight: s.in_flight.load(Ordering::Relaxed),
                served: s.engine.requests_served(),
                rerouted: s.rerouted.load(Ordering::Relaxed),
                cache: s.engine.cache_stats(),
                model_generation: s.engine.model_generation(),
            })
            .collect()
    }
}

impl Shard {
    fn new(engine: Engine) -> Shard {
        Shard {
            engine,
            degraded: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
        }
    }
}

/// RAII in-flight marker from [`ShardRouter::track`].
pub struct InFlightGuard<'a> {
    counter: &'a AtomicU64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineOptions, ServeRequest};
    use crate::infer::InferenceModel;
    use deepseq_core::{DeepSeq, DeepSeqConfig};
    use deepseq_netlist::{structural_hash, SeqAig};
    use deepseq_nn::Pool;
    use deepseq_sim::Workload;
    use std::sync::Arc;

    fn router(count: usize) -> ShardRouter {
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        let primary = Engine::with_pool(
            InferenceModel::from_model(&model).unwrap(),
            EngineOptions {
                workers: 2,
                cache_capacity: 8,
                cone_capacity: 64,
            },
            Arc::new(Pool::new(2)),
        );
        ShardRouter::new(primary, count)
    }

    /// A ripple-counter family: member `i` has `i+1` toggle stages, so the
    /// structural hashes differ.
    fn counter(stages: usize) -> SeqAig {
        let mut aig = SeqAig::new("ctr");
        let mut carry = None;
        for s in 0..stages {
            let q = aig.add_ff(format!("q{s}"), false);
            let nq = aig.add_not(q);
            let d = match carry {
                None => nq,
                Some(c) => aig.add_and(nq, c),
            };
            aig.connect_ff(q, d).unwrap();
            carry = Some(match carry {
                None => q,
                Some(c) => aig.add_and(q, c),
            });
        }
        aig
    }

    #[test]
    fn routing_is_deterministic_and_spreads_by_hash() {
        let router = router(3);
        assert_eq!(router.len(), 3);
        let homes: Vec<usize> = (1..=24)
            .map(|s| router.route(structural_hash(&counter(s))).unwrap().shard)
            .collect();
        // Same circuit ⇒ same shard.
        assert_eq!(
            router.route(structural_hash(&counter(3))).unwrap().shard,
            homes[2]
        );
        // The hash spreads the family across more than one shard.
        assert!(homes.iter().any(|&s| s != homes[0]));
        // Healthy routing never reroutes.
        assert!(router.stats().iter().all(|s| s.rerouted == 0));
    }

    #[test]
    fn degraded_shards_are_probed_past_in_ring_order() {
        let router = router(3);
        // Find a hash homed on shard 1, then degrade shard 1.
        let hash = (1..200)
            .map(|s| structural_hash(&counter(s)))
            .find(|h| router.home(*h) == 1)
            .unwrap();
        assert_eq!(router.set_degraded(1, true), Some(false));
        let decision = router.route(hash).unwrap();
        assert_eq!(decision.home, 1);
        assert_eq!(decision.shard, 2); // next in ring order
        assert_eq!(router.stats()[2].rerouted, 1);

        // Degrade shard 2 as well: the probe wraps to shard 0.
        router.set_degraded(2, true);
        assert_eq!(router.route(hash).unwrap().shard, 0);

        // All degraded ⇒ no compute shard at all.
        router.set_degraded(0, true);
        assert!(router.all_degraded());
        assert!(router.route(hash).is_none());

        // Recovery restores home routing.
        router.set_degraded(1, false);
        assert_eq!(router.route(hash).unwrap().shard, 1);
    }

    #[test]
    fn in_flight_guard_counts_and_releases() {
        let router = router(2);
        {
            let _a = router.track(0);
            let _b = router.track(0);
            assert_eq!(router.stats()[0].in_flight, 2);
            assert_eq!(router.stats()[1].in_flight, 0);
        }
        assert_eq!(router.stats()[0].in_flight, 0);
    }

    #[test]
    fn shards_serve_independently_and_share_the_cone_memo() {
        let router = router(2);
        let aig = counter(2);
        let make = |id| ServeRequest {
            id,
            aig: aig.clone(),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        let r0 = router.engine(0).submit(make(0)).wait();
        let cold = r0.result.unwrap();
        assert!(!cold.cache_hit);
        // The other shard has a cold embedding cache, but every component
        // of the same circuit hits the shared cone memo.
        let r1 = router.engine(1).submit(make(1)).wait();
        let warm = r1.result.unwrap();
        assert!(!warm.cache_hit);
        assert!(warm.cones_reused > 0);
        // Predictions are bitwise identical across the two paths.
        assert_eq!(cold.data.predictions, warm.data.predictions);
        assert_eq!(cold.data.embedding.data(), warm.data.embedding.data());
        let stats = router.stats();
        assert_eq!(stats[0].served, 1);
        assert_eq!(stats[1].served, 1);
        assert_eq!(stats[0].model_generation, stats[1].model_generation);
    }

    #[test]
    fn per_shard_reload_does_not_disturb_other_shards() {
        let router = router(2);
        let aig = counter(1);
        let make = |id| ServeRequest {
            id,
            aig: aig.clone(),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        router.engine(0).submit(make(0)).wait().result.unwrap();
        router.engine(1).submit(make(1)).wait().result.unwrap();
        let gen_before = router.stats()[1].model_generation;

        let fresh = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        router
            .engine(0)
            .swap_model(InferenceModel::from_model(&fresh).unwrap());
        let stats = router.stats();
        assert_ne!(stats[0].model_generation, stats[1].model_generation);
        assert_eq!(stats[1].model_generation, gen_before);
        // Shard 0's exact cache was cleared by the reload; shard 1's kept.
        assert!(router.engine(0).lookup_cached(&make(2)).is_none());
        assert!(router.engine(1).lookup_cached(&make(3)).is_some());
    }
}
