//! Minimal JSON emission for serving responses (no serialization
//! dependencies, matching the repository's offline constraint).

use std::fmt::Write;

use deepseq_core::Predictions;

use crate::engine::ServeResponse;

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn number(v: f32) -> String {
    if v.is_finite() {
        // Rust's Display prints the shortest exactly-round-tripping decimal,
        // which is always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn matrix_rows(rows: usize, cols: usize, get: impl Fn(usize, usize) -> f32) -> String {
    let mut out = String::from("[");
    for r in 0..rows {
        if r > 0 {
            out.push(',');
        }
        if cols == 1 {
            out.push_str(&number(get(r, 0)));
        } else {
            out.push('[');
            for c in 0..cols {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&number(get(r, c)));
            }
            out.push(']');
        }
    }
    out.push(']');
    out
}

/// Renders one response as a single JSON object (one line, no trailing
/// newline). Full mode includes the per-node prediction matrices; summary
/// mode only their means.
pub fn response_to_json(response: &ServeResponse, summary: bool) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"id\":{},\"design\":\"{}\"",
        response.id,
        escape(&response.design)
    );
    match &response.result {
        Err(err) => {
            let _ = write!(out, ",\"error\":\"{}\"", escape(&err.to_string()));
        }
        Ok(served) => {
            let preds = &served.data.predictions;
            let _ = write!(
                out,
                ",\"nodes\":{},\"cache_hit\":{}",
                served.num_nodes, served.cache_hit
            );
            if summary {
                let _ = write!(
                    out,
                    ",\"mean_tr\":{},\"mean_lg\":{}",
                    number(preds.tr.mean_abs()),
                    number(preds.lg.mean_abs())
                );
            } else {
                let _ = write!(out, ",\"tr\":{}", predictions_tr(preds));
                let _ = write!(out, ",\"lg\":{}", predictions_lg(preds));
            }
            let emb = &served.data.embedding;
            let _ = write!(
                out,
                ",\"embedding\":{}",
                matrix_rows(1, emb.cols(), |_, c| emb.get(0, c))
            );
        }
    }
    out.push('}');
    out
}

fn predictions_tr(preds: &Predictions) -> String {
    matrix_rows(preds.tr.rows(), preds.tr.cols(), |r, c| preds.tr.get(r, c))
}

fn predictions_lg(preds: &Predictions) -> String {
    matrix_rows(preds.lg.rows(), preds.lg.cols(), |r, c| preds.lg.get(r, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f32::NAN), "null");
        assert_eq!(number(f32::INFINITY), "null");
    }

    #[test]
    fn matrix_rendering_flattens_columns() {
        assert_eq!(matrix_rows(2, 1, |r, _| r as f32), "[0,1]");
        assert_eq!(
            matrix_rows(2, 2, |r, c| (r * 2 + c) as f32),
            "[[0,1],[2,3]]"
        );
    }
}
