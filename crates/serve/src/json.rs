//! Minimal JSON emission for serving responses (no serialization
//! dependencies, matching the repository's offline constraint).

use std::fmt::Write;

use deepseq_core::Predictions;

use crate::engine::ServeResponse;

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn number(v: f32) -> String {
    if v.is_finite() {
        // Rust's Display prints the shortest exactly-round-tripping decimal,
        // which is always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn matrix_rows(rows: usize, cols: usize, get: impl Fn(usize, usize) -> f32) -> String {
    let mut out = String::from("[");
    for r in 0..rows {
        if r > 0 {
            out.push(',');
        }
        if cols == 1 {
            out.push_str(&number(get(r, 0)));
        } else {
            out.push('[');
            for c in 0..cols {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&number(get(r, c)));
            }
            out.push(']');
        }
    }
    out.push(']');
    out
}

/// Renders one response as a single JSON object (one line, no trailing
/// newline). Full mode includes the per-node prediction matrices; summary
/// mode only their means.
pub fn response_to_json(response: &ServeResponse, summary: bool) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"id\":{},\"design\":\"{}\"",
        response.id,
        escape(&response.design)
    );
    match &response.result {
        Err(err) => {
            let _ = write!(out, ",\"error\":\"{}\"", escape(&err.to_string()));
        }
        Ok(served) => {
            let preds = &served.data.predictions;
            let _ = write!(
                out,
                ",\"nodes\":{},\"cache_hit\":{}",
                served.num_nodes, served.cache_hit
            );
            if summary {
                let _ = write!(
                    out,
                    ",\"mean_tr\":{},\"mean_lg\":{}",
                    number(preds.tr.mean_abs()),
                    number(preds.lg.mean_abs())
                );
            } else {
                let _ = write!(out, ",\"tr\":{}", predictions_tr(preds));
                let _ = write!(out, ",\"lg\":{}", predictions_lg(preds));
            }
            let emb = &served.data.embedding;
            let _ = write!(
                out,
                ",\"embedding\":{}",
                matrix_rows(1, emb.cols(), |_, c| emb.get(0, c))
            );
        }
    }
    out.push('}');
    out
}

/// Hard cap on spans rendered by [`trace_tree_json`] — the parent search
/// is quadratic, and a debug endpoint should stay cheap even against a
/// trace that filled every ring buffer.
const MAX_TREE_SPANS: usize = 10_000;

/// Renders one trace's records (from
/// [`trace::collect`](deepseq_nn::trace::collect), already sorted
/// start-ascending with longer spans first) as a span **tree**: each span
/// is nested under the tightest enclosing span, with same-thread
/// enclosures preferred — so a request's levels sit under its forward
/// pass even when a worker ran them.
pub fn trace_tree_json(trace_id: u64, records: &[deepseq_nn::SpanRecord]) -> String {
    let truncated = records.len() > MAX_TREE_SPANS;
    let records = &records[..records.len().min(MAX_TREE_SPANS)];
    let interval = |i: usize| (records[i].start_ns, records[i].start_ns + records[i].dur_ns);
    // Tightest strict enclosure; identical intervals stay siblings (no
    // parent chains between indistinguishable spans).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..records.len() {
        let (si, ei) = interval(i);
        let mut best: Option<usize> = None;
        for j in 0..records.len() {
            if j == i {
                continue;
            }
            let (sj, ej) = interval(j);
            if !(sj <= si && ej >= ei && (sj, ej) != (si, ei)) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let same_j = records[j].thread == records[i].thread;
                    let same_b = records[b].thread == records[i].thread;
                    if same_j != same_b {
                        same_j
                    } else {
                        records[j].dur_ns < records[b].dur_ns
                    }
                }
            };
            if better {
                best = Some(j);
            }
        }
        match best {
            Some(parent) => children[parent].push(i),
            None => roots.push(i),
        }
    }

    fn emit(
        out: &mut String,
        records: &[deepseq_nn::SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let r = &records[i];
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"thread\":{},\"start_us\":{:.3},\"dur_us\":{:.3}",
            r.kind.name(),
            r.thread,
            r.start_ns as f64 / 1e3,
            r.dur_ns as f64 / 1e3
        );
        if r.detail != 0 {
            let _ = write!(out, ",\"detail\":{}", r.detail);
            if r.kind == deepseq_nn::SpanKind::Gemm {
                let (m, k, n) = deepseq_nn::trace::unpack_dims(r.detail);
                let _ = write!(out, ",\"dims\":[{m},{k},{n}]");
                let tag = deepseq_nn::trace::unpack_kernel_tag(r.detail);
                if let Some(kernel) = deepseq_nn::trace::kernel_tag_name(tag) {
                    let _ = write!(out, ",\"kernel\":\"{kernel}\"");
                }
            }
        }
        // Depth cap: identical clock readings could in principle nest
        // thousands of spans; beyond any plausible real nesting just
        // flatten the remainder away.
        if !children[i].is_empty() && depth < 64 {
            out.push_str(",\"children\":[");
            for (x, &c) in children[i].iter().enumerate() {
                if x > 0 {
                    out.push(',');
                }
                emit(out, records, children, c, depth + 1);
            }
            out.push(']');
        }
        out.push('}');
    }

    let mut out = String::with_capacity(records.len() * 96 + 128);
    let _ = write!(
        out,
        "{{\"trace\":{trace_id},\"spans\":{},\"truncated\":{truncated},\"tree\":[",
        records.len()
    );
    for (x, &root) in roots.iter().enumerate() {
        if x > 0 {
            out.push(',');
        }
        emit(&mut out, records, &children, root, 0);
    }
    out.push_str("]}");
    out
}

/// Renders the per-stage latency summary for `GET /debug/trace` (no
/// `id`): one entry per span kind with count, p50/p95 and total seconds.
pub fn stage_summary_json(stages: &[deepseq_nn::trace::StageStats], dropped: u64) -> String {
    let mut out = String::with_capacity(stages.len() * 96 + 64);
    let _ = write!(out, "{{\"dropped_spans\":{dropped},\"stages\":[");
    for (i, stage) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":\"{}\",\"count\":{},\"p50_s\":{},\"p95_s\":{},\"total_s\":{}}}",
            stage.kind.name(),
            stage.count,
            stage.quantile(0.5),
            stage.quantile(0.95),
            stage.sum_ns as f64 / 1e9
        );
    }
    out.push_str("]}");
    out
}

fn predictions_tr(preds: &Predictions) -> String {
    matrix_rows(preds.tr.rows(), preds.tr.cols(), |r, c| preds.tr.get(r, c))
}

fn predictions_lg(preds: &Predictions) -> String {
    matrix_rows(preds.lg.rows(), preds.lg.cols(), |r, c| preds.lg.get(r, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f32::NAN), "null");
        assert_eq!(number(f32::INFINITY), "null");
    }

    #[test]
    fn matrix_rendering_flattens_columns() {
        assert_eq!(matrix_rows(2, 1, |r, _| r as f32), "[0,1]");
        assert_eq!(
            matrix_rows(2, 2, |r, c| (r * 2 + c) as f32),
            "[[0,1],[2,3]]"
        );
    }

    #[test]
    fn trace_tree_nests_by_containment() {
        use deepseq_nn::{SpanKind, SpanRecord};
        let rec = |kind, start_ns, dur_ns, thread, detail| SpanRecord {
            trace: 7,
            kind,
            detail,
            start_ns,
            dur_ns,
            thread,
        };
        // collect() order: start ascending, longer spans first on ties.
        let records = vec![
            rec(SpanKind::Request, 0, 1000, 0, 0),
            rec(SpanKind::Forward, 100, 800, 0, 42),
            rec(
                SpanKind::Gemm,
                200,
                100,
                3,
                deepseq_nn::trace::pack_gemm(4, 5, 6, 4),
            ),
            rec(SpanKind::Serialize, 950, 20, 0, 0),
        ];
        let json = trace_tree_json(7, &records);
        assert!(json.starts_with("{\"trace\":7,\"spans\":4,\"truncated\":false,"));
        // Gemm nests under forward (tightest container) despite the
        // differing thread, and its packed dims + kernel tag are decoded.
        let forward = json.find("\"kind\":\"forward\"").expect("forward span");
        let gemm = json.find("\"kind\":\"gemm\"").expect("gemm span");
        let serialize = json.find("\"kind\":\"serialize\"").expect("serialize span");
        assert!(forward < gemm, "gemm should be inside forward: {json}");
        assert!(json.contains("\"dims\":[4,5,6]"), "{json}");
        assert!(json.contains("\"kernel\":\"simd\""), "{json}");
        // Serialize is a direct child of request, after forward closes.
        assert!(serialize > gemm, "{json}");
        // Exactly one root.
        assert_eq!(json.matches("\"kind\":\"request\"").count(), 1);
    }

    #[test]
    fn identical_intervals_stay_siblings() {
        use deepseq_nn::{SpanKind, SpanRecord};
        let rec = |kind| SpanRecord {
            trace: 1,
            kind,
            detail: 0,
            start_ns: 10,
            dur_ns: 10,
            thread: 0,
        };
        let json = trace_tree_json(1, &[rec(SpanKind::Gemm), rec(SpanKind::Head)]);
        assert!(!json.contains("children"), "{json}");
    }

    #[test]
    fn stage_summary_lists_every_stage() {
        let stages = deepseq_nn::trace::stage_stats();
        let json = stage_summary_json(&stages, 3);
        assert!(json.starts_with("{\"dropped_spans\":3,\"stages\":["));
        for kind in deepseq_nn::SpanKind::ALL {
            assert!(
                json.contains(&format!("{{\"stage\":\"{}\"", kind.name())),
                "missing {}: {json}",
                kind.name()
            );
        }
        assert!(json.ends_with("]}"));
    }
}
