//! Multi-threaded request engine.
//!
//! An [`Engine`] owns a frozen [`InferenceModel`], a worker pool fed by an
//! `mpsc` channel, and a shared [`EmbeddingCache`]. Independent circuit
//! requests are batched by the callers ([`Engine::serve_batch`]) and fan
//! out across workers; each worker keeps its own [`Workspace`] so steady
//! traffic runs without per-request allocation. Responses travel back over
//! per-request channels, so completion order never scrambles a batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};

use deepseq_core::encoding::initial_states;
use deepseq_core::CircuitGraph;
use deepseq_netlist::SeqAig;
use deepseq_sim::Workload;

use crate::cache::{CacheKey, CacheStats, CachedInference, EmbeddingCache};
use crate::infer::{InferenceModel, Workspace};
use crate::ServeError;

/// One inference request: a circuit plus the workload applied at its PIs.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// The circuit (must pass [`SeqAig::validate`]).
    pub aig: SeqAig,
    /// Per-PI stimulus; must cover every PI.
    pub workload: Workload,
    /// Seed for the random non-PI rows of the initial state matrix.
    pub init_seed: u64,
}

/// Successful inference payload of a [`ServeResponse`].
#[derive(Debug, Clone)]
pub struct ServedInference {
    /// Node count of the served circuit.
    pub num_nodes: usize,
    /// True if the result came from the embedding cache.
    pub cache_hit: bool,
    /// Shared predictions + embedding. On a cache hit these are the outputs
    /// of the request that populated the entry, computed under *that*
    /// request's node numbering — see the
    /// [`cache` module docs](crate::cache) on numbering semantics.
    pub data: Arc<CachedInference>,
}

/// Outcome of one request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The request's identifier.
    pub id: u64,
    /// Design name of the request's circuit.
    pub design: String,
    /// Predictions, or why the request was rejected.
    pub result: Result<ServedInference, ServeError>,
}

/// Sizing knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Worker threads. Clamped to at least 1.
    pub workers: usize,
    /// Embedding-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        EngineOptions {
            workers,
            cache_capacity: 256,
        }
    }
}

struct Job {
    request: ServeRequest,
    reply: mpsc::Sender<ServeResponse>,
}

/// The serving engine (see the [module docs](self)).
///
/// # Example
/// ```
/// use deepseq_core::{DeepSeq, DeepSeqConfig};
/// use deepseq_netlist::SeqAig;
/// use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest};
/// use deepseq_sim::Workload;
///
/// let model = DeepSeq::new(DeepSeqConfig { hidden_dim: 8, iterations: 2,
///                                          ..DeepSeqConfig::default() });
/// let engine = Engine::new(InferenceModel::from_model(&model).unwrap(),
///                          EngineOptions { workers: 2, cache_capacity: 16 });
///
/// let mut aig = SeqAig::new("toggle");
/// let q = aig.add_ff("q", false);
/// let n = aig.add_not(q);
/// aig.connect_ff(q, n)?;
///
/// let make = |id| ServeRequest { id, aig: aig.clone(),
///                                workload: Workload::uniform(0, 0.5), init_seed: 0 };
/// // Warm the cache, then identical requests hit it (warming must finish
/// // first — two identical requests *in one batch* may race to distinct
/// // workers and both miss).
/// let cold = engine.serve_batch(vec![make(0)]);
/// assert!(!cold[0].result.as_ref().unwrap().cache_hit);
/// let warm = engine.serve_batch(vec![make(1), make(2)]);
/// assert!(warm.iter().all(|r| r.result.as_ref().unwrap().cache_hit));
/// assert_eq!(engine.cache_stats().hits, 2);
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
pub struct Engine {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<Mutex<EmbeddingCache>>,
    served: Arc<AtomicU64>,
}

impl Engine {
    /// Spawns the worker pool around a frozen model.
    pub fn new(model: InferenceModel, options: EngineOptions) -> Engine {
        let model = Arc::new(model);
        let cache = Arc::new(Mutex::new(EmbeddingCache::new(options.cache_capacity)));
        let served = Arc::new(AtomicU64::new(0));
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..options.workers.max(1))
            .map(|_| {
                let model = Arc::clone(&model);
                let cache = Arc::clone(&cache);
                let served = Arc::clone(&served);
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || {
                    let mut ws = Workspace::new();
                    loop {
                        // Hold the receiver lock only for the dequeue so
                        // workers drain the queue concurrently.
                        let job = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                let response = process(&model, &cache, job.request, &mut ws);
                                served.fetch_add(1, Ordering::Relaxed);
                                // A dropped reply receiver just means the
                                // caller lost interest.
                                let _ = job.reply.send(response);
                            }
                            Err(_) => break, // engine dropped
                        }
                    }
                })
            })
            .collect();
        Engine {
            sender: Some(sender),
            workers,
            cache,
            served,
        }
    }

    /// Enqueues one request; the response arrives on the returned channel.
    pub fn submit(&self, request: ServeRequest) -> mpsc::Receiver<ServeResponse> {
        let (reply, receiver) = mpsc::channel();
        self.sender
            .as_ref()
            .expect("engine sender lives until drop")
            .send(Job { request, reply })
            .expect("workers live until drop");
        receiver
    }

    /// Serves a batch of independent requests across the worker pool and
    /// returns the responses in request order.
    pub fn serve_batch(&self, requests: Vec<ServeRequest>) -> Vec<ServeResponse> {
        let receivers: Vec<_> = requests.into_iter().map(|r| self.submit(r)).collect();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("worker replies before engine drop"))
            .collect()
    }

    /// Current embedding-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Total requests processed since construction.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn process(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    request: ServeRequest,
    ws: &mut Workspace,
) -> ServeResponse {
    let design = request.aig.name().to_string();
    let id = request.id;
    let result = serve_one(model, cache, request, ws);
    ServeResponse { id, design, result }
}

fn serve_one(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    request: ServeRequest,
    ws: &mut Workspace,
) -> Result<ServedInference, ServeError> {
    request.aig.validate()?;
    if request.workload.len() < request.aig.num_pis() {
        return Err(ServeError::WorkloadTooShort {
            pis: request.aig.num_pis(),
            stimuli: request.workload.len(),
        });
    }
    let key = CacheKey::for_request(&request.aig, &request.workload, request.init_seed);
    if let Some(data) = cache.lock().expect("cache lock").get(&key) {
        return Ok(ServedInference {
            num_nodes: data.num_nodes,
            cache_hit: true,
            data,
        });
    }
    let graph = CircuitGraph::build(&request.aig);
    let h0 = initial_states(
        &request.aig,
        &request.workload,
        model.config().hidden_dim,
        request.init_seed,
    );
    let out = model.run(&graph, &h0, ws);
    let data = Arc::new(CachedInference {
        predictions: out.predictions,
        embedding: out.embedding,
        num_nodes: graph.num_nodes,
    });
    cache
        .lock()
        .expect("cache lock")
        .insert(key, Arc::clone(&data));
    Ok(ServedInference {
        num_nodes: graph.num_nodes,
        cache_hit: false,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_core::{DeepSeq, DeepSeqConfig};

    fn toggle(name: &str) -> SeqAig {
        let mut aig = SeqAig::new(name);
        let q = aig.add_ff("q", false);
        let n = aig.add_not(q);
        aig.connect_ff(q, n).unwrap();
        aig
    }

    fn engine(workers: usize) -> Engine {
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        Engine::new(
            InferenceModel::from_model(&model).unwrap(),
            EngineOptions {
                workers,
                cache_capacity: 8,
            },
        )
    }

    #[test]
    fn batch_preserves_request_order() {
        let engine = engine(3);
        let requests: Vec<ServeRequest> = (0..12)
            .map(|id| ServeRequest {
                id,
                aig: toggle(&format!("t{}", id % 3)),
                workload: Workload::uniform(0, 0.5),
                init_seed: id % 2,
            })
            .collect();
        let responses = engine.serve_batch(requests);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        assert!(responses.iter().all(|r| r.result.is_ok()));
        assert_eq!(engine.requests_served(), 12);
    }

    #[test]
    fn identical_requests_hit_the_cache_across_workers() {
        let engine = engine(4);
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        // Warm sequentially, then spray the same request.
        let first = engine.serve_batch(vec![make(0)]);
        assert!(!first[0].result.as_ref().unwrap().cache_hit);
        let responses = engine.serve_batch((1..9).map(make).collect());
        assert!(responses
            .iter()
            .all(|r| r.result.as_ref().unwrap().cache_hit));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn invalid_circuit_yields_typed_error_not_a_dead_worker() {
        let engine = engine(1);
        let mut bad = SeqAig::new("bad");
        bad.add_ff("q", false); // never connected
        let responses = engine.serve_batch(vec![
            ServeRequest {
                id: 0,
                aig: bad,
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
            ServeRequest {
                id: 1,
                aig: toggle("ok"),
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
        ]);
        assert!(matches!(responses[0].result, Err(ServeError::Netlist(_))));
        // The worker survived and served the next request.
        assert!(responses[1].result.is_ok());
    }

    #[test]
    fn short_workload_is_rejected() {
        let engine = engine(1);
        let mut aig = SeqAig::new("pi");
        aig.add_pi("a");
        let responses = engine.serve_batch(vec![ServeRequest {
            id: 0,
            aig,
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        }]);
        assert!(matches!(
            responses[0].result,
            Err(ServeError::WorkloadTooShort { pis: 1, stimuli: 0 })
        ));
    }
}
