//! Request engine on the shared worker pool.
//!
//! An [`Engine`] owns a frozen [`InferenceModel`], a shared
//! [`EmbeddingCache`], and a handle to a worker [`Pool`] — by default the
//! process-wide [`Pool::global`], so *one* pool serves every engine,
//! request batch **and** the level-parallel forward passes inside each
//! request, instead of each subsystem spawning its own threads.
//! [`Engine::serve_batch`] fans independent requests out across the pool
//! (responses return in request order); a lone request in turn fans its
//! level batches out, so the pool stays busy whether traffic is many small
//! circuits or one big one. Workspaces are checked out of a shared pile,
//! one per concurrently processing task, so steady traffic runs without
//! per-request allocation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use deepseq_core::encoding::initial_states;
use deepseq_core::CircuitGraph;
use deepseq_netlist::SeqAig;
use deepseq_nn::trace;
use deepseq_nn::Pool;
use deepseq_sim::Workload;

use crate::cache::{CacheKey, CacheStats, CachedInference, EmbeddingCache};
use crate::infer::{InferenceModel, Workspace};
use crate::ServeError;

/// One inference request: a circuit plus the workload applied at its PIs.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// The circuit (must pass [`SeqAig::validate`]).
    pub aig: SeqAig,
    /// Per-PI stimulus; must cover every PI.
    pub workload: Workload,
    /// Seed for the random non-PI rows of the initial state matrix.
    pub init_seed: u64,
}

/// Successful inference payload of a [`ServeResponse`].
#[derive(Debug, Clone)]
pub struct ServedInference {
    /// Node count of the served circuit.
    pub num_nodes: usize,
    /// True if the result came from the embedding cache.
    pub cache_hit: bool,
    /// Shared predictions + embedding. On a cache hit these are the outputs
    /// of the request that populated the entry, computed under *that*
    /// request's node numbering — see the
    /// [`cache` module docs](crate::cache) on numbering semantics.
    pub data: Arc<CachedInference>,
}

/// Outcome of one request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The request's identifier.
    pub id: u64,
    /// Design name of the request's circuit.
    pub design: String,
    /// Predictions, or why the request was rejected.
    pub result: Result<ServedInference, ServeError>,
}

/// Sizing knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Maximum requests processed concurrently by [`Engine::serve_batch`]
    /// (additionally capped by the pool's thread count). Clamped to at
    /// least 1. Lower values leave more pool threads to the level
    /// parallelism *inside* each request.
    pub workers: usize,
    /// Embedding-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        // Sized from the hardware directly — instantiating the global pool
        // here would be a surprising side effect for engines built on an
        // explicit pool.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        EngineOptions {
            workers,
            cache_capacity: 256,
        }
    }
}

/// The serving engine (see the [module docs](self)).
///
/// # Example
/// ```
/// use deepseq_core::{DeepSeq, DeepSeqConfig};
/// use deepseq_netlist::SeqAig;
/// use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest};
/// use deepseq_sim::Workload;
///
/// let model = DeepSeq::new(DeepSeqConfig { hidden_dim: 8, iterations: 2,
///                                          ..DeepSeqConfig::default() });
/// let engine = Engine::new(InferenceModel::from_model(&model).unwrap(),
///                          EngineOptions { workers: 2, cache_capacity: 16 });
///
/// let mut aig = SeqAig::new("toggle");
/// let q = aig.add_ff("q", false);
/// let n = aig.add_not(q);
/// aig.connect_ff(q, n)?;
///
/// let make = |id| ServeRequest { id, aig: aig.clone(),
///                                workload: Workload::uniform(0, 0.5), init_seed: 0 };
/// // Warm the cache, then identical requests hit it (warming must finish
/// // first — two identical requests *in one batch* may race to distinct
/// // pool tasks and both miss).
/// let cold = engine.serve_batch(vec![make(0)]);
/// assert!(!cold[0].result.as_ref().unwrap().cache_hit);
/// let warm = engine.serve_batch(vec![make(1), make(2)]);
/// assert!(warm.iter().all(|r| r.result.as_ref().unwrap().cache_hit));
/// assert_eq!(engine.cache_stats().hits, 2);
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
pub struct Engine {
    model: Arc<InferenceModel>,
    cache: Arc<Mutex<EmbeddingCache>>,
    pool: Arc<Pool>,
    workspaces: Arc<Mutex<Vec<Workspace>>>,
    served: Arc<AtomicU64>,
    hook: Arc<Mutex<Option<ServedHook>>>,
    max_concurrent: usize,
}

/// Observer invoked after every processed request (both the [`Engine::submit`]
/// and [`Engine::serve_batch`] paths) with the response and the engine-side
/// processing time — validation, cache lookup, and forward pass; queueing
/// ahead of processing is excluded. The HTTP serving edge installs one to
/// feed its `/metrics` latency histograms.
pub type ServedHook = Arc<dyn Fn(&ServeResponse, Duration) + Send + Sync>;

impl Engine {
    /// An engine around a frozen model, on the process-wide
    /// [`Pool::global`].
    pub fn new(model: InferenceModel, options: EngineOptions) -> Engine {
        Engine::with_pool(model, options, Arc::clone(Pool::global()))
    }

    /// An engine on an explicit worker pool (benchmarks and tests size
    /// their own; everything else should share the global pool).
    pub fn with_pool(model: InferenceModel, options: EngineOptions, pool: Arc<Pool>) -> Engine {
        Engine {
            model: Arc::new(model),
            cache: Arc::new(Mutex::new(EmbeddingCache::new(options.cache_capacity))),
            pool,
            workspaces: Arc::new(Mutex::new(Vec::new())),
            served: Arc::new(AtomicU64::new(0)),
            hook: Arc::new(Mutex::new(None)),
            max_concurrent: options.workers.max(1),
        }
    }

    /// Installs (or replaces) the served-request observer. Pass the hook
    /// wrapped in an `Arc` so the engine can share it with in-flight
    /// request tasks.
    pub fn set_served_hook(&self, hook: ServedHook) {
        *self.hook.lock().expect("hook lock") = Some(hook);
    }

    /// Enqueues one request onto the shared pool; the response arrives on
    /// the returned channel. On a 1-thread pool the request is processed
    /// inline before this returns.
    pub fn submit(&self, request: ServeRequest) -> mpsc::Receiver<ServeResponse> {
        let (reply, receiver) = mpsc::channel();
        let model = Arc::clone(&self.model);
        let cache = Arc::clone(&self.cache);
        let workspaces = Arc::clone(&self.workspaces);
        let served = Arc::clone(&self.served);
        let pool = Arc::clone(&self.pool);
        let hook = self.hook.lock().expect("hook lock").clone();
        self.pool.spawn(move || {
            let mut ws = checkout(&workspaces, &pool);
            let response = process(&model, &cache, request, &mut ws, &hook);
            served.fetch_add(1, Ordering::Relaxed);
            // A dropped reply receiver just means the caller lost interest.
            let _ = reply.send(response);
            workspaces.lock().expect("workspace pile").push(ws);
        });
        receiver
    }

    /// Serves a batch of independent requests across the worker pool and
    /// returns the responses in request order. At most `workers` tasks run
    /// concurrently, each checking out one workspace and pulling requests
    /// off a shared queue — uneven batches (one huge circuit among many
    /// small ones) stay load-balanced instead of being pinned to a
    /// contiguous split.
    pub fn serve_batch(&self, requests: Vec<ServeRequest>) -> Vec<ServeResponse> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        let task_count = self.max_concurrent.min(self.pool.threads()).min(total);
        let queue: Mutex<VecDeque<(usize, ServeRequest)>> =
            Mutex::new(requests.into_iter().enumerate().collect());
        let (reply, responses) = mpsc::channel::<(usize, ServeResponse)>();
        let hook = self.hook.lock().expect("hook lock").clone();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..task_count)
            .map(|_| {
                let queue = &queue;
                let reply = reply.clone();
                let model = &self.model;
                let cache = &self.cache;
                let served = &self.served;
                let workspaces = &self.workspaces;
                let pool = &self.pool;
                let hook = &hook;
                Box::new(move || {
                    let mut ws = checkout(workspaces, pool);
                    loop {
                        let next = queue.lock().expect("request queue").pop_front();
                        let Some((index, request)) = next else { break };
                        let response = process(model, cache, request, &mut ws, hook);
                        served.fetch_add(1, Ordering::Relaxed);
                        reply
                            .send((index, response))
                            .expect("receiver outlives run");
                    }
                    workspaces.lock().expect("workspace pile").push(ws);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.pool.run(tasks);
        drop(reply);
        let mut slots: Vec<Option<ServeResponse>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        for (index, response) in responses {
            slots[index] = Some(response);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request answered"))
            .collect()
    }

    /// Current embedding-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Total requests processed since construction.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The worker pool this engine schedules on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }
}

/// Takes a workspace from the shared pile, or builds a fresh one on the
/// engine's pool.
fn checkout(workspaces: &Mutex<Vec<Workspace>>, pool: &Arc<Pool>) -> Workspace {
    workspaces
        .lock()
        .expect("workspace pile")
        .pop()
        .unwrap_or_else(|| Workspace::with_pool(deepseq_nn::Kernel::for_serve(), Arc::clone(pool)))
}

fn process(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    request: ServeRequest,
    ws: &mut Workspace,
    hook: &Option<ServedHook>,
) -> ServeResponse {
    let design = request.aig.name().to_string();
    let id = request.id;
    let start = Instant::now();
    let result = serve_one(model, cache, request, ws);
    let response = ServeResponse { id, design, result };
    if let Some(hook) = hook {
        hook(&response, start.elapsed());
    }
    response
}

fn serve_one(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    request: ServeRequest,
    ws: &mut Workspace,
) -> Result<ServedInference, ServeError> {
    request.aig.validate()?;
    if request.workload.len() < request.aig.num_pis() {
        return Err(ServeError::WorkloadTooShort {
            pis: request.aig.num_pis(),
            stimuli: request.workload.len(),
        });
    }
    let key = CacheKey::for_request(&request.aig, &request.workload, request.init_seed);
    let lookup = trace::span(trace::SpanKind::CacheLookup);
    let cached = cache.lock().expect("cache lock").get(&key);
    drop(lookup);
    if let Some(data) = cached {
        return Ok(ServedInference {
            num_nodes: data.num_nodes,
            cache_hit: true,
            data,
        });
    }
    let graph = CircuitGraph::build(&request.aig);
    let h0 = initial_states(
        &request.aig,
        &request.workload,
        model.config().hidden_dim,
        request.init_seed,
    );
    let out = model.run(&graph, &h0, ws);
    let data = Arc::new(CachedInference {
        predictions: out.predictions,
        embedding: out.embedding,
        num_nodes: graph.num_nodes,
    });
    cache
        .lock()
        .expect("cache lock")
        .insert(key, Arc::clone(&data));
    Ok(ServedInference {
        num_nodes: graph.num_nodes,
        cache_hit: false,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_core::{DeepSeq, DeepSeqConfig};

    fn toggle(name: &str) -> SeqAig {
        let mut aig = SeqAig::new(name);
        let q = aig.add_ff("q", false);
        let n = aig.add_not(q);
        aig.connect_ff(q, n).unwrap();
        aig
    }

    fn engine_on(workers: usize, pool: Arc<Pool>) -> Engine {
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        Engine::with_pool(
            InferenceModel::from_model(&model).unwrap(),
            EngineOptions {
                workers,
                cache_capacity: 8,
            },
            pool,
        )
    }

    fn engine(workers: usize) -> Engine {
        engine_on(workers, Arc::new(Pool::new(workers)))
    }

    #[test]
    fn batch_preserves_request_order() {
        let engine = engine(3);
        let requests: Vec<ServeRequest> = (0..12)
            .map(|id| ServeRequest {
                id,
                aig: toggle(&format!("t{}", id % 3)),
                workload: Workload::uniform(0, 0.5),
                init_seed: id % 2,
            })
            .collect();
        let responses = engine.serve_batch(requests);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        assert!(responses.iter().all(|r| r.result.is_ok()));
        assert_eq!(engine.requests_served(), 12);
    }

    #[test]
    fn identical_requests_hit_the_cache_across_workers() {
        let engine = engine(4);
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        // Warm sequentially, then spray the same request.
        let first = engine.serve_batch(vec![make(0)]);
        assert!(!first[0].result.as_ref().unwrap().cache_hit);
        let responses = engine.serve_batch((1..9).map(make).collect());
        assert!(responses
            .iter()
            .all(|r| r.result.as_ref().unwrap().cache_hit));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn invalid_circuit_yields_typed_error_not_a_dead_worker() {
        let engine = engine(1);
        let mut bad = SeqAig::new("bad");
        bad.add_ff("q", false); // never connected
        let responses = engine.serve_batch(vec![
            ServeRequest {
                id: 0,
                aig: bad,
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
            ServeRequest {
                id: 1,
                aig: toggle("ok"),
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
        ]);
        assert!(matches!(responses[0].result, Err(ServeError::Netlist(_))));
        // The engine survived and served the next request.
        assert!(responses[1].result.is_ok());
    }

    #[test]
    fn short_workload_is_rejected() {
        let engine = engine(1);
        let mut aig = SeqAig::new("pi");
        aig.add_pi("a");
        let responses = engine.serve_batch(vec![ServeRequest {
            id: 0,
            aig,
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        }]);
        assert!(matches!(
            responses[0].result,
            Err(ServeError::WorkloadTooShort { pis: 1, stimuli: 0 })
        ));
    }

    #[test]
    fn submit_delivers_on_the_returned_channel() {
        for threads in [1, 3] {
            let engine = engine_on(2, Arc::new(Pool::new(threads)));
            let rx = engine.submit(ServeRequest {
                id: 7,
                aig: toggle("t"),
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            });
            let response = rx.recv().expect("response arrives");
            assert_eq!(response.id, 7);
            assert!(response.result.is_ok());
            assert_eq!(engine.requests_served(), 1);
        }
    }

    #[test]
    fn served_hook_observes_batch_and_submit_paths() {
        let engine = engine(2);
        let seen = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&seen);
        engine.set_served_hook(Arc::new(move |response, latency| {
            assert!(response.result.is_ok());
            assert!(latency <= Duration::from_secs(60));
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        engine.serve_batch((0..5).map(make).collect());
        let rx = engine.submit(make(9));
        rx.recv().expect("response arrives");
        assert_eq!(seen.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn engines_share_a_pool_without_interference() {
        let pool = Arc::new(Pool::new(3));
        let a = engine_on(2, Arc::clone(&pool));
        let b = engine_on(2, Arc::clone(&pool));
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        let ra = a.serve_batch((0..4).map(make).collect());
        let rb = b.serve_batch((0..4).map(make).collect());
        assert!(ra.iter().chain(&rb).all(|r| r.result.is_ok()));
        assert_eq!(a.requests_served(), 4);
        assert_eq!(b.requests_served(), 4);
    }
}
