//! Request engine on the shared worker pool.
//!
//! An [`Engine`] owns a frozen [`InferenceModel`], a shared
//! [`EmbeddingCache`], and a handle to a worker [`Pool`] — by default the
//! process-wide [`Pool::global`], so *one* pool serves every engine,
//! request batch **and** the level-parallel forward passes inside each
//! request, instead of each subsystem spawning its own threads.
//! [`Engine::serve_batch`] fans independent requests out across the pool
//! (responses return in request order); a lone request in turn fans its
//! level batches out, so the pool stays busy whether traffic is many small
//! circuits or one big one. Workspaces are checked out of a shared pile,
//! one per concurrently processing task, so steady traffic runs without
//! per-request allocation.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use deepseq_core::encoding::initial_states;
use deepseq_core::CircuitGraph;
use deepseq_netlist::SeqAig;
use deepseq_nn::fault::{self, FaultPoint};
use deepseq_nn::trace;
use deepseq_nn::Pool;
use deepseq_sim::Workload;

use crate::cache::{
    CacheKey, CacheStats, CachedInference, ConeKey, ConeMemo, ConeStates, EmbeddingCache,
};
use crate::cone;
use crate::infer::{InferenceModel, InferenceOutput, Workspace};
use crate::ServeError;

/// Internal engine failures: the request did not fail validation — the
/// machinery processing it did. The HTTP edge maps these to 500 (every
/// other [`ServeError`] is the client's fault and maps to 400).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The request's compute task panicked; the panic was caught at the
    /// engine boundary and the worker survived.
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The reply channel was dropped before a response was sent — the
    /// task died (or an injected fault dropped the sender).
    ReplyDropped,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Panicked { detail } => {
                write!(f, "request task panicked: {detail}")
            }
            EngineError::ReplyDropped => {
                write!(f, "reply channel dropped before a response was sent")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Panics caught at the engine boundary since process start — the
/// `deepseq_panics_caught_total` metric.
static PANICS_CAUGHT: AtomicU64 = AtomicU64::new(0);

/// Total panics caught (and converted to typed 500s) at the engine
/// boundary since process start.
pub fn panics_caught() -> u64 {
    PANICS_CAUGHT.load(Ordering::Relaxed)
}

/// Locks a mutex, recovering from poisoning: every engine-internal lock
/// guards a pile/queue whose operations never panic mid-update, and the
/// per-request compute that *can* panic runs outside any of them (and is
/// caught in [`process`] anyway), so the poisoned state is consistent.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One inference request: a circuit plus the workload applied at its PIs.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// The circuit (must pass [`SeqAig::validate`]).
    pub aig: SeqAig,
    /// Per-PI stimulus; must cover every PI.
    pub workload: Workload,
    /// Seed for the random non-PI rows of the initial state matrix.
    pub init_seed: u64,
}

/// Successful inference payload of a [`ServeResponse`].
#[derive(Debug, Clone)]
pub struct ServedInference {
    /// Node count of the served circuit.
    pub num_nodes: usize,
    /// True if the result came from the embedding cache.
    pub cache_hit: bool,
    /// Number of fanin-cone components whose propagated states came from
    /// the cone memo (0 on exact cache hits and fully cold requests).
    pub cones_reused: usize,
    /// Shared predictions + embedding. On a cache hit these are the outputs
    /// of the request that populated the entry, computed under *that*
    /// request's node numbering — see the
    /// [`cache` module docs](crate::cache) on numbering semantics.
    pub data: Arc<CachedInference>,
}

/// Outcome of one request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The request's identifier.
    pub id: u64,
    /// Design name of the request's circuit.
    pub design: String,
    /// Predictions, or why the request was rejected.
    pub result: Result<ServedInference, ServeError>,
}

/// Sizing knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Maximum requests processed concurrently by [`Engine::serve_batch`]
    /// (additionally capped by the pool's thread count). Clamped to at
    /// least 1. Lower values leave more pool threads to the level
    /// parallelism *inside* each request.
    pub workers: usize,
    /// Embedding-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cone-memo capacity in component entries (0 disables the
    /// cone-granularity reuse path; requests then always run whole
    /// circuits). Shards forked from this engine share one memo.
    pub cone_capacity: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        // Sized from the hardware directly — instantiating the global pool
        // here would be a surprising side effect for engines built on an
        // explicit pool.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        EngineOptions {
            workers,
            cache_capacity: 256,
            cone_capacity: 1024,
        }
    }
}

/// The serving engine (see the [module docs](self)).
///
/// # Example
/// ```
/// use deepseq_core::{DeepSeq, DeepSeqConfig};
/// use deepseq_netlist::SeqAig;
/// use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest};
/// use deepseq_sim::Workload;
///
/// let model = DeepSeq::new(DeepSeqConfig { hidden_dim: 8, iterations: 2,
///                                          ..DeepSeqConfig::default() });
/// let engine = Engine::new(InferenceModel::from_model(&model).unwrap(),
///                          EngineOptions { workers: 2, cache_capacity: 16,
///                                          ..EngineOptions::default() });
///
/// let mut aig = SeqAig::new("toggle");
/// let q = aig.add_ff("q", false);
/// let n = aig.add_not(q);
/// aig.connect_ff(q, n)?;
///
/// let make = |id| ServeRequest { id, aig: aig.clone(),
///                                workload: Workload::uniform(0, 0.5), init_seed: 0 };
/// // Warm the cache, then identical requests hit it (warming must finish
/// // first — two identical requests *in one batch* may race to distinct
/// // pool tasks and both miss).
/// let cold = engine.serve_batch(vec![make(0)]);
/// assert!(!cold[0].result.as_ref().unwrap().cache_hit);
/// let warm = engine.serve_batch(vec![make(1), make(2)]);
/// assert!(warm.iter().all(|r| r.result.as_ref().unwrap().cache_hit));
/// assert_eq!(engine.cache_stats().hits, 2);
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
pub struct Engine {
    /// Swappable on checkpoint reload; tasks snapshot the `Arc` at start,
    /// so in-flight requests finish on the model they began with.
    model: Arc<Mutex<Arc<InferenceModel>>>,
    cache: Arc<Mutex<EmbeddingCache>>,
    /// Cone-granularity memo, shared by every shard forked from this
    /// engine (keys carry the model generation, so sharing stays sound
    /// across per-shard reloads).
    cones: Arc<Mutex<ConeMemo>>,
    pool: Arc<Pool>,
    workspaces: Arc<Mutex<Vec<Workspace>>>,
    served: Arc<AtomicU64>,
    hook: Arc<Mutex<Option<ServedHook>>>,
    max_concurrent: usize,
    options: EngineOptions,
}

/// Observer invoked after every processed request (both the [`Engine::submit`]
/// and [`Engine::serve_batch`] paths) with the response and the engine-side
/// processing time — validation, cache lookup, and forward pass; queueing
/// ahead of processing is excluded. The HTTP serving edge installs one to
/// feed its `/metrics` latency histograms.
pub type ServedHook = Arc<dyn Fn(&ServeResponse, Duration) + Send + Sync>;

/// A response in flight from [`Engine::submit`].
///
/// [`PendingResponse::wait`] always yields a [`ServeResponse`]: if the
/// compute task dies without replying, the response carries a typed
/// [`EngineError::ReplyDropped`] instead of panicking the caller.
#[derive(Debug)]
pub struct PendingResponse {
    id: u64,
    design: String,
    receiver: mpsc::Receiver<ServeResponse>,
}

impl PendingResponse {
    /// Blocks until the response arrives (or the task provably never
    /// will — a dropped sender yields a typed `ReplyDropped` error).
    pub fn wait(self) -> ServeResponse {
        match self.receiver.recv() {
            Ok(response) => response,
            Err(mpsc::RecvError) => ServeResponse {
                id: self.id,
                design: self.design,
                result: Err(ServeError::Engine(EngineError::ReplyDropped)),
            },
        }
    }

    /// Non-blocking probe; `None` until the response is ready. After the
    /// sender is dropped without a reply, returns the typed error response.
    pub fn try_wait(&mut self) -> Option<ServeResponse> {
        match self.receiver.try_recv() {
            Ok(response) => Some(response),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(ServeResponse {
                id: self.id,
                design: std::mem::take(&mut self.design),
                result: Err(ServeError::Engine(EngineError::ReplyDropped)),
            }),
        }
    }
}

impl Engine {
    /// An engine around a frozen model, on the process-wide
    /// [`Pool::global`].
    pub fn new(model: InferenceModel, options: EngineOptions) -> Engine {
        Engine::with_pool(model, options, Arc::clone(Pool::global()))
    }

    /// An engine on an explicit worker pool (benchmarks and tests size
    /// their own; everything else should share the global pool).
    pub fn with_pool(model: InferenceModel, options: EngineOptions, pool: Arc<Pool>) -> Engine {
        Engine {
            model: Arc::new(Mutex::new(Arc::new(model))),
            cache: Arc::new(Mutex::new(EmbeddingCache::new(options.cache_capacity))),
            cones: Arc::new(Mutex::new(ConeMemo::new(options.cone_capacity))),
            pool,
            workspaces: Arc::new(Mutex::new(Vec::new())),
            served: Arc::new(AtomicU64::new(0)),
            hook: Arc::new(Mutex::new(None)),
            max_concurrent: options.workers.max(1),
            options,
        }
    }

    /// Forks a shard off this engine: the new engine starts on the same
    /// model snapshot and shares the worker pool and the cone memo, but
    /// owns a fresh embedding cache, request counter and model slot — so
    /// [`Engine::swap_model`] on one shard never disturbs another, while
    /// near-duplicate traffic landing on different shards still reuses
    /// component states through the shared memo. The served-request hook
    /// installed at fork time is carried over.
    pub fn fork_shard(&self) -> Engine {
        Engine {
            model: Arc::new(Mutex::new(lock_recover(&self.model).clone())),
            cache: Arc::new(Mutex::new(EmbeddingCache::new(self.options.cache_capacity))),
            cones: Arc::clone(&self.cones),
            pool: Arc::clone(&self.pool),
            workspaces: Arc::new(Mutex::new(Vec::new())),
            served: Arc::new(AtomicU64::new(0)),
            hook: Arc::new(Mutex::new(lock_recover(&self.hook).clone())),
            max_concurrent: self.max_concurrent,
            options: self.options,
        }
    }

    /// Installs (or replaces) the served-request observer. Pass the hook
    /// wrapped in an `Arc` so the engine can share it with in-flight
    /// request tasks.
    pub fn set_served_hook(&self, hook: ServedHook) {
        *lock_recover(&self.hook) = Some(hook);
    }

    /// Enqueues one request onto the shared pool; await the response via
    /// [`PendingResponse::wait`]. On a 1-thread pool the request is
    /// processed inline before this returns. A task that dies without
    /// sending (the reply sender is dropped) surfaces as a typed
    /// [`EngineError::ReplyDropped`] response, never a panic or a hang.
    pub fn submit(&self, request: ServeRequest) -> PendingResponse {
        let (reply, receiver) = mpsc::channel();
        let id = request.id;
        let design = request.aig.name().to_string();
        let model = lock_recover(&self.model).clone();
        let cache = Arc::clone(&self.cache);
        let cones = Arc::clone(&self.cones);
        let workspaces = Arc::clone(&self.workspaces);
        let served = Arc::clone(&self.served);
        let pool = Arc::clone(&self.pool);
        let hook = lock_recover(&self.hook).clone();
        self.pool.spawn(move || {
            let mut ws = checkout(&workspaces, &pool);
            let response = process(&model, &cache, &cones, request, &mut ws, &hook);
            served.fetch_add(1, Ordering::Relaxed);
            if fault::should_inject(FaultPoint::EngineReplyDrop) {
                drop(reply); // the caller sees a typed ReplyDropped
            } else {
                // A dropped reply *receiver* means the caller lost interest.
                let _ = reply.send(response);
            }
            lock_recover(&workspaces).push(ws);
        });
        PendingResponse {
            id,
            design,
            receiver,
        }
    }

    /// Serves a batch of independent requests across the worker pool and
    /// returns the responses in request order. At most `workers` tasks run
    /// concurrently, each checking out one workspace and pulling requests
    /// off a shared queue — uneven batches (one huge circuit among many
    /// small ones) stay load-balanced instead of being pinned to a
    /// contiguous split.
    pub fn serve_batch(&self, requests: Vec<ServeRequest>) -> Vec<ServeResponse> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        // (id, design) per slot, so a request whose reply never arrives
        // (task died, injected reply drop) still gets a typed response.
        let meta: Vec<(u64, String)> = requests
            .iter()
            .map(|r| (r.id, r.aig.name().to_string()))
            .collect();
        let task_count = self.max_concurrent.min(self.pool.threads()).min(total);
        let queue: Mutex<VecDeque<(usize, ServeRequest)>> =
            Mutex::new(requests.into_iter().enumerate().collect());
        let (reply, responses) = mpsc::channel::<(usize, ServeResponse)>();
        let hook = lock_recover(&self.hook).clone();
        let model = lock_recover(&self.model).clone();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..task_count)
            .map(|_| {
                let queue = &queue;
                let reply = reply.clone();
                let model = &model;
                let cache = &self.cache;
                let cones = &self.cones;
                let served = &self.served;
                let workspaces = &self.workspaces;
                let pool = &self.pool;
                let hook = &hook;
                Box::new(move || {
                    let mut ws = checkout(workspaces, pool);
                    loop {
                        let next = lock_recover(queue).pop_front();
                        let Some((index, request)) = next else { break };
                        let response = process(model, cache, cones, request, &mut ws, hook);
                        served.fetch_add(1, Ordering::Relaxed);
                        if fault::should_inject(FaultPoint::EngineReplyDrop) {
                            continue; // the slot fills with ReplyDropped
                        }
                        // The receiver outlives `pool.run`; a send can only
                        // fail if the collector below already gave up, and
                        // the missing slot is filled with a typed error.
                        let _ = reply.send((index, response));
                    }
                    lock_recover(workspaces).push(ws);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.pool.run(tasks);
        drop(reply);
        let mut slots: Vec<Option<ServeResponse>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        for (index, response) in responses {
            slots[index] = Some(response);
        }
        slots
            .into_iter()
            .zip(meta)
            .map(|(slot, (id, design))| {
                slot.unwrap_or(ServeResponse {
                    id,
                    design,
                    result: Err(ServeError::Engine(EngineError::ReplyDropped)),
                })
            })
            .collect()
    }

    /// Probes the embedding cache for `request` without computing anything
    /// — the degraded-mode serving path: hits are answered from here,
    /// misses are shed at the HTTP edge instead of recomputed.
    pub fn lookup_cached(&self, request: &ServeRequest) -> Option<ServeResponse> {
        let key = CacheKey::for_request(&request.aig, &request.workload, request.init_seed);
        let data = lock_recover(&self.cache).get(&key)?;
        Some(ServeResponse {
            id: request.id,
            design: request.aig.name().to_string(),
            result: Ok(ServedInference {
                num_nodes: data.num_nodes,
                cache_hit: true,
                cones_reused: 0,
                data,
            }),
        })
    }

    /// Atomically replaces the engine's model (a checkpoint reload). The
    /// embedding cache is cleared — cached results were computed under the
    /// old weights. In-flight requests finish on the model they started
    /// with; new requests see the new one.
    pub fn swap_model(&self, model: InferenceModel) {
        self.swap_model_arc(Arc::new(model));
    }

    /// [`Engine::swap_model`] without re-wrapping: shards serving one
    /// reloaded checkpoint pass clones of a single `Arc`, so N shards share
    /// one set of frozen weights in memory. The cone memo is *not* cleared:
    /// its keys carry the model generation, so entries from the old model
    /// can never hit and age out under LRU pressure.
    pub fn swap_model_arc(&self, model: Arc<InferenceModel>) {
        *lock_recover(&self.model) = model;
        lock_recover(&self.cache).clear();
    }

    /// Current embedding-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        lock_recover(&self.cache).stats()
    }

    /// Current cone-memo counters (shared across forked shards).
    pub fn cone_stats(&self) -> CacheStats {
        lock_recover(&self.cones).stats()
    }

    /// Generation tag of the currently served model (see
    /// [`InferenceModel::generation`]).
    pub fn model_generation(&self) -> u64 {
        lock_recover(&self.model).generation()
    }

    /// Total requests processed since construction.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The worker pool this engine schedules on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }
}

/// Takes a workspace from the shared pile, or builds a fresh one on the
/// engine's pool.
fn checkout(workspaces: &Mutex<Vec<Workspace>>, pool: &Arc<Pool>) -> Workspace {
    lock_recover(workspaces)
        .pop()
        .unwrap_or_else(|| Workspace::with_pool(deepseq_nn::Kernel::for_serve(), Arc::clone(pool)))
}

fn process(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    cones: &Mutex<ConeMemo>,
    request: ServeRequest,
    ws: &mut Workspace,
    hook: &Option<ServedHook>,
) -> ServeResponse {
    let design = request.aig.name().to_string();
    let id = request.id;
    let start = Instant::now();
    // The panic boundary: a panicking request (a bug in the forward pass,
    // or an injected `task_panic` fault) becomes a typed 500 for *its*
    // client, not a hung connection or a dead worker. The workspace is
    // rebuilt rather than reused — a panic may have left it mid-update.
    let result = catch_unwind(AssertUnwindSafe(|| {
        serve_one(model, cache, cones, request, ws)
    }))
    .unwrap_or_else(|payload| {
        PANICS_CAUGHT.fetch_add(1, Ordering::Relaxed);
        *ws = Workspace::with_pool(ws.kernel(), Arc::clone(ws.pool()));
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(ServeError::Engine(EngineError::Panicked { detail }))
    });
    let response = ServeResponse { id, design, result };
    if let Some(hook) = hook {
        hook(&response, start.elapsed());
    }
    response
}

fn serve_one(
    model: &InferenceModel,
    cache: &Mutex<EmbeddingCache>,
    cones: &Mutex<ConeMemo>,
    request: ServeRequest,
    ws: &mut Workspace,
) -> Result<ServedInference, ServeError> {
    if fault::should_inject(FaultPoint::TaskPanic) {
        panic!("injected task_panic fault");
    }
    request.aig.validate()?;
    if request.workload.len() < request.aig.num_pis() {
        return Err(ServeError::WorkloadTooShort {
            pis: request.aig.num_pis(),
            stimuli: request.workload.len(),
        });
    }
    let key = CacheKey::for_request(&request.aig, &request.workload, request.init_seed);
    if fault::should_inject(FaultPoint::CacheEvict) {
        lock_recover(cache).remove(&key);
    }
    if let Some(delay) = fault::slow_stage_delay("cache_lookup") {
        std::thread::sleep(delay);
    }
    let lookup = trace::span(trace::SpanKind::CacheLookup);
    let cached = lock_recover(cache).get(&key);
    drop(lookup);
    if let Some(data) = cached {
        return Ok(ServedInference {
            num_nodes: data.num_nodes,
            cache_hit: true,
            cones_reused: 0,
            data,
        });
    }
    let graph = CircuitGraph::build(&request.aig);
    let h0 = initial_states(
        &request.aig,
        &request.workload,
        model.config().hidden_dim,
        request.init_seed,
    );
    if let Some(delay) = fault::slow_stage_delay("forward") {
        std::thread::sleep(delay);
    }
    let (out, cones_reused) = if lock_recover(cones).is_enabled() && graph.num_nodes > 0 {
        run_with_cones(model, cones, &request.aig, &graph, &h0, ws)
    } else {
        (model.run(&graph, &h0, ws), 0)
    };
    let data = Arc::new(CachedInference {
        predictions: out.predictions,
        embedding: out.embedding,
        num_nodes: graph.num_nodes,
    });
    lock_recover(cache).insert(key, Arc::clone(&data));
    Ok(ServedInference {
        num_nodes: graph.num_nodes,
        cache_hit: false,
        cones_reused,
        data,
    })
}

/// The cone-granularity compute path of a cache-missing request: partition
/// the circuit into weakly connected components, reuse the memoized state
/// rows of every component seen before, propagate *only* the missed
/// components (merged into one sub-circuit), and read the heads out over
/// the assembled full state matrix.
///
/// Bitwise identity with `model.run(graph, h0, ws)` rests on the invariants
/// laid out in the [`cone` module docs](crate::cone): component rows are a
/// pure function of the [`ConeKey`], and the readout is row-pure with an
/// order-stable pool. The property suite asserts it end to end across
/// thread counts.
fn run_with_cones(
    model: &InferenceModel,
    cones: &Mutex<ConeMemo>,
    aig: &SeqAig,
    graph: &CircuitGraph,
    h0: &deepseq_nn::Matrix,
    ws: &mut Workspace,
) -> (InferenceOutput, usize) {
    let parts = cone::partition(aig);
    let generation = model.generation();
    let keys: Vec<ConeKey> = parts
        .iter()
        .map(|c| ConeKey {
            model: generation,
            structure: cone::component_fingerprint(aig, &c.members),
            h0: cone::component_h0_hash(h0, &c.members),
        })
        .collect();
    let hits: Vec<Option<Arc<ConeStates>>> = {
        let mut memo = lock_recover(cones);
        keys.iter().map(|k| memo.get(k)).collect()
    };
    let reused = hits.iter().flatten().count();

    if reused == 0 {
        // Fully cold: run the whole circuit (no extraction overhead) and
        // seed the memo with every component's final rows.
        let out = model.run(graph, h0, ws);
        let mut memo = lock_recover(cones);
        for (c, key) in parts.iter().zip(&keys) {
            memo.insert(
                *key,
                Arc::new(ConeStates {
                    rows: cone::gather_rows(ws.state(), &c.members),
                }),
            );
        }
        return (out, 0);
    }

    // Assemble the final state: memoized rows verbatim, missed components
    // propagated together as one extracted sub-circuit.
    let mut state = h0.clone();
    let mut missed: Vec<u32> = Vec::new();
    for (c, hit) in parts.iter().zip(&hits) {
        match hit {
            Some(states) => cone::scatter_rows(&mut state, &c.members, &states.rows),
            None => missed.extend(&c.members),
        }
    }
    if !missed.is_empty() {
        // Components interleave in id space; ascending order preserves the
        // relative member order of each (the bitwise-identity condition).
        missed.sort_unstable();
        let sub = cone::extract(aig, &missed);
        let sub_graph = CircuitGraph::build(&sub);
        let sub_h0 = cone::gather_rows(h0, &missed);
        model.propagate(&sub_graph, &sub_h0, ws);
        let mut memo = lock_recover(cones);
        for ((c, key), hit) in parts.iter().zip(&keys).zip(&hits) {
            if hit.is_some() {
                continue;
            }
            let local: Vec<u32> = c
                .members
                .iter()
                .map(|m| missed.binary_search(m).expect("missed member") as u32)
                .collect();
            let rows = cone::gather_rows(ws.state(), &local);
            cone::scatter_rows(&mut state, &c.members, &rows);
            memo.insert(*key, Arc::new(ConeStates { rows }));
        }
    }
    (model.readout(&state, ws), reused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_core::{DeepSeq, DeepSeqConfig};

    fn toggle(name: &str) -> SeqAig {
        let mut aig = SeqAig::new(name);
        let q = aig.add_ff("q", false);
        let n = aig.add_not(q);
        aig.connect_ff(q, n).unwrap();
        aig
    }

    fn engine_on(workers: usize, pool: Arc<Pool>) -> Engine {
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        Engine::with_pool(
            InferenceModel::from_model(&model).unwrap(),
            EngineOptions {
                workers,
                cache_capacity: 8,
                cone_capacity: 64,
            },
            pool,
        )
    }

    fn engine(workers: usize) -> Engine {
        engine_on(workers, Arc::new(Pool::new(workers)))
    }

    #[test]
    fn batch_preserves_request_order() {
        let engine = engine(3);
        let requests: Vec<ServeRequest> = (0..12)
            .map(|id| ServeRequest {
                id,
                aig: toggle(&format!("t{}", id % 3)),
                workload: Workload::uniform(0, 0.5),
                init_seed: id % 2,
            })
            .collect();
        let responses = engine.serve_batch(requests);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        assert!(responses.iter().all(|r| r.result.is_ok()));
        assert_eq!(engine.requests_served(), 12);
    }

    #[test]
    fn identical_requests_hit_the_cache_across_workers() {
        let engine = engine(4);
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        // Warm sequentially, then spray the same request.
        let first = engine.serve_batch(vec![make(0)]);
        assert!(!first[0].result.as_ref().unwrap().cache_hit);
        let responses = engine.serve_batch((1..9).map(make).collect());
        assert!(responses
            .iter()
            .all(|r| r.result.as_ref().unwrap().cache_hit));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn invalid_circuit_yields_typed_error_not_a_dead_worker() {
        let engine = engine(1);
        let mut bad = SeqAig::new("bad");
        bad.add_ff("q", false); // never connected
        let responses = engine.serve_batch(vec![
            ServeRequest {
                id: 0,
                aig: bad,
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
            ServeRequest {
                id: 1,
                aig: toggle("ok"),
                workload: Workload::uniform(0, 0.5),
                init_seed: 0,
            },
        ]);
        assert!(matches!(responses[0].result, Err(ServeError::Netlist(_))));
        // The engine survived and served the next request.
        assert!(responses[1].result.is_ok());
    }

    #[test]
    fn short_workload_is_rejected() {
        let engine = engine(1);
        let mut aig = SeqAig::new("pi");
        aig.add_pi("a");
        let responses = engine.serve_batch(vec![ServeRequest {
            id: 0,
            aig,
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        }]);
        assert!(matches!(
            responses[0].result,
            Err(ServeError::WorkloadTooShort { pis: 1, stimuli: 0 })
        ));
    }

    #[test]
    fn submit_delivers_on_the_returned_channel() {
        for threads in [1, 3] {
            let engine = engine_on(2, Arc::new(Pool::new(threads)));
            let response = engine
                .submit(ServeRequest {
                    id: 7,
                    aig: toggle("t"),
                    workload: Workload::uniform(0, 0.5),
                    init_seed: 0,
                })
                .wait();
            assert_eq!(response.id, 7);
            assert!(response.result.is_ok());
            assert_eq!(engine.requests_served(), 1);
        }
    }

    #[test]
    fn served_hook_observes_batch_and_submit_paths() {
        let engine = engine(2);
        let seen = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&seen);
        engine.set_served_hook(Arc::new(move |response, latency| {
            assert!(response.result.is_ok());
            assert!(latency <= Duration::from_secs(60));
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        engine.serve_batch((0..5).map(make).collect());
        engine.submit(make(9)).wait();
        assert_eq!(seen.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn dropped_reply_sender_yields_typed_engine_error() {
        // A task that dies before sending surfaces as ReplyDropped — the
        // caller never panics on recv and never hangs.
        let (reply, receiver) = mpsc::channel::<ServeResponse>();
        drop(reply);
        let pending = PendingResponse {
            id: 3,
            design: "d".into(),
            receiver,
        };
        let response = pending.wait();
        assert_eq!(response.id, 3);
        assert_eq!(response.design, "d");
        assert!(matches!(
            response.result,
            Err(ServeError::Engine(EngineError::ReplyDropped))
        ));
    }

    #[test]
    fn swap_model_clears_cache_and_keeps_serving() {
        let engine = engine(2);
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        engine.serve_batch(vec![make(0)]);
        assert!(engine.lookup_cached(&make(1)).is_some());
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        engine.swap_model(InferenceModel::from_model(&model).unwrap());
        // The old entry is gone (old weights), and serving still works.
        assert!(engine.lookup_cached(&make(2)).is_none());
        let responses = engine.serve_batch(vec![make(3)]);
        assert!(responses[0].result.is_ok());
        assert!(!responses[0].result.as_ref().unwrap().cache_hit);
    }

    #[test]
    fn engines_share_a_pool_without_interference() {
        let pool = Arc::new(Pool::new(3));
        let a = engine_on(2, Arc::clone(&pool));
        let b = engine_on(2, Arc::clone(&pool));
        let make = |id| ServeRequest {
            id,
            aig: toggle("t"),
            workload: Workload::uniform(0, 0.5),
            init_seed: 0,
        };
        let ra = a.serve_batch((0..4).map(make).collect());
        let rb = b.serve_batch((0..4).map(make).collect());
        assert!(ra.iter().chain(&rb).all(|r| r.result.is_ok()));
        assert_eq!(a.requests_served(), 4);
        assert_eq!(b.requests_served(), 4);
    }
}
