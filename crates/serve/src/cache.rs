//! Content-addressed LRU cache of inference results.
//!
//! The serving workload described by the paper's downstream tasks (power
//! estimation, reliability) hammers a *frozen* model with repeated queries
//! over the same or near-identical circuits. The cache keys results by
//! **content**, not identity: the circuit contributes its canonical
//! [`structural_hash`] (invariant under node renumbering), the workload its
//! per-PI stimulus *paired with the PI's name* (so a renumbered circuit with
//! a correspondingly reordered workload still hits, while assigning the same
//! stimulus vector to differently-named PIs misses), and the initial-state
//! seed completes the key. Repeated circuit+workload queries are O(1).
//!
//! # Numbering semantics of cached results
//!
//! Content addressing deliberately identifies all renumberings of one
//! circuit: a hit reproduces the outputs of the request that *populated*
//! the entry, computed under that request's node numbering. Per-node rows
//! are indexed by the populating numbering, and because
//! `initial_states` seeds the random non-PI rows by node index, even
//! circuit-level outputs (pooled embedding, prediction means) would come
//! out slightly different under a different numbering of the same
//! structure — the cache pins them to the first numbering seen. Callers
//! that need numbering-exact results must query with one consistent
//! numbering (or disable the cache); callers treating the model as a
//! content-addressed embedding provider get exactly the determinism they
//! want: one circuit structure + workload + seed ⇒ one stable answer.

use std::collections::HashMap;
use std::sync::Arc;

use deepseq_core::Predictions;
use deepseq_netlist::hash::{combine, hash_bytes, mix};
use deepseq_netlist::{structural_hash, SeqAig};
use deepseq_nn::Matrix;
use deepseq_sim::Workload;

/// Content address of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural hash of the circuit.
    pub structural: u64,
    /// Order-invariant hash of the (PI name, stimulus) pairs.
    pub workload: u64,
    /// Seed of the random non-PI rows of the initial state matrix.
    pub init_seed: u64,
}

impl CacheKey {
    /// Computes the content address of a request.
    pub fn for_request(aig: &SeqAig, workload: &Workload, init_seed: u64) -> CacheKey {
        let stimuli = workload.stimuli();
        let mut wsum = 0u64;
        // Duplicate PI names are legal in parsed netlists; rank same-named
        // PIs by id order so swapping their stimuli changes the key (a false
        // miss under renumbering is safe, a false hit would not be).
        let mut name_rank: HashMap<&str, u64> = HashMap::new();
        for (i, pi) in aig.pis().iter().enumerate() {
            let name = aig.node_name(*pi).unwrap_or("");
            let rank = name_rank.entry(name).or_insert(0);
            let mut h = combine(hash_bytes(name.as_bytes()), *rank);
            *rank += 1;
            match stimuli.get(i) {
                Some(s) => {
                    h = combine(h, s.p1.to_bits());
                    h = combine(h, s.density.to_bits());
                }
                None => h = combine(h, u64::MAX),
            }
            // Order-invariant: the multiset of (name, rank, stimulus)
            // triples is what matters, not PI id order.
            wsum = wsum.wrapping_add(mix(h));
        }
        CacheKey {
            structural: structural_hash(aig),
            workload: combine(wsum, stimuli.len() as u64),
            init_seed,
        }
    }
}

/// A cached forward-pass result, shared by `Arc` so cache hits are
/// allocation-free.
///
/// Per-node rows follow the node numbering of the request that populated
/// the entry — see the [module docs](self) on row-numbering semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedInference {
    /// Per-node predictions.
    pub predictions: Predictions,
    /// `1×d` mean-pooled circuit embedding.
    pub embedding: Matrix,
    /// Node count of the circuit that produced them.
    pub num_nodes: usize,
}

/// Hit/miss/eviction counters of an [`EmbeddingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded LRU of [`CachedInference`] results keyed by [`CacheKey`].
///
/// Recency is tracked with a monotonic tick per entry; eviction scans for
/// the minimum tick, which is O(capacity) — irrelevant next to a forward
/// pass and free of unsafe pointer juggling. Wrap it in a `Mutex` to share
/// (the [`Engine`](crate::Engine) does).
///
/// # Example
/// ```
/// use deepseq_serve::{CachedInference, CacheKey, EmbeddingCache};
/// use deepseq_core::Predictions;
/// use deepseq_nn::Matrix;
/// use std::sync::Arc;
///
/// let mut cache = EmbeddingCache::new(2);
/// let key = CacheKey { structural: 1, workload: 2, init_seed: 3 };
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, Arc::new(CachedInference {
///     predictions: Predictions { tr: Matrix::zeros(1, 2), lg: Matrix::zeros(1, 1) },
///     embedding: Matrix::zeros(1, 4),
///     num_nodes: 1,
/// }));
/// assert!(cache.get(&key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    map: HashMap<CacheKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<CachedInference>,
    last_used: u64,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        EmbeddingCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            ..EmbeddingCache::default()
        }
    }

    /// Looks a key up, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedInference>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedInference>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops one entry if present (the `cache_evict` fault hook uses this
    /// to force a recompute path). Does not count as an eviction.
    pub fn remove(&mut self, key: &CacheKey) -> Option<Arc<CachedInference>> {
        self.map.remove(key).map(|entry| entry.value)
    }

    /// Drops all entries, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::PiStimulus;

    fn dummy(n: usize) -> Arc<CachedInference> {
        Arc::new(CachedInference {
            predictions: Predictions {
                tr: Matrix::zeros(n, 2),
                lg: Matrix::zeros(n, 1),
            },
            embedding: Matrix::zeros(1, 4),
            num_nodes: n,
        })
    }

    fn key(k: u64) -> CacheKey {
        CacheKey {
            structural: k,
            workload: 0,
            init_seed: 0,
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = EmbeddingCache::new(2);
        cache.insert(key(1), dummy(1));
        cache.insert(key(2), dummy(2));
        assert!(cache.get(&key(1)).is_some()); // refresh 1 ⇒ 2 is LRU
        cache.insert(key(3), dummy(3));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = EmbeddingCache::new(0);
        cache.insert(key(1), dummy(1));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut cache = EmbeddingCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), dummy(1));
        assert!(cache.get(&key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_binds_workload_to_pi_names() {
        let mut aig = SeqAig::new("k");
        aig.add_pi("a");
        aig.add_pi("b");
        let w1 = Workload::new(vec![
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let w2 = Workload::new(vec![
            PiStimulus::independent(0.9),
            PiStimulus::independent(0.1),
        ]);
        // Same stimulus multiset, different PI assignment ⇒ different key.
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w2, 0)
        );
        // Different init seed ⇒ different key.
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w1, 1)
        );
        // Identical request ⇒ identical key.
        assert_eq!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w1, 0)
        );
    }

    #[test]
    fn key_distinguishes_swapped_stimuli_on_duplicate_pi_names() {
        // Parsed netlists can legally carry duplicate input names; swapping
        // the stimuli of two same-named PIs must change the key (the two
        // requests produce different h0 matrices).
        let mut aig = SeqAig::new("dup");
        aig.add_pi("x");
        aig.add_pi("x");
        let w1 = Workload::new(vec![
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let w2 = Workload::new(vec![
            PiStimulus::independent(0.9),
            PiStimulus::independent(0.1),
        ]);
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w2, 0)
        );
    }
}
