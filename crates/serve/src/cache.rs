//! Content-addressed LRU caches of inference results, at two granularities:
//! whole circuits ([`EmbeddingCache`]) and fanin-cone components
//! ([`ConeMemo`]).
//!
//! The serving workload described by the paper's downstream tasks (power
//! estimation, reliability) hammers a *frozen* model with repeated queries
//! over the same or near-identical circuits. The cache keys results by
//! **content**, not identity: the circuit contributes its canonical
//! [`structural_hash`] (invariant under node renumbering), the workload its
//! per-PI stimulus *paired with the PI's name* (so a renumbered circuit with
//! a correspondingly reordered workload still hits, while assigning the same
//! stimulus vector to differently-named PIs misses), and the initial-state
//! seed completes the key. Repeated circuit+workload queries are O(1).
//!
//! # Numbering semantics of cached results
//!
//! Content addressing deliberately identifies all renumberings of one
//! circuit: a hit reproduces the outputs of the request that *populated*
//! the entry, computed under that request's node numbering. Per-node rows
//! are indexed by the populating numbering, and because
//! `initial_states` seeds the random non-PI rows by node index, even
//! circuit-level outputs (pooled embedding, prediction means) would come
//! out slightly different under a different numbering of the same
//! structure — the cache pins them to the first numbering seen. Callers
//! that need numbering-exact results must query with one consistent
//! numbering (or disable the cache); callers treating the model as a
//! content-addressed embedding provider get exactly the determinism they
//! want: one circuit structure + workload + seed ⇒ one stable answer.
//!
//! # Cone granularity
//!
//! The [`ConeMemo`] caches *below* whole-circuit granularity: the final
//! propagated state rows of one weakly connected component, keyed by an
//! order-sensitive structural fingerprint of the component plus a content
//! hash of its actual initial-state rows (see
//! [`ConeKey`]). Because per-node updates are row-independent within a
//! level and a component's levels are intrinsic to it, those rows are a
//! pure function of the key — a request whose circuit shares components
//! with a cached one reuses their rows bitwise-identically and only
//! recomputes the changed components. The engine's cone path
//! (`crate::cone`) does the partitioning, extraction and reassembly.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

use deepseq_core::Predictions;
use deepseq_netlist::hash::{combine, hash_bytes, mix};
use deepseq_netlist::{structural_hash, SeqAig};
use deepseq_nn::Matrix;
use deepseq_sim::Workload;

/// Content address of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural hash of the circuit.
    pub structural: u64,
    /// Order-invariant hash of the (PI name, stimulus) pairs.
    pub workload: u64,
    /// Seed of the random non-PI rows of the initial state matrix.
    pub init_seed: u64,
}

/// Tag separating trailing (beyond-the-PI-list) stimuli from the per-PI
/// hash stream in [`CacheKey::for_request`].
const TAG_TRAILING: u64 = 0x74726C; // "trl"

impl CacheKey {
    /// Computes the content address of a request.
    pub fn for_request(aig: &SeqAig, workload: &Workload, init_seed: u64) -> CacheKey {
        let stimuli = workload.stimuli();
        let mut wsum = 0u64;
        // Duplicate PI names are legal in parsed netlists; rank same-named
        // PIs by id order so swapping their stimuli changes the key (a false
        // miss under renumbering is safe, a false hit would not be).
        let mut name_rank: HashMap<&str, u64> = HashMap::new();
        for (i, pi) in aig.pis().iter().enumerate() {
            let name = aig.node_name(*pi).unwrap_or("");
            let rank = name_rank.entry(name).or_insert(0);
            let mut h = combine(hash_bytes(name.as_bytes()), *rank);
            *rank += 1;
            match stimuli.get(i) {
                Some(s) => {
                    h = combine(h, s.p1.to_bits());
                    h = combine(h, s.density.to_bits());
                }
                None => h = combine(h, u64::MAX),
            }
            // Order-invariant: the multiset of (name, rank, stimulus)
            // triples is what matters, not PI id order.
            wsum = wsum.wrapping_add(mix(h));
        }
        // Stimuli beyond the PI list never reach the model, but they are
        // part of the request: hash them by index so two oversized workloads
        // of equal length cannot collide into one key (a false hit).
        for (i, s) in stimuli.iter().enumerate().skip(aig.pis().len()) {
            let mut h = combine(mix(TAG_TRAILING), i as u64);
            h = combine(h, s.p1.to_bits());
            h = combine(h, s.density.to_bits());
            wsum = wsum.wrapping_add(mix(h));
        }
        CacheKey {
            structural: structural_hash(aig),
            workload: combine(wsum, stimuli.len() as u64),
            init_seed,
        }
    }
}

/// A cached forward-pass result, shared by `Arc` so cache hits are
/// allocation-free.
///
/// Per-node rows follow the node numbering of the request that populated
/// the entry — see the [module docs](self) on row-numbering semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedInference {
    /// Per-node predictions.
    pub predictions: Predictions,
    /// `1×d` mean-pooled circuit embedding.
    pub embedding: Matrix,
    /// Node count of the circuit that produced them.
    pub num_nodes: usize,
}

/// Hit/miss/eviction counters of an [`EmbeddingCache`] or [`ConeMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared LRU machinery of both cache granularities: a `HashMap` for
/// O(1) lookup plus a `BTreeMap` keyed by last-used tick for O(log n)
/// eviction of the minimum — ticks are unique (every touch bumps the
/// counter), so the tree is a faithful recency order and eviction never
/// scans. Counter semantics match the original O(capacity) scan exactly.
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, LruEntry<V>>,
    by_tick: BTreeMap<u64, K>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct LruEntry<V> {
    value: V,
    last_used: u64,
}

impl<K, V> Default for Lru<K, V> {
    fn default() -> Self {
        Lru {
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            capacity: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: Eq + Hash + Copy, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::with_capacity(capacity.min(1024)),
            by_tick: BTreeMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                self.by_tick.remove(&entry.last_used);
                entry.last_used = self.tick;
                self.by_tick.insert(self.tick, *key);
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                // Refresh in place.
                self.by_tick.remove(&entry.last_used);
                entry.value = value;
                entry.last_used = self.tick;
                self.by_tick.insert(self.tick, key);
                return;
            }
            None => {
                if self.map.len() >= self.capacity {
                    if let Some((&oldest_tick, &oldest_key)) = self.by_tick.iter().next() {
                        self.by_tick.remove(&oldest_tick);
                        self.map.remove(&oldest_key);
                        self.evictions += 1;
                    }
                }
            }
        }
        self.map.insert(
            key,
            LruEntry {
                value,
                last_used: self.tick,
            },
        );
        self.by_tick.insert(self.tick, key);
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|entry| {
            self.by_tick.remove(&entry.last_used);
            entry.value
        })
    }

    fn clear(&mut self) {
        self.map.clear();
        self.by_tick.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Bounded LRU of [`CachedInference`] results keyed by [`CacheKey`].
///
/// Recency is tracked with a monotonic tick per entry; a `BTreeMap` over
/// the (unique) ticks gives O(log n) eviction of the least recently used
/// entry — the O(capacity) min-scan it replaces became a hot loop once the
/// cone memo multiplied entry counts. Wrap it in a `Mutex` to share
/// (the [`Engine`](crate::Engine) does).
///
/// # Example
/// ```
/// use deepseq_serve::{CachedInference, CacheKey, EmbeddingCache};
/// use deepseq_core::Predictions;
/// use deepseq_nn::Matrix;
/// use std::sync::Arc;
///
/// let mut cache = EmbeddingCache::new(2);
/// let key = CacheKey { structural: 1, workload: 2, init_seed: 3 };
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, Arc::new(CachedInference {
///     predictions: Predictions { tr: Matrix::zeros(1, 2), lg: Matrix::zeros(1, 1) },
///     embedding: Matrix::zeros(1, 4),
///     num_nodes: 1,
/// }));
/// assert!(cache.get(&key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    lru: Lru<CacheKey, Arc<CachedInference>>,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        EmbeddingCache {
            lru: Lru::new(capacity),
        }
    }

    /// Looks a key up, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedInference>> {
        self.lru.get(key)
    }

    /// Inserts (or refreshes) a result, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedInference>) {
        self.lru.insert(key, value);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// Drops one entry if present (the `cache_evict` fault hook uses this
    /// to force a recompute path). Does not count as an eviction.
    pub fn remove(&mut self, key: &CacheKey) -> Option<Arc<CachedInference>> {
        self.lru.remove(key)
    }

    /// Drops all entries, keeping the counters.
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

/// Content address of one weakly-connected component's propagated states.
///
/// Soundness: the final state rows of a component are a pure function of
/// (weights, config, component structure, its initial rows). The `model`
/// generation pins the weights+config, `structure` is an order-sensitive
/// fingerprint of the component's nodes in ascending-id order with local
/// fanin ordinals (capturing exactly the level structure, gather order and
/// accumulation order of propagation), and `h0` hashes the component's
/// actual initial-state row bytes (capturing the workload values, the
/// node-index-seeded random rows and the hidden dimension). Anything that
/// could change a bit of the result changes the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConeKey {
    /// Generation of the [`InferenceModel`](crate::InferenceModel) the rows
    /// were computed under (unique per loaded model, shared by shards
    /// serving the same weights).
    pub model: u64,
    /// Order-sensitive structural fingerprint of the component.
    pub structure: u64,
    /// Content hash of the component's initial-state rows.
    pub h0: u64,
}

/// The final propagated state rows of one component, in ascending-node-id
/// order of the populating circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeStates {
    /// `k×d` state rows (`k` = component size).
    pub rows: Matrix,
}

/// Bounded LRU of per-component propagated states keyed by [`ConeKey`] —
/// the cone-granularity memo layer under the whole-circuit
/// [`EmbeddingCache`].
///
/// A request that misses the exact cache but shares components with cached
/// traffic reuses their rows and only propagates the changed components;
/// reassembled results are bitwise-identical to a full recompute (see the
/// [module docs](self) and the property tests). Entries computed under a
/// replaced model die out naturally: the [`ConeKey`] carries the model
/// generation, so stale rows can never hit and LRU pressure reclaims them.
#[derive(Debug, Default)]
pub struct ConeMemo {
    lru: Lru<ConeKey, Arc<ConeStates>>,
}

impl ConeMemo {
    /// A memo holding at most `capacity` component entries (0 disables the
    /// cone path entirely — the engine then always runs whole circuits).
    pub fn new(capacity: usize) -> Self {
        ConeMemo {
            lru: Lru::new(capacity),
        }
    }

    /// Looks a component up, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, key: &ConeKey) -> Option<Arc<ConeStates>> {
        self.lru.get(key)
    }

    /// Inserts (or refreshes) a component's rows.
    pub fn insert(&mut self, key: ConeKey, value: Arc<ConeStates>) {
        self.lru.insert(key, value);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// True if the memo can hold entries (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.lru.capacity > 0
    }

    /// Drops all entries, keeping the counters.
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::PiStimulus;

    fn dummy(n: usize) -> Arc<CachedInference> {
        Arc::new(CachedInference {
            predictions: Predictions {
                tr: Matrix::zeros(n, 2),
                lg: Matrix::zeros(n, 1),
            },
            embedding: Matrix::zeros(1, 4),
            num_nodes: n,
        })
    }

    fn key(k: u64) -> CacheKey {
        CacheKey {
            structural: k,
            workload: 0,
            init_seed: 0,
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = EmbeddingCache::new(2);
        cache.insert(key(1), dummy(1));
        cache.insert(key(2), dummy(2));
        assert!(cache.get(&key(1)).is_some()); // refresh 1 ⇒ 2 is LRU
        cache.insert(key(3), dummy(3));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = EmbeddingCache::new(0);
        cache.insert(key(1), dummy(1));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut cache = EmbeddingCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), dummy(1));
        assert!(cache.get(&key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_order_survives_refreshing_inserts() {
        // Re-inserting an existing key must refresh its recency, not grow
        // the tick index: the stalest *other* entry is evicted next.
        let mut cache = EmbeddingCache::new(2);
        cache.insert(key(1), dummy(1));
        cache.insert(key(2), dummy(2));
        cache.insert(key(1), dummy(10)); // refresh 1 ⇒ 2 is LRU
        cache.insert(key(3), dummy(3));
        assert!(cache.get(&key(2)).is_none());
        assert_eq!(cache.get(&key(1)).unwrap().num_nodes, 10);
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn remove_and_clear_keep_the_tick_index_consistent() {
        let mut cache = EmbeddingCache::new(3);
        cache.insert(key(1), dummy(1));
        cache.insert(key(2), dummy(2));
        assert!(cache.remove(&key(1)).is_some());
        assert!(cache.remove(&key(1)).is_none());
        assert_eq!(cache.stats().evictions, 0); // remove is not an eviction
        cache.clear();
        assert!(cache.is_empty());
        // Reuse after clear: no stale tick entries can evict a live key.
        cache.insert(key(4), dummy(4));
        cache.insert(key(5), dummy(5));
        cache.insert(key(6), dummy(6));
        cache.insert(key(7), dummy(7));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(4)).is_none()); // 4 was the LRU
        assert!(cache.get(&key(7)).is_some());
    }

    #[test]
    fn lru_eviction_is_log_time_under_pressure() {
        // Sanity: a large churn loop completes quickly and keeps exactly
        // `capacity` entries with the newest keys resident.
        let mut cache = EmbeddingCache::new(64);
        for i in 0..10_000u64 {
            cache.insert(key(i), dummy(1));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.evictions, 10_000 - 64);
        assert!(cache.get(&key(9_999)).is_some());
        assert!(cache.get(&key(0)).is_none());
    }

    #[test]
    fn key_binds_workload_to_pi_names() {
        let mut aig = SeqAig::new("k");
        aig.add_pi("a");
        aig.add_pi("b");
        let w1 = Workload::new(vec![
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let w2 = Workload::new(vec![
            PiStimulus::independent(0.9),
            PiStimulus::independent(0.1),
        ]);
        // Same stimulus multiset, different PI assignment ⇒ different key.
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w2, 0)
        );
        // Different init seed ⇒ different key.
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w1, 1)
        );
        // Identical request ⇒ identical key.
        assert_eq!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w1, 0)
        );
    }

    #[test]
    fn key_distinguishes_swapped_stimuli_on_duplicate_pi_names() {
        // Parsed netlists can legally carry duplicate input names; swapping
        // the stimuli of two same-named PIs must change the key (the two
        // requests produce different h0 matrices).
        let mut aig = SeqAig::new("dup");
        aig.add_pi("x");
        aig.add_pi("x");
        let w1 = Workload::new(vec![
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let w2 = Workload::new(vec![
            PiStimulus::independent(0.9),
            PiStimulus::independent(0.1),
        ]);
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w2, 0)
        );
    }

    #[test]
    fn key_hashes_trailing_stimuli_beyond_the_pi_list() {
        // Regression: a workload longer than the PI list used to contribute
        // its trailing stimuli only via the total length, so two different
        // oversized workloads of equal length collided into one key — a
        // false cache hit. Trailing stimuli must be hashed by index.
        let mut aig = SeqAig::new("short");
        aig.add_pi("a");
        let covered = PiStimulus::independent(0.5);
        let w1 = Workload::new(vec![covered, PiStimulus::independent(0.1)]);
        let w2 = Workload::new(vec![covered, PiStimulus::independent(0.9)]);
        assert_ne!(
            CacheKey::for_request(&aig, &w1, 0),
            CacheKey::for_request(&aig, &w2, 0)
        );
        // Swapping two trailing stimuli changes the key too (index-bound).
        let w3 = Workload::new(vec![
            covered,
            PiStimulus::independent(0.1),
            PiStimulus::independent(0.9),
        ]);
        let w4 = Workload::new(vec![
            covered,
            PiStimulus::independent(0.9),
            PiStimulus::independent(0.1),
        ]);
        assert_ne!(
            CacheKey::for_request(&aig, &w3, 0),
            CacheKey::for_request(&aig, &w4, 0)
        );
    }

    #[test]
    fn cone_memo_counts_and_evicts() {
        let mut memo = ConeMemo::new(2);
        let ck = |s| ConeKey {
            model: 1,
            structure: s,
            h0: 0,
        };
        let rows = |k| {
            Arc::new(ConeStates {
                rows: Matrix::zeros(k, 4),
            })
        };
        assert!(memo.get(&ck(1)).is_none());
        memo.insert(ck(1), rows(1));
        memo.insert(ck(2), rows(2));
        assert!(memo.get(&ck(1)).is_some()); // refresh ⇒ 2 is LRU
        memo.insert(ck(3), rows(3));
        assert!(memo.get(&ck(2)).is_none());
        let s = memo.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(memo.is_enabled());
        assert!(!ConeMemo::new(0).is_enabled());
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn cone_key_separates_model_generations() {
        let mut memo = ConeMemo::new(8);
        let rows = Arc::new(ConeStates {
            rows: Matrix::zeros(1, 4),
        });
        let k1 = ConeKey {
            model: 1,
            structure: 7,
            h0: 9,
        };
        let k2 = ConeKey { model: 2, ..k1 };
        memo.insert(k1, rows);
        assert!(memo.get(&k1).is_some());
        assert!(memo.get(&k2).is_none());
    }
}
