//! Tape-free forward pass for serving.
//!
//! [`DeepSeq::forward`](deepseq_core::DeepSeq) records every intermediate on
//! an autograd [`Tape`](deepseq_nn::Tape) so gradients can flow backwards —
//! exactly what inference traffic does *not* need. [`InferenceModel`] owns a
//! frozen copy of the weights and replays the same levelized propagation
//! (paper Fig. 2) on plain [`Matrix`] ops: one `n×d` state matrix updated in
//! place, per-level gathers and GRU steps into preallocated scratch buffers
//! ([`Workspace`]), no gradient bookkeeping, no tape growth.
//!
//! Every operation mirrors the corresponding tape op's arithmetic — same
//! loops, same accumulation order — so the predictions are **bitwise equal**
//! to [`DeepSeq::predict`] on the same checkpoint (asserted by the crate's
//! equivalence tests); only the time and memory differ.
//!
//! # Level parallelism
//!
//! The nodes of one level are independent: each node's new state depends
//! only on the *previous* states of its neighbours. Large levels are
//! therefore chunked across the worker [`Pool`] — each chunk runs the full
//! gather → aggregate → GRU pipeline on its own [`Workspace`]-owned scratch
//! (one set per pool thread), and the chunk outputs are scattered back into
//! the state matrix afterwards. Edges stay grouped by owning node
//! (`LevelBatch` sorts them by segment), so per-node arithmetic — including
//! the segment softmax — is identical at any chunking, and outputs are
//! **bitwise equal across thread counts** (property-tested in this crate's
//! `tests/properties.rs` over pools of 1, 2, 4 and 7 threads).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deepseq_core::{Aggregator, CircuitGraph, DeepSeq, DeepSeqConfig, LevelBatch, Predictions};
use deepseq_netlist::aig::NUM_NODE_TYPES;
use deepseq_nn::pool::chunk_ranges_or_whole;
use deepseq_nn::trace;
use deepseq_nn::{Act, Kernel, Matrix, Params, Pool};

use crate::ServeError;

/// Minimum nodes per level chunk — below this, the per-chunk GEMMs are too
/// small to pay for fan-out.
const MIN_NODES_PER_CHUNK: usize = 16;

/// `y = x·W + b` weights of one dense layer.
#[derive(Debug, Clone)]
struct LinearWeights {
    w: Matrix,
    b: Matrix,
}

/// Additive-attention scoring vectors (Eq. 5/6).
#[derive(Debug, Clone)]
struct AttentionWeights {
    w1: Matrix,
    w2: Matrix,
}

/// Frozen aggregation weights of one propagation direction.
#[derive(Debug, Clone)]
enum AggWeights {
    ConvSum(LinearWeights),
    Attention(AttentionWeights),
    Dual {
        att: AttentionWeights,
        gate: AttentionWeights,
    },
}

impl AggWeights {
    fn output_dim(&self, hidden_dim: usize) -> usize {
        match self {
            AggWeights::Dual { .. } => 2 * hidden_dim,
            _ => hidden_dim,
        }
    }
}

/// Frozen GRU cell weights (the Combine function, Eq. 8).
#[derive(Debug, Clone)]
struct GruWeights {
    wz: Matrix,
    uz: Matrix,
    bz: Matrix,
    wr: Matrix,
    ur: Matrix,
    br: Matrix,
    wn: Matrix,
    un: Matrix,
    bn: Matrix,
}

/// One propagation direction: aggregation + GRU combine.
#[derive(Debug, Clone)]
struct DirectionWeights {
    agg: AggWeights,
    gru: GruWeights,
}

/// A frozen, tape-free DeepSeq model for inference.
///
/// Construct it from a trained [`DeepSeq`] (or directly from a text/binary
/// checkpoint) and call [`InferenceModel::predict`]; for request loops,
/// keep one [`Workspace`] per thread and use
/// [`InferenceModel::run`] to avoid per-request allocation.
///
/// # Example
/// ```
/// use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
/// use deepseq_core::encoding::initial_states;
/// use deepseq_netlist::SeqAig;
/// use deepseq_serve::InferenceModel;
/// use deepseq_sim::Workload;
///
/// let mut aig = SeqAig::new("toggle");
/// let q = aig.add_ff("q", false);
/// let n = aig.add_not(q);
/// aig.connect_ff(q, n)?;
///
/// let model = DeepSeq::new(DeepSeqConfig { hidden_dim: 8, iterations: 2,
///                                          ..DeepSeqConfig::default() });
/// let frozen = InferenceModel::from_model(&model).unwrap();
/// let graph = CircuitGraph::build(&aig);
/// let h0 = initial_states(&aig, &Workload::uniform(0, 0.5), 8, 0);
/// // Tape-free predictions are bitwise equal to the tape path.
/// assert_eq!(frozen.predict(&graph, &h0), model.predict(&graph, &h0));
/// # Ok::<(), deepseq_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InferenceModel {
    config: DeepSeqConfig,
    generation: u64,
    forward: DirectionWeights,
    reverse: DirectionWeights,
    tr_head: Vec<LinearWeights>,
    lg_head: Vec<LinearWeights>,
}

/// Process-wide counter behind [`InferenceModel::generation`]. Starts at 1
/// so 0 can mean "no model" in diagnostics.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Predictions plus the mean-pooled circuit embedding of one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutput {
    /// Per-node transition / logic probability predictions.
    pub predictions: Predictions,
    /// `1×d` mean-pooled circuit embedding (Eq. 2 readout).
    pub embedding: Matrix,
}

impl InferenceModel {
    /// Freezes the weights of a trained model.
    ///
    /// # Errors
    /// [`ServeError::MissingParam`] if the parameter store does not contain
    /// the canonical DeepSeq parameter names (never for models built by
    /// [`DeepSeq::new`]).
    pub fn from_model(model: &DeepSeq) -> Result<Self, ServeError> {
        let config = *model.config();
        let params = model.params();
        Ok(InferenceModel {
            config,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            forward: direction_weights(params, "fwd", config.aggregator)?,
            reverse: direction_weights(params, "rev", config.aggregator)?,
            tr_head: mlp_weights(params, "tr_head", 3)?,
            lg_head: mlp_weights(params, "lg_head", 3)?,
        })
    }

    /// Loads a text checkpoint (see [`DeepSeq::from_checkpoint`]) and
    /// freezes it.
    ///
    /// # Errors
    /// Propagates checkpoint parse errors as [`ServeError::Checkpoint`].
    pub fn from_text_checkpoint(text: &str) -> Result<Self, ServeError> {
        InferenceModel::from_model(&DeepSeq::from_checkpoint(text)?)
    }

    /// Loads a binary checkpoint (see [`DeepSeq::from_binary_checkpoint`])
    /// and freezes it.
    ///
    /// # Errors
    /// Propagates checkpoint decode errors as [`ServeError::Checkpoint`].
    pub fn from_binary_checkpoint(bytes: &[u8]) -> Result<Self, ServeError> {
        InferenceModel::from_model(&DeepSeq::from_binary_checkpoint(bytes)?)
    }

    /// The model configuration.
    pub fn config(&self) -> &DeepSeqConfig {
        &self.config
    }

    /// A process-unique generation tag, assigned when the model was frozen.
    ///
    /// Two `InferenceModel` values never share a generation unless one is a
    /// [`Clone`] of the other (clones carry identical weights, so sharing
    /// is sound). The cone memo keys cached state rows by this tag, which
    /// makes a memo shared across shards safe even when shards reload
    /// models independently — stale entries can never hit.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Runs one forward pass into `ws` and returns predictions plus the
    /// pooled circuit embedding. `init_h` is the `n×d` initial state matrix
    /// from [`initial_states`](deepseq_core::encoding::initial_states).
    ///
    /// # Panics
    /// Panics if `init_h` is not `n×hidden_dim` (same contract as
    /// [`DeepSeq::forward`]).
    pub fn run(
        &self,
        graph: &CircuitGraph,
        init_h: &Matrix,
        ws: &mut Workspace,
    ) -> InferenceOutput {
        self.propagate(graph, init_h, ws);
        // Temporarily move the state out so the heads can borrow it next to
        // the mutable head scratch; `readout` on the workspace's own state
        // is exactly the pre-split `run` tail, bitwise.
        let state = std::mem::take(&mut ws.state);
        let out = self.readout(&state, ws);
        ws.state = state;
        out
    }

    /// Runs the iterative propagation only, leaving the final `n×d` node
    /// states in the workspace ([`Workspace::state`]). Together with
    /// [`InferenceModel::readout`] this is exactly [`InferenceModel::run`];
    /// the split exists so the cone-granularity cache can propagate a
    /// sub-circuit and read out an assembled full-state matrix.
    ///
    /// # Panics
    /// Panics if `init_h` is not `n×hidden_dim`.
    pub fn propagate(&self, graph: &CircuitGraph, init_h: &Matrix, ws: &mut Workspace) {
        let _span = trace::span_with(trace::SpanKind::Forward, graph.num_nodes as u64);
        let d = self.config.hidden_dim;
        assert_eq!(
            init_h.shape(),
            (graph.num_nodes, d),
            "init_h must be n×hidden_dim"
        );
        ws.state.reset(graph.num_nodes, d);
        ws.state.data_mut().copy_from_slice(init_h.data());

        for _t in 0..self.config.effective_iterations() {
            for batch in &graph.forward {
                self.run_batch(&self.forward, graph, batch, ws);
            }
            for batch in &graph.reverse {
                self.run_batch(&self.reverse, graph, batch, ws);
            }
            if self.config.scheme.updates_ffs() {
                // Fig. 2 step 4: FFs copy their D-input representation; pair
                // order matters when FFs chain, mirroring the tape version.
                for &(ff, dn) in &graph.ff_pairs {
                    for c in 0..d {
                        let v = ws.state.get(dn as usize, c);
                        ws.state.set(ff as usize, c, v);
                    }
                }
            }
        }
    }

    /// Runs the prediction heads and mean-pool readout over a propagated
    /// `n×d` state matrix. Both heads are row-pure (row `i` of the output
    /// depends only on row `i` of `state`) and the pool sums rows in
    /// ascending order, so reading out an assembled state matrix is
    /// bitwise-identical to reading out one produced by a single
    /// [`InferenceModel::propagate`] over the whole circuit.
    pub fn readout(&self, state: &Matrix, ws: &mut Workspace) -> InferenceOutput {
        let head_span = trace::span(trace::SpanKind::Head);
        let tr = run_head(
            ws.kernel,
            &ws.pool,
            &self.tr_head,
            state,
            &mut ws.head_a,
            &mut ws.head_b,
        );
        let lg = run_head(
            ws.kernel,
            &ws.pool,
            &self.lg_head,
            state,
            &mut ws.head_a,
            &mut ws.head_b,
        );
        drop(head_span);
        let embedding = mean_pool(state);
        InferenceOutput {
            predictions: Predictions { tr, lg },
            embedding,
        }
    }

    /// Convenience wrapper around [`InferenceModel::run`] with a throwaway
    /// workspace.
    pub fn predict(&self, graph: &CircuitGraph, init_h: &Matrix) -> Predictions {
        self.run(graph, init_h, &mut Workspace::new()).predictions
    }

    /// One level batch: gather → aggregate → GRU combine → scatter. Large
    /// levels are chunked across the pool (see the [module docs](self) for
    /// the determinism argument); each chunk computes into its own
    /// [`BatchScratch`], then the caller scatters all chunk outputs.
    fn run_batch(
        &self,
        dir: &DirectionWeights,
        graph: &CircuitGraph,
        batch: &LevelBatch,
        ws: &mut Workspace,
    ) {
        if batch.nodes.is_empty() {
            return;
        }
        let d = self.config.hidden_dim;
        let k = batch.nodes.len();
        let chunks = chunk_ranges_or_whole(k, ws.pool.threads(), MIN_NODES_PER_CHUNK);
        ws.ensure_scratch(chunks.len());

        let kernel = ws.kernel;
        let pool = &ws.pool;
        let state = &ws.state;
        if chunks.len() == 1 {
            run_batch_range(
                kernel,
                pool,
                dir,
                graph,
                batch,
                d,
                0..k,
                state,
                &mut ws.scratch[0],
            );
        } else {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .iter()
                .zip(ws.scratch.iter_mut())
                .map(|(range, scratch)| {
                    let range = range.clone();
                    Box::new(move || {
                        run_batch_range(kernel, pool, dir, graph, batch, d, range, state, scratch);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }

        // Scatter: chunk outputs land in disjoint state rows (node ids are
        // unique within a level), in node order.
        for (range, scratch) in chunks.iter().zip(&ws.scratch) {
            for (i, &v) in batch.nodes[range.clone()].iter().enumerate() {
                ws.state
                    .row_mut(v as usize)
                    .copy_from_slice(scratch.n.row(i));
            }
        }
    }
}

/// The gather → aggregate → GRU pipeline for the nodes `range` of one level
/// batch, writing the new states into `ws.n` (row `i` = node
/// `batch.nodes[range.start + i]`). Reads the shared previous-state matrix;
/// never writes it — the caller scatters afterwards.
#[allow(clippy::too_many_arguments)]
fn run_batch_range(
    kernel: Kernel,
    pool: &Pool,
    dir: &DirectionWeights,
    graph: &CircuitGraph,
    batch: &LevelBatch,
    d: usize,
    range: Range<usize>,
    state: &Matrix,
    ws: &mut BatchScratch,
) {
    let k = range.len();
    let _span = trace::span_with(trace::SpanKind::LevelChunk, k as u64);
    // Edges are sorted by segment, so this chunk's edges are contiguous.
    let e0 = batch
        .edges
        .partition_point(|&(_, seg)| (seg as usize) < range.start);
    let e1 = batch
        .edges
        .partition_point(|&(_, seg)| (seg as usize) < range.end);
    let edges = &batch.edges[e0..e1];
    let seg_base = range.start;
    let m = edges.len();
    let agg_out = dir.agg.output_dim(d);

    // Gather h_v^{t-1} per node, and per edge both the owner's previous
    // state and the neighbour message state.
    ws.node_prev.reset(k, d);
    for (i, &v) in batch.nodes[range.clone()].iter().enumerate() {
        ws.node_prev
            .row_mut(i)
            .copy_from_slice(state.row(v as usize));
    }
    ws.edge_prev.reset(m, d);
    ws.edge_msgs.reset(m, d);
    for (i, &(u, seg)) in edges.iter().enumerate() {
        let owner = batch.nodes[seg as usize] as usize;
        ws.edge_prev.row_mut(i).copy_from_slice(state.row(owner));
        ws.edge_msgs
            .row_mut(i)
            .copy_from_slice(state.row(u as usize));
    }

    // Aggregate into the left `agg_out` columns of the GRU input buffer;
    // the right NUM_NODE_TYPES columns take the node features.
    ws.input.reset(k, agg_out + NUM_NODE_TYPES);
    match &dir.agg {
        AggWeights::ConvSum(lin) => {
            kernel.linear_act_on(
                pool,
                &ws.edge_msgs,
                &lin.w,
                Some(&lin.b),
                Act::Identity,
                &mut ws.weighted,
            );
            segment_sum_into(&ws.weighted, edges, seg_base, k, d, &mut ws.m_lg);
            for i in 0..k {
                ws.input.row_mut(i)[..d].copy_from_slice(ws.m_lg.row(i));
            }
        }
        AggWeights::Attention(att) => {
            attention_message(kernel, pool, att, edges, seg_base, k, ws);
            for i in 0..k {
                ws.input.row_mut(i)[..d].copy_from_slice(ws.m_lg.row(i));
            }
        }
        AggWeights::Dual { att, gate } => {
            // Eq. 5: logic message m_LG.
            attention_message(kernel, pool, att, edges, seg_base, k, ws);
            // Eq. 6: sigmoid transition gate of m_LG against h_v^{t-1},
            // as one fused kernel call.
            kernel.matmul_bias_act_on(
                pool,
                &ws.node_prev,
                &gate.w1,
                Some((&ws.m_lg, &gate.w2)),
                None,
                Act::Sigmoid,
                &mut ws.gate_a,
                &mut ws.gate_b,
            );
            // Eq. 7: input = [m_TR | m_LG | features].
            for i in 0..k {
                let g = ws.gate_a.get(i, 0);
                let lg_row = ws.m_lg.row(i);
                let row = ws.input.row_mut(i);
                for (c, &v) in lg_row.iter().enumerate() {
                    row[c] = v * g;
                    row[d + c] = v;
                }
            }
        }
    }
    for (i, &v) in batch.nodes[range].iter().enumerate() {
        ws.input.row_mut(i)[agg_out..].copy_from_slice(graph.features.row(v as usize));
    }

    // GRU combine (Eq. 8): each gate is one fused kernel call
    // `act(input·W + h·U + b)`, scratch threaded from the workspace.
    let gru = &dir.gru;
    kernel.matmul_bias_act_on(
        pool,
        &ws.input,
        &gru.wz,
        Some((&ws.node_prev, &gru.uz)),
        Some(&gru.bz),
        Act::Sigmoid,
        &mut ws.z,
        &mut ws.tmp,
    );
    kernel.matmul_bias_act_on(
        pool,
        &ws.input,
        &gru.wr,
        Some((&ws.node_prev, &gru.ur)),
        Some(&gru.br),
        Act::Sigmoid,
        &mut ws.r,
        &mut ws.tmp,
    );
    mul_into(&ws.r, &ws.node_prev, &mut ws.tmp);
    kernel.matmul_bias_act_on(
        pool,
        &ws.input,
        &gru.wn,
        Some((&ws.tmp, &gru.un)),
        Some(&gru.bn),
        Act::Tanh,
        &mut ws.n,
        &mut ws.tmp2,
    );

    // h' = (1 - z) ⊙ n + z ⊙ h, with the tape's exact expression tree.
    for ((n, &z), &h) in
        ws.n.data_mut()
            .iter_mut()
            .zip(ws.z.data())
            .zip(ws.node_prev.data())
    {
        *n = (-z + 1.0) * *n + z * h;
    }
}

/// Shared Eq. 5 path: additive scores (one fused kernel call) → segment
/// softmax → weighted segment sum into `ws.m_lg`. `edges` is the chunk's
/// contiguous edge slice and `seg_base` its first node's segment index.
fn attention_message(
    kernel: Kernel,
    pool: &Pool,
    att: &AttentionWeights,
    edges: &[(u32, u32)],
    seg_base: usize,
    k: usize,
    ws: &mut BatchScratch,
) {
    let d = att.w1.rows();
    kernel.matmul_bias_act_on(
        pool,
        &ws.edge_prev,
        &att.w1,
        Some((&ws.edge_msgs, &att.w2)),
        None,
        Act::Identity,
        &mut ws.scores,
        &mut ws.scores_b,
    );
    segment_softmax_into(&ws.scores, edges, seg_base, k, &mut ws.alpha);
    ws.weighted.reset(edges.len(), d);
    for i in 0..edges.len() {
        let a = ws.alpha.get(i, 0);
        for (o, &v) in ws.weighted.row_mut(i).iter_mut().zip(ws.edge_msgs.row(i)) {
            *o = v * a;
        }
    }
    segment_sum_into(&ws.weighted, edges, seg_base, k, d, &mut ws.m_lg);
}

/// Segment softmax over an `m×1` score column, numerically identical to
/// [`Tape::segment_softmax`](deepseq_nn::Tape::segment_softmax). Segments
/// are rebased by `seg_base` (chunked levels pass their node offset).
fn segment_softmax_into(
    scores: &Matrix,
    edges: &[(u32, u32)],
    seg_base: usize,
    num_segments: usize,
    alpha: &mut Matrix,
) {
    let m = edges.len();
    let mut seg_max = vec![f32::NEG_INFINITY; num_segments];
    for (i, &(_, seg)) in edges.iter().enumerate() {
        let seg = seg as usize - seg_base;
        seg_max[seg] = seg_max[seg].max(scores.get(i, 0));
    }
    let mut seg_total = vec![0.0f32; num_segments];
    alpha.reset(m, 1);
    for (i, &(_, seg)) in edges.iter().enumerate() {
        let seg = seg as usize - seg_base;
        let e = (scores.get(i, 0) - seg_max[seg]).exp();
        alpha.set(i, 0, e);
        seg_total[seg] += e;
    }
    for (i, &(_, seg)) in edges.iter().enumerate() {
        let seg = seg as usize - seg_base;
        alpha.set(i, 0, alpha.get(i, 0) / seg_total[seg]);
    }
}

/// Sums edge rows into their owning node rows, in edge order (matching the
/// tape's accumulation order). Segments are rebased by `seg_base`.
fn segment_sum_into(
    src: &Matrix,
    edges: &[(u32, u32)],
    seg_base: usize,
    k: usize,
    d: usize,
    out: &mut Matrix,
) {
    out.reset(k, d);
    for (i, &(_, seg)) in edges.iter().enumerate() {
        let row = out.row_mut(seg as usize - seg_base);
        for (o, &v) in row.iter_mut().zip(src.row(i)) {
            *o += v;
        }
    }
}

/// Element-wise product into `out`.
fn mul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "mul_into shape mismatch");
    out.reset(a.rows(), a.cols());
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = x * y;
    }
}

/// Runs a regressor head (Linear + ReLU stack, final sigmoid) over the full
/// state matrix, alternating between two scratch buffers. Each layer is one
/// fused kernel call; the products row-partition across the pool.
fn run_head(
    kernel: Kernel,
    pool: &Pool,
    layers: &[LinearWeights],
    state: &Matrix,
    a: &mut Matrix,
    b: &mut Matrix,
) -> Matrix {
    let mut src_is_a = false;
    for (i, layer) in layers.iter().enumerate() {
        let (src, dst): (&Matrix, &mut Matrix) = if i == 0 {
            (state, &mut *a)
        } else if src_is_a {
            (&*a, &mut *b)
        } else {
            (&*b, &mut *a)
        };
        let act = if i + 1 < layers.len() {
            Act::Relu
        } else {
            Act::Identity
        };
        kernel.linear_act_on(pool, src, &layer.w, Some(&layer.b), act, dst);
        src_is_a = !src_is_a;
    }
    let out = if src_is_a { &mut *a } else { &mut *b };
    Act::Sigmoid.apply(out.data_mut());
    out.clone()
}

/// Mean-pools node states into a `1×d` embedding, mirroring
/// [`DeepSeq::embed_graph`]'s accumulation order.
fn mean_pool(hidden: &Matrix) -> Matrix {
    let (n, d) = hidden.shape();
    let mut pooled = Matrix::zeros(1, d);
    for r in 0..n {
        for c in 0..d {
            pooled.set(0, c, pooled.get(0, c) + hidden.get(r, c));
        }
    }
    pooled.scale_assign(1.0 / n.max(1) as f32);
    pooled
}

/// Per-chunk scratch of one level-batch pipeline run: every buffer is
/// reshaped with [`Matrix::reset`] (allocation-reusing), so after the first
/// request of a given size a chunk runs with near-zero allocator traffic.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    node_prev: Matrix,
    edge_prev: Matrix,
    edge_msgs: Matrix,
    scores: Matrix,
    scores_b: Matrix,
    alpha: Matrix,
    weighted: Matrix,
    m_lg: Matrix,
    gate_a: Matrix,
    gate_b: Matrix,
    input: Matrix,
    z: Matrix,
    r: Matrix,
    n: Matrix,
    tmp: Matrix,
    tmp2: Matrix,
}

/// Preallocated scratch for [`InferenceModel::run`], plus the GEMM
/// [`Kernel`] and worker [`Pool`] all products of the forward pass dispatch
/// through.
///
/// The workspace owns one `BatchScratch` set per pool thread so large
/// levels can fan out without allocation; all buffers are reshaped with
/// [`Matrix::reset`], which reuses their allocations. Keep one workspace
/// per request-processing thread (the engine does); they are cheap when
/// idle.
///
/// The kernel defaults to [`Kernel::for_serve`] — `auto` (shape-resolved
/// blocked/packed/naive), unless `DEEPSEQ_KERNEL` overrides it; every
/// kernel is bitwise-equal on finite inputs, so this is a pure performance
/// choice. The pool defaults to [`Pool::global`] (sized by
/// `DEEPSEQ_THREADS`); outputs are bitwise-identical at any thread count.
/// Use [`Workspace::with_kernel`] / [`Workspace::with_pool`] to pin either
/// explicitly (benchmarks and the thread-determinism property tests do).
#[derive(Debug, Clone)]
pub struct Workspace {
    kernel: Kernel,
    pool: Arc<Pool>,
    state: Matrix,
    head_a: Matrix,
    head_b: Matrix,
    scratch: Vec<BatchScratch>,
}

impl Workspace {
    /// An empty workspace on the serving-default kernel and the global
    /// pool; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Workspace::with_kernel(Kernel::for_serve())
    }

    /// An empty workspace pinned to a specific GEMM kernel (global pool).
    pub fn with_kernel(kernel: Kernel) -> Self {
        Workspace::with_pool(kernel, Arc::clone(Pool::global()))
    }

    /// An empty workspace pinned to a specific kernel and worker pool.
    pub fn with_pool(kernel: Kernel, pool: Arc<Pool>) -> Self {
        Workspace {
            kernel,
            pool,
            state: Matrix::default(),
            head_a: Matrix::default(),
            head_b: Matrix::default(),
            scratch: vec![BatchScratch::default()],
        }
    }

    /// The kernel this workspace dispatches matrix products through.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The worker pool level chunks and large products fan out across.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The `n×d` node states left by the last
    /// [`propagate`](InferenceModel::propagate) (empty before the first).
    pub fn state(&self) -> &Matrix {
        &self.state
    }

    /// Grows the per-chunk scratch list to at least `chunks` entries.
    fn ensure_scratch(&mut self, chunks: usize) {
        if self.scratch.len() < chunks {
            self.scratch.resize(chunks, BatchScratch::default());
        }
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

fn linear_weights(params: &Params, name: &str) -> Result<LinearWeights, ServeError> {
    Ok(LinearWeights {
        w: take(params, &format!("{name}.w"))?,
        b: take(params, &format!("{name}.b"))?,
    })
}

fn attention_weights(params: &Params, name: &str) -> Result<AttentionWeights, ServeError> {
    Ok(AttentionWeights {
        w1: take(params, &format!("{name}.w1"))?,
        w2: take(params, &format!("{name}.w2"))?,
    })
}

fn direction_weights(
    params: &Params,
    name: &str,
    aggregator: Aggregator,
) -> Result<DirectionWeights, ServeError> {
    let agg = match aggregator {
        Aggregator::ConvSum => {
            AggWeights::ConvSum(linear_weights(params, &format!("{name}.agg.conv"))?)
        }
        Aggregator::Attention => {
            AggWeights::Attention(attention_weights(params, &format!("{name}.agg.att"))?)
        }
        Aggregator::DualAttention => AggWeights::Dual {
            att: attention_weights(params, &format!("{name}.agg.att"))?,
            gate: attention_weights(params, &format!("{name}.agg.gate"))?,
        },
    };
    let gru = GruWeights {
        wz: take(params, &format!("{name}.gru.wz"))?,
        uz: take(params, &format!("{name}.gru.uz"))?,
        bz: take(params, &format!("{name}.gru.bz"))?,
        wr: take(params, &format!("{name}.gru.wr"))?,
        ur: take(params, &format!("{name}.gru.ur"))?,
        br: take(params, &format!("{name}.gru.br"))?,
        wn: take(params, &format!("{name}.gru.wn"))?,
        un: take(params, &format!("{name}.gru.un"))?,
        bn: take(params, &format!("{name}.gru.bn"))?,
    };
    Ok(DirectionWeights { agg, gru })
}

fn mlp_weights(
    params: &Params,
    name: &str,
    depth: usize,
) -> Result<Vec<LinearWeights>, ServeError> {
    (0..depth)
        .map(|i| linear_weights(params, &format!("{name}.{i}")))
        .collect()
}

fn take(params: &Params, name: &str) -> Result<Matrix, ServeError> {
    params
        .find(name)
        .map(|id| params.get(id).clone())
        .ok_or_else(|| ServeError::MissingParam(name.to_string()))
}
