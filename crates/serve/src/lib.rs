//! # deepseq-serve — batched tape-free inference for DeepSeq
//!
//! Downstream, a trained DeepSeq model is a *frozen embedding provider*:
//! power estimation (paper Section IV-C), reliability analysis and the
//! disentangled follow-up DeepSeq2 all issue many forward queries against
//! the same weights, often on the same or near-identical circuits. This
//! crate is the serving chassis for that traffic:
//!
//! * [`InferenceModel`] — a **tape-free forward pass**: the levelized
//!   propagation of `deepseq-core` replayed on plain matrix ops with
//!   preallocated [`Workspace`] scratch buffers. No autograd tape is grown,
//!   and predictions are bitwise-equal to
//!   [`DeepSeq::predict`](deepseq_core::DeepSeq::predict) on the same
//!   checkpoint;
//! * **blocked GEMM kernels** — every product of the forward pass
//!   dispatches through the [`Kernel`](deepseq_nn::Kernel) carried by the
//!   [`Workspace`] (serving default: `auto`, resolving blocked/packed/naive
//!   per product shape; override with the `DEEPSEQ_KERNEL` environment
//!   variable). All kernels are bitwise-equal on finite inputs, so the
//!   choice is pure performance;
//! * **level parallelism** — big levels and large products fan out across
//!   the shared worker [`Pool`](deepseq_nn::Pool) (sized by
//!   `DEEPSEQ_THREADS`), with outputs bitwise-identical at any thread
//!   count;
//! * **binary checkpoints** — loads the `DSQM`/`DSQP` little-endian format
//!   added to `deepseq-nn`/`deepseq-core` alongside the text format
//!   ([`InferenceModel::from_binary_checkpoint`]);
//! * [`EmbeddingCache`] — a **content-addressed LRU**: results keyed by the
//!   canonical structural hash of the circuit
//!   ([`deepseq_netlist::structural_hash`], invariant under node
//!   renumbering) plus the name-bound workload and the init seed, so
//!   repeated circuit+workload queries are O(1);
//! * [`Engine`] — batches independent requests across the **same shared
//!   pool** the level parallelism runs on (one pool for the whole process,
//!   not one thread set per engine), one workspace per concurrent task;
//! * [`HttpServer`] — a **std-only HTTP/1.1 front door** for the engine
//!   (`POST /v1/embed`, `/healthz`, `/metrics`, graceful drain), with
//!   bounded admission (429 on overflow) and per-request deadlines (504
//!   on expiry). See `docs/SERVING.md` for the wire protocol;
//! * the `deepseq-serve` **CLI** — AIGER / `.bench` circuits in, JSON
//!   predictions out, a text↔binary checkpoint converter, and a `serve`
//!   mode that runs the HTTP server.
//!
//! # Example
//!
//! ```
//! use deepseq_core::{DeepSeq, DeepSeqConfig};
//! use deepseq_netlist::SeqAig;
//! use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest};
//! use deepseq_sim::Workload;
//!
//! // Freeze a (here: untrained) model and start an engine.
//! let model = DeepSeq::new(DeepSeqConfig { hidden_dim: 8, iterations: 2,
//!                                          ..DeepSeqConfig::default() });
//! let engine = Engine::new(InferenceModel::from_model(&model).unwrap(),
//!                          EngineOptions { workers: 2, cache_capacity: 32,
//!                                          ..EngineOptions::default() });
//!
//! // Serve a circuit under a workload.
//! let mut aig = SeqAig::new("toggle");
//! let q = aig.add_ff("q", false);
//! let n = aig.add_not(q);
//! aig.connect_ff(q, n)?;
//! let responses = engine.serve_batch(vec![ServeRequest {
//!     id: 0, aig, workload: Workload::uniform(0, 0.5), init_seed: 0,
//! }]);
//! let served = responses[0].result.as_ref().unwrap();
//! assert_eq!(served.data.predictions.lg.rows(), 2);
//! # Ok::<(), deepseq_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cone;
pub mod engine;
pub mod http;
pub mod infer;
pub mod json;
pub mod metrics;
pub mod server;
pub mod shard;

use std::error::Error;
use std::fmt;

use deepseq_netlist::NetlistError;
use deepseq_nn::ParamsError;

pub use cache::{
    CacheKey, CacheStats, CachedInference, ConeKey, ConeMemo, ConeStates, EmbeddingCache,
};
pub use engine::{
    panics_caught, Engine, EngineError, EngineOptions, PendingResponse, ServeRequest,
    ServeResponse, ServedInference,
};
pub use http::{HttpLimits, HttpRequest, HttpResponse};
pub use infer::{InferenceModel, InferenceOutput, Workspace};
pub use metrics::Metrics;
pub use server::{DrainReport, HttpServer, ServerOptions};
pub use shard::{ShardRouter, ShardStat};

/// Errors of the serving subsystem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A checkpoint failed to parse or decode.
    Checkpoint(ParamsError),
    /// The parameter store lacks a canonical DeepSeq parameter.
    MissingParam(String),
    /// The request's circuit is structurally invalid.
    Netlist(NetlistError),
    /// The request's workload covers fewer PIs than the circuit has.
    WorkloadTooShort {
        /// PIs in the circuit.
        pis: usize,
        /// Stimuli in the workload.
        stimuli: usize,
    },
    /// The engine's machinery failed while processing the request (caught
    /// panic, dropped reply channel) — a server-side 500, unlike every
    /// other variant, which is the client's fault.
    Engine(engine::EngineError),
}

impl ServeError {
    /// True for server-side failures (HTTP 500); false for request errors
    /// (HTTP 400).
    pub fn is_internal(&self) -> bool {
        matches!(self, ServeError::Engine(_))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            ServeError::MissingParam(name) => {
                write!(f, "parameter store is missing `{name}`")
            }
            ServeError::Netlist(e) => write!(f, "invalid circuit: {e}"),
            ServeError::WorkloadTooShort { pis, stimuli } => {
                write!(f, "workload covers {stimuli} PIs but the circuit has {pis}")
            }
            ServeError::Engine(e) => write!(f, "internal engine failure: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Netlist(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<engine::EngineError> for ServeError {
    fn from(e: engine::EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<ParamsError> for ServeError {
    fn from(e: ParamsError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<NetlistError> for ServeError {
    fn from(e: NetlistError) -> Self {
        ServeError::Netlist(e)
    }
}
