//! `deepseq-load` — a std-only load client for the `deepseq-serve` HTTP
//! endpoint.
//!
//! ```text
//! deepseq-load --addr 127.0.0.1:8184 [--requests 64] [--concurrency 16]
//!              [--distinct 8] [--no-keepalive] [--drain]
//! ```
//!
//! Fires `--requests` embed requests at the server from `--concurrency`
//! client threads, cycling through `--distinct` generated circuits (so the
//! run exercises both the cache-miss and cache-hit paths), then scrapes
//! `/metrics` and verifies the `deepseq_cache_hit_ratio` gauge parses as a
//! float. Exits nonzero if any request fails, any response is non-2xx, or
//! the metrics contract is violated — CI's `serve-e2e` job is built on
//! exactly that exit code. `--drain` finally POSTs `/admin/drain` so a
//! scripted server process shuts down cleanly.
//!
//! Each client thread holds **one persistent keep-alive connection** and
//! frames responses by `content-length`, reconnecting transparently if the
//! server closed an idle socket — so a C-thread run probes C accept cycles
//! and N request/response exchanges, like a real pooled client would.
//! `--no-keepalive` restores the old one-connection-per-request behaviour
//! for exercising the accept path itself.
//!
//! When the server runs with tracing enabled (`--trace-out` /
//! `DEEPSEQ_TRACE`), the run finishes by scraping `GET /debug/trace` and
//! printing the server-side per-stage latency summary (count, p50, p95 per
//! pipeline stage); without tracing that endpoint answers 404 and the
//! summary is silently skipped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use deepseq_netlist::{write_aiger, SeqAig};

const USAGE: &str = "deepseq-load — std-only load client for deepseq-serve

USAGE:
    deepseq-load --addr <HOST:PORT> [OPTIONS]

OPTIONS:
    --requests <N>     total embed requests to fire (default 64)
    --concurrency <C>  client threads firing them (default 16)
    --distinct <D>     distinct circuits to cycle through (default 8;
                       repeats exercise the server-side embedding cache)
    --no-keepalive     open a fresh connection per request instead of one
                       persistent connection per thread
    --retries <N>      retry transport failures and 429/500/503/504 up to N
                       times per request, sleeping exponential backoff with
                       decorrelated jitter in between (default 0)
    --hedge-after <MS> fire a second identical request on a fresh connection
                       if the first hasn't answered after MS, and take the
                       first completion (default: off)
    --drain            POST /admin/drain after the run
";

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    distinct: usize,
    keepalive: bool,
    retries: usize,
    hedge_after: Option<Duration>,
    drain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        requests: 64,
        concurrency: 16,
        distinct: 8,
        keepalive: true,
        retries: 0,
        hedge_after: None,
        drain: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?.clone(),
            "--requests" => out.requests = parse_num(value("--requests")?, "--requests")?.max(1),
            "--concurrency" => {
                out.concurrency = parse_num(value("--concurrency")?, "--concurrency")?.max(1)
            }
            "--distinct" => out.distinct = parse_num(value("--distinct")?, "--distinct")?.max(1),
            "--no-keepalive" => out.keepalive = false,
            "--retries" => out.retries = parse_num(value("--retries")?, "--retries")?,
            "--hedge-after" => {
                let ms = parse_num(value("--hedge-after")?, "--hedge-after")?;
                out.hedge_after = Some(Duration::from_millis(ms as u64));
            }
            "--drain" => out.drain = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(out)
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{name} needs an integer"))
}

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// A client connection that survives across requests. Responses are framed
/// by `content-length`, so the socket stays usable for the next exchange;
/// a server-side `connection: close` (or any read/write error on a reused
/// socket) drops the stream and the next exchange reconnects.
struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    keepalive: bool,
    /// Connections opened over this client's lifetime.
    connects: usize,
}

impl Client {
    fn new(addr: &str, keepalive: bool) -> Self {
        Client {
            addr: addr.to_string(),
            stream: None,
            keepalive,
            connects: 0,
        }
    }

    /// One HTTP/1.1 exchange, reusing the pooled connection when possible.
    /// A failed attempt on a *reused* socket is retried once on a fresh
    /// connection — the server is allowed to close an idle keep-alive
    /// socket at any time, and that race is not a request failure.
    fn exchange(&mut self, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
        let reused = self.stream.is_some();
        match self.try_exchange(method, path, body) {
            Err(_) if reused => {
                self.stream = None;
                self.try_exchange(method, path, body)
            }
            outcome => outcome,
        }
    }

    fn try_exchange(&mut self, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .map_err(|e| e.to_string())?;
            self.connects += 1;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("connected above");
        let connection = if self.keepalive {
            "keep-alive"
        } else {
            "close"
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        let send = reader
            .get_mut()
            .write_all(head.as_bytes())
            .and_then(|()| reader.get_mut().write_all(body));
        if let Err(e) = send {
            self.stream = None;
            return Err(format!("send {path}: {e}"));
        }
        match read_response(reader, path) {
            Ok((response, server_closes)) => {
                if server_closes || !self.keepalive {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `content-length`-framed response off the stream, leaving the
/// stream positioned at the next response. Returns the response and
/// whether the server announced `connection: close`.
fn read_response(
    reader: &mut BufReader<TcpStream>,
    path: &str,
) -> Result<(Response, bool), String> {
    let mut status = 0u16;
    let mut content_length: Option<usize> = None;
    let mut server_closes = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 {
            return Err(format!("read {path}: connection closed mid-response"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if status == 0 {
            status = trimmed
                .split(' ')
                .nth(1)
                .and_then(|code| code.parse().ok())
                .ok_or(format!("malformed status line for {path}: {trimmed:.120}"))?;
            continue;
        }
        if trimmed.is_empty() {
            break; // end of headers
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad content-length for {path}: {value}"))?,
                );
            } else if name.eq_ignore_ascii_case("connection") {
                server_closes = value.eq_ignore_ascii_case("close");
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut raw = vec![0u8; len];
            reader
                .read_exact(&mut raw)
                .map_err(|e| format!("read body {path}: {e}"))?;
            String::from_utf8_lossy(&raw).into_owned()
        }
        None => {
            // No content-length: the connection is the frame (close-delimited).
            let mut raw = Vec::new();
            reader
                .read_to_end(&mut raw)
                .map_err(|e| format!("read body {path}: {e}"))?;
            server_closes = true;
            String::from_utf8_lossy(&raw).into_owned()
        }
    };
    Ok((Response { status, body }, server_closes))
}

/// splitmix64: the jitter source for retry backoff. Self-contained so the
/// client stays std-only.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff with decorrelated jitter: each delay is drawn
/// uniformly from `[base, prev * 3]`, capped — successive retries spread
/// out *and* desynchronise across clients, avoiding retry stampedes.
struct Backoff {
    state: u64,
    prev_ms: u64,
}

const BACKOFF_BASE_MS: u64 = 25;
const BACKOFF_CAP_MS: u64 = 2_000;

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            state: seed,
            prev_ms: BACKOFF_BASE_MS,
        }
    }

    fn next_delay(&mut self) -> Duration {
        let upper = (self.prev_ms.saturating_mul(3)).clamp(BACKOFF_BASE_MS + 1, BACKOFF_CAP_MS);
        let span = upper - BACKOFF_BASE_MS;
        let ms = BACKOFF_BASE_MS + splitmix64(&mut self.state) % (span + 1);
        self.prev_ms = ms;
        Duration::from_millis(ms)
    }
}

/// Reliability counters of one load run.
#[derive(Default)]
struct RetryStats {
    /// Retry attempts fired (beyond each request's first attempt).
    retries: AtomicUsize,
    /// Hedge requests fired (primary exceeded --hedge-after).
    hedges: AtomicUsize,
    /// Requests whose accepted answer came from the hedge, not the primary.
    hedge_wins: AtomicUsize,
}

/// True for outcomes worth retrying: transport failures and the statuses a
/// fault-injected or saturated server answers (429 backpressure, 500 caught
/// panic, 503 degraded/draining, 504 deadline).
fn is_retryable(outcome: &Result<Response, String>) -> bool {
    match outcome {
        Err(_) => true,
        Ok(response) => matches!(response.status, 429 | 500 | 503 | 504),
    }
}

/// One request attempt: the pooled exchange, or — when hedging — the
/// primary plus at most one hedge on fresh connections, first completion
/// wins (a failed first completion still waits for the straggler).
fn send_once(
    client: &mut Client,
    addr: &str,
    path: &str,
    body: &[u8],
    hedge_after: Option<Duration>,
    stats: &RetryStats,
) -> Result<Response, String> {
    let Some(hedge_delay) = hedge_after else {
        return client.exchange("POST", path, body);
    };
    // Hedged attempts each get a one-shot connection: the answer may come
    // from either socket, so neither can be pooled for reuse.
    let (tx, rx) = mpsc::channel::<(u8, Result<Response, String>)>();
    let spawn_attempt = |tag: u8| {
        let addr = addr.to_string();
        let path = path.to_string();
        let body = body.to_vec();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut one_shot = Client::new(&addr, false);
            let _ = tx.send((tag, one_shot.exchange("POST", &path, &body)));
        });
    };
    spawn_attempt(0);
    let mut in_flight = 1usize;
    let (first_tag, first) = match rx.recv_timeout(hedge_delay) {
        Ok(completion) => completion,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            stats.hedges.fetch_add(1, Ordering::Relaxed);
            spawn_attempt(1);
            in_flight += 1;
            match rx.recv() {
                Ok(completion) => completion,
                Err(_) => return Err("hedged request: no attempt completed".to_string()),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            return Err("hedged request: attempt thread died".to_string())
        }
    };
    in_flight -= 1;
    let first_ok = matches!(&first, Ok(r) if (200..300).contains(&r.status));
    if first_ok || in_flight == 0 {
        if first_ok && first_tag == 1 {
            stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
        }
        return first;
    }
    // The first completion failed and the other attempt is still running:
    // its answer may yet save the request.
    match rx.recv() {
        Ok((tag, second)) if matches!(&second, Ok(r) if (200..300).contains(&r.status)) => {
            if tag == 1 {
                stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
            second
        }
        _ => first,
    }
}

/// Generates the `index`-th distinct workload circuit: a `3 + index`-bit
/// ripple counter with an enable PI — sequential depth, a few ANDs, and a
/// different structural hash per index.
fn counter_circuit(index: usize) -> String {
    let bits = 3 + index;
    let mut aig = SeqAig::new(format!("counter{bits}"));
    let enable = aig.add_pi("enable");
    let ffs: Vec<_> = (0..bits)
        .map(|b| aig.add_ff(format!("q{b}"), b % 2 == 0))
        .collect();
    let mut carry = enable;
    for (b, &ff) in ffs.iter().enumerate() {
        // next = q XOR carry; carry = q AND carry.
        let nq = aig.add_not(ff);
        let ncarry = aig.add_not(carry);
        let l = aig.add_and(ff, ncarry);
        let r = aig.add_and(nq, carry);
        let nl = aig.add_not(l);
        let nr = aig.add_not(r);
        let nxor = aig.add_and(nl, nr);
        let next = aig.add_not(nxor);
        let new_carry = aig.add_and(ff, carry);
        aig.connect_ff(ff, next).expect("ff wiring");
        aig.set_output(ff, format!("count{b}"));
        carry = new_carry;
    }
    write_aiger(&aig)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let circuits: Arc<Vec<String>> = Arc::new((0..args.distinct).map(counter_circuit).collect());

    // Fire the embed load: a shared ticket counter fans args.requests
    // requests out over args.concurrency threads, each holding one pooled
    // connection.
    let next = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let connects = Arc::new(AtomicUsize::new(0));
    let stats = Arc::new(RetryStats::default());
    let started = Instant::now();
    let threads: Vec<_> = (0..args.concurrency)
        .map(|worker| {
            let addr = args.addr.clone();
            let circuits = Arc::clone(&circuits);
            let next = Arc::clone(&next);
            let failures = Arc::clone(&failures);
            let connects = Arc::clone(&connects);
            let stats = Arc::clone(&stats);
            let total = args.requests;
            let keepalive = args.keepalive;
            let retries = args.retries;
            let hedge_after = args.hedge_after;
            std::thread::spawn(move || {
                let mut client = Client::new(&addr, keepalive);
                let mut backoff = Backoff::new(0x6c0a_dc11 ^ (worker as u64) << 32);
                loop {
                    let ticket = next.fetch_add(1, Ordering::Relaxed);
                    if ticket >= total {
                        connects.fetch_add(client.connects, Ordering::Relaxed);
                        return;
                    }
                    let circuit = &circuits[ticket % circuits.len()];
                    let path = format!("/v1/embed?id={ticket}&summary=1");
                    let mut outcome = send_once(
                        &mut client,
                        &addr,
                        &path,
                        circuit.as_bytes(),
                        hedge_after,
                        &stats,
                    );
                    for _attempt in 0..retries {
                        if !is_retryable(&outcome) {
                            break;
                        }
                        stats.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff.next_delay());
                        outcome = send_once(
                            &mut client,
                            &addr,
                            &path,
                            circuit.as_bytes(),
                            hedge_after,
                            &stats,
                        );
                    }
                    match outcome {
                        Ok(response) if (200..300).contains(&response.status) => {}
                        Ok(response) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "request {ticket}: status {} body {:.200}",
                                response.status, response.body
                            );
                        }
                        Err(e) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!("request {ticket}: {e}");
                        }
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().map_err(|_| "client thread panicked")?;
    }
    let elapsed = started.elapsed();
    let failed = failures.load(Ordering::Relaxed);
    println!(
        "{} requests in {:.3}s ({:.1} req/s), {} failed, {} connections, \
         {} retries, {} hedges ({} won by hedge)",
        args.requests,
        elapsed.as_secs_f64(),
        args.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        failed,
        connects.load(Ordering::Relaxed),
        stats.retries.load(Ordering::Relaxed),
        stats.hedges.load(Ordering::Relaxed),
        stats.hedge_wins.load(Ordering::Relaxed)
    );
    if failed > 0 {
        return Err(format!("{failed} of {} requests failed", args.requests));
    }

    let mut client = Client::new(&args.addr, args.keepalive);

    // Scrape /metrics and hold the server to its contract: the cache
    // hit-rate gauge must be present and parse as a float.
    let metrics = client.exchange("GET", "/metrics", b"")?;
    if metrics.status != 200 {
        return Err(format!("/metrics answered {}", metrics.status));
    }
    let hit_ratio: f64 = metrics
        .body
        .lines()
        .find_map(|line| line.strip_prefix("deepseq_cache_hit_ratio "))
        .ok_or("deepseq_cache_hit_ratio missing from /metrics")?
        .trim()
        .parse()
        .map_err(|e| format!("deepseq_cache_hit_ratio does not parse as f64: {e}"))?;
    println!("cache hit ratio: {hit_ratio:.3}");

    // If the server traces, print its per-stage latency summary; a 404
    // just means tracing is off over there.
    let trace = client.exchange("GET", "/debug/trace", b"")?;
    if trace.status == 200 {
        print_stage_summary(&trace.body);
    }

    if args.drain {
        let drain = client.exchange("POST", "/admin/drain", b"")?;
        if drain.status != 200 {
            return Err(format!("/admin/drain answered {}", drain.status));
        }
        println!("drain requested");
    }
    Ok(())
}

/// Prints the non-empty stages of a `/debug/trace` stage summary
/// (`{"dropped_spans":N,"stages":[{"stage":...,"count":...,...}]}`) as an
/// aligned table. The parse is deliberately shallow — pull each
/// `{...}` stage object apart by its known keys.
fn print_stage_summary(body: &str) {
    println!("server per-stage latency (from /debug/trace):");
    println!(
        "  {:<12} {:>8} {:>12} {:>12}",
        "stage", "count", "p50", "p95"
    );
    for object in body.split("{\"stage\":\"").skip(1) {
        let Some(stage) = object.split('"').next() else {
            continue;
        };
        let field = |key: &str| -> Option<f64> {
            let tail = object.split(&format!("\"{key}\":")).nth(1)?;
            tail.split([',', '}']).next()?.parse().ok()
        };
        let count = field("count").unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        let ms = |key| field(key).map_or_else(|| "?".into(), |s| format!("{:.3}ms", s * 1e3));
        println!(
            "  {:<12} {:>8} {:>12} {:>12}",
            stage,
            count as u64,
            ms("p50_s"),
            ms("p95_s")
        );
    }
    if let Some(dropped) = body
        .split("\"dropped_spans\":")
        .nth(1)
        .and_then(|t| t.split(',').next())
        .and_then(|t| t.parse::<u64>().ok())
    {
        if dropped > 0 {
            println!("  ({dropped} spans dropped server-side; rings overflowed)");
        }
    }
}
