//! `deepseq-load` — a std-only load client for the `deepseq-serve` HTTP
//! endpoint.
//!
//! ```text
//! deepseq-load --addr 127.0.0.1:8184 [--requests 64] [--concurrency 16]
//!              [--distinct 8] [--drain]
//! ```
//!
//! Fires `--requests` embed requests at the server from `--concurrency`
//! client threads, cycling through `--distinct` generated circuits (so the
//! run exercises both the cache-miss and cache-hit paths), then scrapes
//! `/metrics` and verifies the `deepseq_cache_hit_ratio` gauge parses as a
//! float. Exits nonzero if any request fails, any response is non-2xx, or
//! the metrics contract is violated — CI's `serve-e2e` job is built on
//! exactly that exit code. `--drain` finally POSTs `/admin/drain` so a
//! scripted server process shuts down cleanly.
//!
//! Every request is plain HTTP/1.1 over one fresh `TcpStream` with
//! `Connection: close` — no keep-alive pooling, by design: N requests
//! probe N separate accept/handle cycles.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepseq_netlist::{write_aiger, SeqAig};

const USAGE: &str = "deepseq-load — std-only load client for deepseq-serve

USAGE:
    deepseq-load --addr <HOST:PORT> [OPTIONS]

OPTIONS:
    --requests <N>     total embed requests to fire (default 64)
    --concurrency <C>  client threads firing them (default 16)
    --distinct <D>     distinct circuits to cycle through (default 8;
                       repeats exercise the server-side embedding cache)
    --drain            POST /admin/drain after the run
";

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    distinct: usize,
    drain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        requests: 64,
        concurrency: 16,
        distinct: 8,
        drain: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?.clone(),
            "--requests" => out.requests = parse_num(value("--requests")?, "--requests")?.max(1),
            "--concurrency" => {
                out.concurrency = parse_num(value("--concurrency")?, "--concurrency")?.max(1)
            }
            "--distinct" => out.distinct = parse_num(value("--distinct")?, "--distinct")?.max(1),
            "--drain" => out.drain = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(out)
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{name} needs an integer"))
}

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// One HTTP/1.1 exchange over a fresh connection (`Connection: close`,
/// body read to EOF).
fn exchange(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {path}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let mut status_line = text.lines().next().unwrap_or_default().split(' ');
    let status: u16 = status_line
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or(format!("malformed response to {path}: {text:.120}"))?;
    let body = match text.find("\r\n\r\n") {
        Some(at) => text[at + 4..].to_string(),
        None => String::new(),
    };
    Ok(Response { status, body })
}

/// Generates the `index`-th distinct workload circuit: a `3 + index`-bit
/// ripple counter with an enable PI — sequential depth, a few ANDs, and a
/// different structural hash per index.
fn counter_circuit(index: usize) -> String {
    let bits = 3 + index;
    let mut aig = SeqAig::new(format!("counter{bits}"));
    let enable = aig.add_pi("enable");
    let ffs: Vec<_> = (0..bits)
        .map(|b| aig.add_ff(format!("q{b}"), b % 2 == 0))
        .collect();
    let mut carry = enable;
    for (b, &ff) in ffs.iter().enumerate() {
        // next = q XOR carry; carry = q AND carry.
        let nq = aig.add_not(ff);
        let ncarry = aig.add_not(carry);
        let l = aig.add_and(ff, ncarry);
        let r = aig.add_and(nq, carry);
        let nl = aig.add_not(l);
        let nr = aig.add_not(r);
        let nxor = aig.add_and(nl, nr);
        let next = aig.add_not(nxor);
        let new_carry = aig.add_and(ff, carry);
        aig.connect_ff(ff, next).expect("ff wiring");
        aig.set_output(ff, format!("count{b}"));
        carry = new_carry;
    }
    write_aiger(&aig)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let circuits: Arc<Vec<String>> = Arc::new((0..args.distinct).map(counter_circuit).collect());

    // Fire the embed load: a shared ticket counter fans args.requests
    // requests out over args.concurrency threads.
    let next = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let threads: Vec<_> = (0..args.concurrency)
        .map(|_| {
            let addr = args.addr.clone();
            let circuits = Arc::clone(&circuits);
            let next = Arc::clone(&next);
            let failures = Arc::clone(&failures);
            let total = args.requests;
            std::thread::spawn(move || loop {
                let ticket = next.fetch_add(1, Ordering::Relaxed);
                if ticket >= total {
                    return;
                }
                let circuit = &circuits[ticket % circuits.len()];
                let path = format!("/v1/embed?id={ticket}&summary=1");
                match exchange(&addr, "POST", &path, circuit.as_bytes()) {
                    Ok(response) if (200..300).contains(&response.status) => {}
                    Ok(response) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "request {ticket}: status {} body {:.200}",
                            response.status, response.body
                        );
                    }
                    Err(e) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!("request {ticket}: {e}");
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().map_err(|_| "client thread panicked")?;
    }
    let elapsed = started.elapsed();
    let failed = failures.load(Ordering::Relaxed);
    println!(
        "{} requests in {:.3}s ({:.1} req/s), {} failed",
        args.requests,
        elapsed.as_secs_f64(),
        args.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        failed
    );
    if failed > 0 {
        return Err(format!("{failed} of {} requests failed", args.requests));
    }

    // Scrape /metrics and hold the server to its contract: the cache
    // hit-rate gauge must be present and parse as a float.
    let metrics = exchange(&args.addr, "GET", "/metrics", b"")?;
    if metrics.status != 200 {
        return Err(format!("/metrics answered {}", metrics.status));
    }
    let hit_ratio: f64 = metrics
        .body
        .lines()
        .find_map(|line| line.strip_prefix("deepseq_cache_hit_ratio "))
        .ok_or("deepseq_cache_hit_ratio missing from /metrics")?
        .trim()
        .parse()
        .map_err(|e| format!("deepseq_cache_hit_ratio does not parse as f64: {e}"))?;
    println!("cache hit ratio: {hit_ratio:.3}");

    if args.drain {
        let drain = exchange(&args.addr, "POST", "/admin/drain", b"")?;
        if drain.status != 200 {
            return Err(format!("/admin/drain answered {}", drain.status));
        }
        println!("drain requested");
    }
    Ok(())
}
