//! `deepseq-serve` — serve DeepSeq predictions from the command line.
//!
//! ```text
//! deepseq-serve predict [options] <circuit files...>
//! deepseq-serve serve [options]
//! deepseq-serve convert <input> <output>
//! deepseq-serve help
//! ```
//!
//! `predict` loads circuits (`.aag` ASCII AIGER or `.bench` ISCAS'89,
//! lowered to AIGs), runs them through the batched inference engine and
//! prints one JSON object per circuit to stdout. `serve` puts the same
//! engine behind an HTTP/1.1 endpoint (`POST /v1/embed`, `/healthz`,
//! `/metrics`; see `docs/SERVING.md`). `convert` converts a model
//! checkpoint between the text and binary formats (direction autodetected
//! from the input's magic).

use std::fs;
use std::process::ExitCode;
use std::time::Duration;

use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_netlist::{lower_to_aig, parse_aiger, SeqAig};
use deepseq_serve::json::response_to_json;
use deepseq_serve::{
    Engine, EngineOptions, HttpServer, InferenceModel, ServeRequest, ServerOptions,
};
use deepseq_sim::Workload;

const USAGE: &str = "deepseq-serve — batched tape-free DeepSeq inference

USAGE:
    deepseq-serve predict [OPTIONS] <FILES...>
    deepseq-serve serve [OPTIONS]
    deepseq-serve convert <INPUT> <OUTPUT>
    deepseq-serve help

predict options:
    --checkpoint <FILE>  model checkpoint, text or binary (autodetected);
                         without it a freshly seeded model is used
    --hidden <D>         hidden dim for the fresh model (default 32)
    --iters <T>          propagation iterations for the fresh model (default 4)
    --p1 <P>             uniform workload logic-1 probability (default 0.5)
    --seed <S>           initial-state seed (default 0)
    --workers <N>        max requests processed concurrently (default: the
                         pool size; the pool itself is sized by the
                         DEEPSEQ_THREADS environment variable)
    --cache <N>          embedding-cache capacity (default 256)
    --cones <N>          cone-memo capacity in fanin cones (default 1024;
                         0 disables cone-granularity reuse)
    --repeat <N>         serve the file batch N times (default 1; >1 shows
                         the cache-hit path)
    --summary            emit mean predictions instead of full matrices
    --stats              print engine/cache statistics to stderr
    --trace-out <FILE>   enable span tracing and write a chrome://tracing
                         JSON profile to FILE on exit (see
                         docs/OBSERVABILITY.md); DEEPSEQ_TRACE=<FILE> does
                         the same without the flag

serve options:
    --addr <HOST:PORT>   bind address (default 127.0.0.1:0; the chosen
                         address is printed to stdout as `listening <addr>`)
    --checkpoint <FILE>  model checkpoint (as for predict); without it a
                         freshly seeded model is used
    --hidden <D>         hidden dim for the fresh model (default 32)
    --iters <T>          propagation iterations for the fresh model (default 4)
    --workers <N>        max requests processed concurrently (default: pool size)
    --cache <N>          embedding-cache capacity per shard (default 256)
    --cones <N>          cone-memo capacity shared by all shards (default
                         1024; 0 disables cone-granularity reuse)
    --shards <N>         engine shards behind the structural-hash router
                         (default 1); `/admin/reload?shard=K` and
                         `/admin/degrade?shard=K` target one shard
    --max-inflight <N>   admission: concurrent embed requests (default: pool size)
    --max-queue <N>      admission: waiting embed requests before 429 (default 64)
    --deadline-ms <MS>   per-request deadline, 504 on expiry (default 30000)
    --degrade-after <N>  enter degraded (cache-only) mode after N consecutive
                         429 rejections with no admission in between
                         (default 0 = never trip automatically)
    --trace-out <FILE>   enable span tracing: `GET /debug/trace` serves live
                         span trees / stage summaries, and a chrome://tracing
                         JSON profile is written to FILE after drain
    The server runs until `POST /admin/drain` arrives, then drains
    gracefully: in-flight requests finish, no new connections are accepted.
    `POST /admin/reload` re-reads --checkpoint and swaps it in (failed
    reloads degrade the server to cache-only; see docs/RELIABILITY.md);
    `POST /admin/degrade?mode=on|off` toggles degraded mode by hand.

convert:
    text checkpoints (`deepseq-model v1` header) become binary (`DSQM`),
    binary checkpoints become text; the weights are preserved exactly.

Circuits: *.aag (ASCII AIGER) are read directly; *.bench netlists are
lowered to sequential AIGs first. Each PI receives the uniform --p1
stimulus.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    let result = match command {
        "predict" => predict(rest),
        "serve" => serve(rest),
        "convert" => convert(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

struct PredictArgs {
    checkpoint: Option<String>,
    hidden: usize,
    iters: usize,
    p1: f64,
    seed: u64,
    workers: Option<usize>,
    cache: usize,
    cones: usize,
    repeat: usize,
    summary: bool,
    stats: bool,
    trace_out: Option<String>,
    files: Vec<String>,
}

fn parse_predict_args(args: &[String]) -> Result<PredictArgs, String> {
    let mut out = PredictArgs {
        checkpoint: None,
        hidden: 32,
        iters: 4,
        p1: 0.5,
        seed: 0,
        workers: None,
        cache: 256,
        cones: EngineOptions::default().cone_capacity,
        repeat: 1,
        summary: false,
        stats: false,
        trace_out: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--checkpoint" => out.checkpoint = Some(value("--checkpoint")?.clone()),
            "--hidden" => out.hidden = parse_num(value("--hidden")?, "--hidden")?,
            "--iters" => out.iters = parse_num(value("--iters")?, "--iters")?,
            "--p1" => {
                out.p1 = value("--p1")?
                    .parse()
                    .map_err(|_| "--p1 needs a float".to_string())?
            }
            "--seed" => out.seed = parse_num(value("--seed")?, "--seed")? as u64,
            "--workers" => out.workers = Some(parse_num(value("--workers")?, "--workers")?),
            "--cache" => out.cache = parse_num(value("--cache")?, "--cache")?,
            "--cones" => out.cones = parse_num(value("--cones")?, "--cones")?,
            "--repeat" => out.repeat = parse_num(value("--repeat")?, "--repeat")?.max(1),
            "--summary" => out.summary = true,
            "--stats" => out.stats = true,
            "--trace-out" => out.trace_out = Some(value("--trace-out")?.clone()),
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            file => out.files.push(file.to_string()),
        }
    }
    if out.files.is_empty() {
        return Err(format!("no circuit files given\n\n{USAGE}"));
    }
    Ok(out)
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{name} needs an integer"))
}

/// Resolves where the chrome://tracing profile should go: an explicit
/// `--trace-out FILE` wins (and force-enables tracing); otherwise a
/// `DEEPSEQ_TRACE=<path>` environment value supplies the path. Returns
/// `None` when no profile should be written (tracing may still be on via
/// `DEEPSEQ_TRACE=1`, feeding `/debug/trace` and the stage metrics only).
fn resolve_trace_out(cli: &Option<String>) -> Option<String> {
    use deepseq_nn::trace;
    if let Some(path) = cli {
        trace::set_enabled(true);
        return Some(path.clone());
    }
    if trace::enabled() {
        return trace::env_output_path();
    }
    None
}

/// Writes the accumulated spans as a chrome://tracing JSON profile.
fn write_trace_profile(path: &str) -> Result<(), String> {
    let json = deepseq_nn::trace::chrome_trace_json();
    fs::write(path, &json).map_err(|e| format!("writing trace profile {path}: {e}"))?;
    eprintln!("trace profile written to {path} ({} bytes)", json.len());
    Ok(())
}

fn predict(args: &[String]) -> Result<(), String> {
    let args = parse_predict_args(args)?;
    let trace_out = resolve_trace_out(&args.trace_out);

    let model = match &args.checkpoint {
        Some(path) => load_checkpoint(path)?,
        None => {
            let config = DeepSeqConfig {
                hidden_dim: args.hidden,
                iterations: args.iters,
                ..DeepSeqConfig::default()
            };
            InferenceModel::from_model(&DeepSeq::new(config))
                .map_err(|e| format!("freezing fresh model: {e}"))?
        }
    };

    let circuits: Vec<SeqAig> = args
        .files
        .iter()
        .map(|path| load_circuit(path))
        .collect::<Result<_, _>>()?;

    let options = EngineOptions {
        workers: args.workers.unwrap_or(EngineOptions::default().workers),
        cache_capacity: args.cache,
        cone_capacity: args.cones,
    };
    let engine = Engine::new(model, options);

    let mut next_id = 0u64;
    for _round in 0..args.repeat {
        let requests: Vec<ServeRequest> = circuits
            .iter()
            .map(|aig| {
                let id = next_id;
                next_id += 1;
                ServeRequest {
                    id,
                    aig: aig.clone(),
                    workload: Workload::uniform(aig.num_pis(), args.p1),
                    init_seed: args.seed,
                }
            })
            .collect();
        for response in engine.serve_batch(requests) {
            println!("{}", response_to_json(&response, args.summary));
        }
    }

    if args.stats {
        let s = engine.cache_stats();
        eprintln!(
            "served {} requests | cache: {} hits, {} misses, {} evictions, {}/{} entries ({:.0}% hit)",
            engine.requests_served(),
            s.hits,
            s.misses,
            s.evictions,
            s.entries,
            s.capacity,
            100.0 * s.hit_ratio()
        );
    }
    if let Some(path) = &trace_out {
        write_trace_profile(path)?;
    }
    Ok(())
}

struct ServeArgs {
    addr: String,
    checkpoint: Option<String>,
    hidden: usize,
    iters: usize,
    workers: Option<usize>,
    cache: usize,
    cones: usize,
    shards: usize,
    max_inflight: usize,
    max_queue: usize,
    deadline_ms: u64,
    degrade_after: u64,
    trace_out: Option<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let defaults = ServerOptions::default();
    let mut out = ServeArgs {
        addr: defaults.addr,
        checkpoint: None,
        hidden: 32,
        iters: 4,
        workers: None,
        cache: 256,
        cones: EngineOptions::default().cone_capacity,
        shards: defaults.shards,
        max_inflight: defaults.max_inflight,
        max_queue: defaults.max_queue,
        deadline_ms: defaults.deadline.as_millis() as u64,
        degrade_after: defaults.saturation_trip,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?.clone(),
            "--checkpoint" => out.checkpoint = Some(value("--checkpoint")?.clone()),
            "--hidden" => out.hidden = parse_num(value("--hidden")?, "--hidden")?,
            "--iters" => out.iters = parse_num(value("--iters")?, "--iters")?,
            "--workers" => out.workers = Some(parse_num(value("--workers")?, "--workers")?),
            "--cache" => out.cache = parse_num(value("--cache")?, "--cache")?,
            "--cones" => out.cones = parse_num(value("--cones")?, "--cones")?,
            "--shards" => out.shards = parse_num(value("--shards")?, "--shards")?.max(1),
            "--max-inflight" => {
                out.max_inflight = parse_num(value("--max-inflight")?, "--max-inflight")?
            }
            "--max-queue" => out.max_queue = parse_num(value("--max-queue")?, "--max-queue")?,
            "--deadline-ms" => {
                out.deadline_ms = parse_num(value("--deadline-ms")?, "--deadline-ms")? as u64
            }
            "--degrade-after" => {
                out.degrade_after = parse_num(value("--degrade-after")?, "--degrade-after")? as u64
            }
            "--trace-out" => out.trace_out = Some(value("--trace-out")?.clone()),
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    Ok(out)
}

fn serve(args: &[String]) -> Result<(), String> {
    let args = parse_serve_args(args)?;
    let trace_out = resolve_trace_out(&args.trace_out);
    let model = match &args.checkpoint {
        Some(path) => load_checkpoint(path)?,
        None => {
            let config = DeepSeqConfig {
                hidden_dim: args.hidden,
                iterations: args.iters,
                ..DeepSeqConfig::default()
            };
            InferenceModel::from_model(&DeepSeq::new(config))
                .map_err(|e| format!("freezing fresh model: {e}"))?
        }
    };
    let engine = Engine::new(
        model,
        EngineOptions {
            workers: args.workers.unwrap_or(EngineOptions::default().workers),
            cache_capacity: args.cache,
            cone_capacity: args.cones,
        },
    );
    let server = HttpServer::bind(
        engine,
        ServerOptions {
            addr: args.addr,
            max_inflight: args.max_inflight,
            max_queue: args.max_queue,
            deadline: Duration::from_millis(args.deadline_ms),
            checkpoint_path: args.checkpoint.clone(),
            saturation_trip: args.degrade_after,
            shards: args.shards,
            ..ServerOptions::default()
        },
    )
    .map_err(|e| format!("binding server: {e}"))?;
    // Stdout contract: exactly this line, so scripts can scrape the port.
    println!("listening {}", server.local_addr());
    server.wait_for_drain_request();
    eprintln!("drain requested; finishing in-flight requests");
    let report = server.shutdown();
    eprintln!(
        "drained: {} requests served, {} connections abandoned",
        report.requests_served, report.connections_abandoned
    );
    if let Some(path) = &trace_out {
        write_trace_profile(path)?;
    }
    Ok(())
}

fn load_checkpoint(path: &str) -> Result<InferenceModel, String> {
    // Zero-copy: the checkpoint is mapped, not read into a heap buffer —
    // decoding streams straight out of the page cache.
    let map = deepseq_nn::CheckpointMap::open(path.as_ref())
        .map_err(|e| format!("reading {path}: {e}"))?;
    let bytes = map.bytes();
    if bytes.starts_with(&deepseq_core::model::MODEL_MAGIC) {
        InferenceModel::from_binary_checkpoint(bytes)
            .map_err(|e| format!("loading binary checkpoint {path}: {e}"))
    } else {
        let text =
            std::str::from_utf8(bytes).map_err(|_| format!("{path} is neither binary nor text"))?;
        InferenceModel::from_text_checkpoint(text)
            .map_err(|e| format!("loading text checkpoint {path}: {e}"))
    }
}

fn load_circuit(path: &str) -> Result<SeqAig, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".aag")
        .trim_end_matches(".bench")
        .to_string();
    if path.ends_with(".aag") {
        let mut aig = parse_aiger(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        // The parser has no design name to work with; use the file stem.
        if aig.name().is_empty() || aig.name() == "aiger" {
            aig = rename(aig, &stem);
        }
        Ok(aig)
    } else if path.ends_with(".bench") {
        let netlist = deepseq_netlist::bench_io::parse_bench_named(&text, &stem)
            .map_err(|e| format!("parsing {path}: {e}"))?;
        let lowered = lower_to_aig(&netlist).map_err(|e| format!("lowering {path}: {e}"))?;
        Ok(lowered.aig)
    } else {
        Err(format!(
            "{path}: unsupported extension (expected .aag or .bench)"
        ))
    }
}

/// Rebuilds an AIG under a new design name (SeqAig names are immutable).
fn rename(aig: SeqAig, name: &str) -> SeqAig {
    let mut out = SeqAig::new(name);
    for (id, node) in aig.iter() {
        use deepseq_netlist::AigNode;
        match *node {
            AigNode::Pi => {
                out.add_pi(
                    aig.node_name(id)
                        .unwrap_or(&format!("pi{}", id.0))
                        .to_string(),
                );
            }
            AigNode::And(a, b) => {
                out.add_and(a, b);
            }
            AigNode::Not(a) => {
                out.add_not(a);
            }
            AigNode::Ff { init, .. } => {
                out.add_ff(
                    aig.node_name(id)
                        .unwrap_or(&format!("ff{}", id.0))
                        .to_string(),
                    init,
                );
            }
        }
    }
    for (id, node) in aig.iter() {
        if let deepseq_netlist::AigNode::Ff { d: Some(d), .. } = *node {
            let _ = out.connect_ff(id, d);
        }
    }
    for (node, oname) in aig.outputs() {
        out.set_output(*node, oname.clone());
    }
    out
}

fn convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err(format!("convert needs <INPUT> <OUTPUT>\n\n{USAGE}"));
    };
    let bytes = fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    // write_atomic (temp file + fsync + rename) so a crash mid-convert
    // never leaves a truncated checkpoint at the output path.
    if bytes.starts_with(&deepseq_core::model::MODEL_MAGIC) {
        let model = DeepSeq::from_binary_checkpoint(&bytes)
            .map_err(|e| format!("loading binary checkpoint {input}: {e}"))?;
        deepseq_nn::write_atomic(output.as_ref(), model.save_to_string().as_bytes())
            .map_err(|e| format!("writing {output}: {e}"))?;
        eprintln!("converted binary → text: {input} → {output}");
    } else {
        let text =
            String::from_utf8(bytes).map_err(|_| format!("{input} is neither binary nor text"))?;
        let model = DeepSeq::from_checkpoint(&text)
            .map_err(|e| format!("loading text checkpoint {input}: {e}"))?;
        deepseq_nn::write_atomic(output.as_ref(), &model.save_binary())
            .map_err(|e| format!("writing {output}: {e}"))?;
        eprintln!("converted text → binary: {input} → {output}");
    }
    Ok(())
}
