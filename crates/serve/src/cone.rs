//! Cone-granularity partitioning for the [`ConeMemo`](crate::ConeMemo).
//!
//! The reusable unit below whole-circuit granularity is the **weakly
//! connected component** of the circuit graph (combinational fanins plus FF
//! D-edges): propagation moves state only along those edges, so a
//! component's final state rows are a pure function of
//!
//! 1. the frozen weights + config (pinned by the model generation),
//! 2. the component's structure *with its relative node order* (levels,
//!    gather order, accumulation order — pinned by
//!    [`component_fingerprint`]),
//! 3. the component's actual initial-state rows (workload values and the
//!    node-index-seeded random rows — pinned by [`component_h0_hash`]).
//!
//! Nothing else in the circuit can influence them: within a level, node
//! updates are row-independent and chunk-invariant (property-tested), a
//! node's level is intrinsic to its component, the reverse schedule only
//! skips empty levels (which preserves per-component level order), and FF
//! copy-back stays inside a component. That is why [`extract`] can merge
//! *all* missed components into one sub-circuit and propagate them
//! together: each component's rows come out bitwise-identical to a
//! whole-circuit run, and the memo stores them per component.
//!
//! Extraction keeps members in **ascending original-id order**, which
//! preserves every order-sensitive property the fingerprint hashes: fanin
//! gather order, level bucket order, FF pair order and fanout-list
//! relative order.

use deepseq_netlist::hash::{combine, mix};
use deepseq_netlist::{AigNode, NodeId, SeqAig};
use deepseq_nn::Matrix;

/// One weakly connected component: its member node ids, ascending.
#[derive(Debug, Clone)]
pub struct Cone {
    /// Member node ids of the original circuit, ascending.
    pub members: Vec<u32>,
}

/// Partitions a circuit into its weakly connected components (ascending
/// first-member order, members ascending within each).
pub fn partition(aig: &SeqAig) -> Vec<Cone> {
    let (component, count) = aig.weak_components();
    let mut cones = vec![
        Cone {
            members: Vec::new()
        };
        count
    ];
    for (i, &c) in component.iter().enumerate() {
        cones[c as usize].members.push(i as u32);
    }
    cones
}

/// Order-sensitive structural fingerprint of one component.
///
/// Hashes the member sequence in ascending-id order, each node as its kind
/// tag plus the *local ordinals* of its fanins — so the fingerprint is
/// invariant under renumbering the whole circuit (as long as relative order
/// within the component is preserved, which is exactly the condition for
/// bitwise-identical propagation) and sensitive to everything that affects
/// propagation: kinds, fanin order, FF init values and connectivity.
///
/// Names and outputs are deliberately excluded: neither reaches the
/// arithmetic (PI values enter through the initial-state rows, hashed
/// separately by [`component_h0_hash`]).
pub fn component_fingerprint(aig: &SeqAig, members: &[u32]) -> u64 {
    let ordinal = |id: NodeId| members.binary_search(&id.0).expect("fanin in component") as u64;
    let mut acc = mix(members.len() as u64);
    for &m in members {
        match *aig.node(NodeId(m)) {
            AigNode::Pi => acc = combine(acc, 1),
            AigNode::And(a, b) => {
                acc = combine(acc, 2);
                acc = combine(acc, ordinal(a));
                acc = combine(acc, ordinal(b));
            }
            AigNode::Not(a) => {
                acc = combine(acc, 3);
                acc = combine(acc, ordinal(a));
            }
            AigNode::Ff { d, init } => {
                acc = combine(acc, 4);
                acc = combine(acc, init as u64);
                acc = combine(acc, d.map_or(u64::MAX, ordinal));
            }
        }
    }
    acc
}

/// Content hash of a component's initial-state rows (bit-exact over the
/// `f32` payload, row length mixed in so hidden dimensions never collide).
pub fn component_h0_hash(h0: &Matrix, members: &[u32]) -> u64 {
    let mut acc = mix(h0.cols() as u64);
    for &m in members {
        for &v in h0.row(m as usize) {
            acc = combine(acc, v.to_bits() as u64);
        }
    }
    acc
}

/// Builds one merged sub-circuit over `members` (ascending original ids,
/// possibly spanning several components), remapping fanins to local ids.
///
/// Ascending-id order makes every combinational fanin appear before its
/// user (the original builder API guarantees that), so a single pass adds
/// all nodes; FF D-inputs may point forward and are connected after.
/// The sub-circuit carries no outputs — the caller only propagates it.
pub fn extract(aig: &SeqAig, members: &[u32]) -> SeqAig {
    let mut sub = SeqAig::new(aig.name());
    let mut local = vec![u32::MAX; aig.len()];
    let l = |local: &[u32], id: NodeId| {
        debug_assert_ne!(local[id.index()], u32::MAX, "fanin outside extraction");
        NodeId(local[id.index()])
    };
    for &m in members {
        let id = NodeId(m);
        let name = aig.node_name(id).unwrap_or("");
        let new = match *aig.node(id) {
            AigNode::Pi => sub.add_pi(name),
            AigNode::And(a, b) => sub.add_and(l(&local, a), l(&local, b)),
            AigNode::Not(a) => sub.add_not(l(&local, a)),
            AigNode::Ff { init, .. } => sub.add_ff(name, init),
        };
        local[id.index()] = new.0;
    }
    for &m in members {
        if let AigNode::Ff { d: Some(d), .. } = *aig.node(NodeId(m)) {
            sub.connect_ff(l(&local, NodeId(m)), l(&local, d))
                .expect("remapped FF connection is valid");
        }
    }
    sub
}

/// Gathers the rows of `members` out of a full `n×d` matrix into a dense
/// `k×d` matrix (row `i` = member `i`).
pub fn gather_rows(full: &Matrix, members: &[u32]) -> Matrix {
    let d = full.cols();
    let mut out = Matrix::zeros(members.len(), d);
    for (i, &m) in members.iter().enumerate() {
        out.row_mut(i).copy_from_slice(full.row(m as usize));
    }
    out
}

/// Scatters a dense `k×d` matrix back onto the rows of `members` in a full
/// `n×d` matrix.
pub fn scatter_rows(full: &mut Matrix, members: &[u32], rows: &Matrix) {
    debug_assert_eq!(rows.shape(), (members.len(), full.cols()));
    for (i, &m) in members.iter().enumerate() {
        full.row_mut(m as usize).copy_from_slice(rows.row(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disconnected toggles plus a combinational cone:
    /// component 0 = {q0, n0}, 1 = {q1, n1}, 2 = {a, b, g, inv}.
    fn three_component_circuit() -> SeqAig {
        let mut aig = SeqAig::new("three");
        let q0 = aig.add_ff("q0", false);
        let n0 = aig.add_not(q0);
        aig.connect_ff(q0, n0).unwrap();
        let q1 = aig.add_ff("q1", true);
        let n1 = aig.add_not(q1);
        aig.connect_ff(q1, n1).unwrap();
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let inv = aig.add_not(g);
        aig.set_output(inv, "y");
        aig
    }

    #[test]
    fn partition_groups_weakly_connected_nodes() {
        let aig = three_component_circuit();
        let cones = partition(&aig);
        assert_eq!(cones.len(), 3);
        assert_eq!(cones[0].members, vec![0, 1]);
        assert_eq!(cones[1].members, vec![2, 3]);
        assert_eq!(cones[2].members, vec![4, 5, 6, 7]);
    }

    #[test]
    fn fingerprint_is_renumbering_invariant_and_structure_sensitive() {
        let aig = three_component_circuit();
        let cones = partition(&aig);
        // The two toggle FFs differ only in init value ⇒ different prints.
        let f0 = component_fingerprint(&aig, &cones[0].members);
        let f1 = component_fingerprint(&aig, &cones[1].members);
        assert_ne!(f0, f1);

        // The same toggle built at different global positions (and with a
        // different FF name) fingerprints identically: only relative
        // structure matters.
        let mut other = SeqAig::new("other");
        other.add_pi("pad"); // shift global ids
        let q = other.add_ff("renamed", false);
        let n = other.add_not(q);
        other.connect_ff(q, n).unwrap();
        let oc = partition(&other);
        assert_eq!(oc[1].members, vec![1, 2]);
        assert_eq!(component_fingerprint(&other, &oc[1].members), f0);
    }

    #[test]
    fn fingerprint_distinguishes_fanin_order() {
        let mut ab = SeqAig::new("ab");
        let a = ab.add_pi("a");
        let b = ab.add_pi("b");
        ab.add_and(a, b);
        let mut ba = SeqAig::new("ba");
        let a2 = ba.add_pi("a");
        let b2 = ba.add_pi("b");
        ba.add_and(b2, a2);
        let ca = partition(&ab);
        let cb = partition(&ba);
        assert_eq!(ca.len(), 1);
        // AND gathers fanins in stored order; swapping them changes the
        // accumulation order, so the prints must differ.
        assert_ne!(
            component_fingerprint(&ab, &ca[0].members),
            component_fingerprint(&ba, &cb[0].members)
        );
    }

    #[test]
    fn h0_hash_binds_row_bits_and_width() {
        let mut m = Matrix::zeros(3, 2);
        m.set(1, 0, 0.25);
        let h = component_h0_hash(&m, &[0, 1]);
        assert_eq!(h, component_h0_hash(&m, &[0, 1]));
        assert_ne!(h, component_h0_hash(&m, &[0, 2])); // different rows
        let mut m2 = m.clone();
        m2.set(1, 1, -0.0); // -0.0 != 0.0 bitwise
        assert_ne!(h, component_h0_hash(&m2, &[0, 1]));
        let wide = Matrix::zeros(3, 4);
        assert_ne!(
            component_h0_hash(&Matrix::zeros(3, 2), &[0]),
            component_h0_hash(&wide, &[0])
        );
    }

    #[test]
    fn extract_remaps_a_component_faithfully() {
        let aig = three_component_circuit();
        let cones = partition(&aig);
        let sub = extract(&aig, &cones[2].members);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.pis().len(), 2);
        assert!(matches!(*sub.node(NodeId(2)), AigNode::And(a, b)
            if a == NodeId(0) && b == NodeId(1)));
        assert!(matches!(*sub.node(NodeId(3)), AigNode::Not(a) if a == NodeId(2)));
        // Extracted component fingerprints match the originals.
        let sc = partition(&sub);
        assert_eq!(sc.len(), 1);
        assert_eq!(
            component_fingerprint(&sub, &sc[0].members),
            component_fingerprint(&aig, &cones[2].members)
        );

        // FF forward-edges reconnect too.
        let sub_ff = extract(&aig, &cones[0].members);
        assert!(
            matches!(*sub_ff.node(NodeId(0)), AigNode::Ff { d: Some(d), init: false }
            if d == NodeId(1))
        );
    }

    #[test]
    fn extract_merges_multiple_components() {
        let aig = three_component_circuit();
        let cones = partition(&aig);
        let mut merged: Vec<u32> = cones[0].members.clone();
        merged.extend(&cones[2].members);
        let sub = extract(&aig, &merged);
        assert_eq!(sub.len(), 6);
        let sc = partition(&sub);
        assert_eq!(sc.len(), 2);
        assert_eq!(
            component_fingerprint(&sub, &sc[0].members),
            component_fingerprint(&aig, &cones[0].members)
        );
        assert_eq!(
            component_fingerprint(&sub, &sc[1].members),
            component_fingerprint(&aig, &cones[2].members)
        );
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut full = Matrix::zeros(4, 2);
        for r in 0..4 {
            for c in 0..2 {
                full.set(r, c, (r * 2 + c) as f32);
            }
        }
        let rows = gather_rows(&full, &[1, 3]);
        assert_eq!(rows.row(0), full.row(1));
        assert_eq!(rows.row(1), full.row(3));
        let mut dst = Matrix::zeros(4, 2);
        scatter_rows(&mut dst, &[1, 3], &rows);
        assert_eq!(dst.row(1), full.row(1));
        assert_eq!(dst.row(3), full.row(3));
        assert_eq!(dst.row(0), &[0.0, 0.0]);
    }
}
