//! Table III — effectiveness of the individual DeepSeq components.
//!
//! Three models isolate the contributions:
//!
//! 1. DAG-RecGNN + Attention (best baseline of Table II);
//! 2. DeepSeq (customized propagation) + plain Attention — isolates the FF
//!    copy-update step of Fig. 2;
//! 3. DeepSeq (customized propagation) + Dual Attention — the full model.
//!
//! Run: `cargo bench -p deepseq-bench --bench table3_ablation`

use std::time::Instant;

use deepseq_bench::{build_samples, fmt_pe, print_table, Scale};
use deepseq_core::train::{evaluate, train};
use deepseq_core::{Aggregator, DeepSeq, PropagationScheme};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table3] scale: {scale:?}");
    let (train_set, test_set) = build_samples(&scale, scale.hidden);

    let variants: [(&str, &str, Aggregator, PropagationScheme); 3] = [
        (
            "DAG-RecGNN",
            "Attention",
            Aggregator::Attention,
            PropagationScheme::DagRec,
        ),
        (
            "DeepSeq w/ Customized Propagation",
            "Attention",
            Aggregator::Attention,
            PropagationScheme::Custom,
        ),
        (
            "DeepSeq w/ Customized Propagation",
            "Dual Attention",
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ),
    ];
    let paper: [(f64, f64); 3] = [(0.035, 0.095), (0.031, 0.093), (0.028, 0.080)];

    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for ((model_name, agg_name, aggregator, scheme), (paper_tr, paper_lg)) in
        variants.into_iter().zip(paper)
    {
        let start = Instant::now();
        let mut model = DeepSeq::new(scale.config(aggregator, scheme));
        train(&mut model, &train_set, &scale.train_options());
        let metrics = evaluate(&model, &test_set);
        eprintln!(
            "[table3] {model_name}/{agg_name}: PE_TR {:.4} PE_LG {:.4} ({:.1}s)",
            metrics.pe_tr,
            metrics.pe_lg,
            start.elapsed().as_secs_f64()
        );
        measured.push(metrics);
        rows.push(vec![
            model_name.to_string(),
            agg_name.to_string(),
            fmt_pe(metrics.pe_tr),
            fmt_pe(metrics.pe_lg),
            fmt_pe(paper_tr),
            fmt_pe(paper_lg),
        ]);
    }

    print_table(
        "Table III: effectiveness of different components of DeepSeq",
        &[
            "Model",
            "Aggregation",
            "Avg. PE (TTR)",
            "Avg. PE (TLG)",
            "Paper TTR",
            "Paper TLG",
        ],
        &rows,
    );
    if measured.len() == 3 {
        let prop_gain = (measured[0].pe_tr - measured[1].pe_tr) / measured[0].pe_tr * 100.0;
        let dual_gain = (measured[1].pe_tr - measured[2].pe_tr) / measured[1].pe_tr * 100.0;
        println!(
            "(TTR relative improvement: customized propagation {prop_gain:.1}% \
             [paper 11.4%], dual attention {dual_gain:.1}% [paper 9.7%])"
        );
    }
}
