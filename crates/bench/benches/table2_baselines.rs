//! Table II — DeepSeq vs. baseline GNN models on transition- and
//! logic-probability prediction.
//!
//! Trains five models on the same corpus and reports the average prediction
//! error (Eq. 9) per task on a held-out test split:
//!
//! | Model | Aggregation |
//! |---|---|
//! | DAG-ConvGNN | Conv. Sum / Attention |
//! | DAG-RecGNN | Conv. Sum / Attention |
//! | DeepSeq | Dual Attention |
//!
//! Expected shape (paper): ConvGNN ≫ RecGNN error; DeepSeq lowest on both.
//!
//! Run: `cargo bench -p deepseq-bench --bench table2_baselines`

use std::time::Instant;

use deepseq_bench::{build_samples, fmt_pe, print_table, Scale};
use deepseq_core::train::{evaluate, train};
use deepseq_core::{Aggregator, DeepSeq, PropagationScheme};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table2] scale: {scale:?}");
    let (train_set, test_set) = build_samples(&scale, scale.hidden);
    eprintln!(
        "[table2] {} training / {} test circuits",
        train_set.len(),
        test_set.len()
    );

    let variants: [(&str, &str, Aggregator, PropagationScheme); 5] = [
        (
            "DAG-ConvGNN",
            "Conv. Sum",
            Aggregator::ConvSum,
            PropagationScheme::DagConv,
        ),
        (
            "DAG-ConvGNN",
            "Attention",
            Aggregator::Attention,
            PropagationScheme::DagConv,
        ),
        (
            "DAG-RecGNN",
            "Conv. Sum",
            Aggregator::ConvSum,
            PropagationScheme::DagRec,
        ),
        (
            "DAG-RecGNN",
            "Attention",
            Aggregator::Attention,
            PropagationScheme::DagRec,
        ),
        (
            "DeepSeq",
            "Dual Attention",
            Aggregator::DualAttention,
            PropagationScheme::Custom,
        ),
    ];

    // Paper numbers for side-by-side comparison.
    let paper: [(f64, f64); 5] = [
        (0.066, 0.236),
        (0.065, 0.220),
        (0.045, 0.104),
        (0.035, 0.095),
        (0.028, 0.080),
    ];

    let mut rows = Vec::new();
    for ((model_name, agg_name, aggregator, scheme), (paper_tr, paper_lg)) in
        variants.into_iter().zip(paper)
    {
        let start = Instant::now();
        let mut model = DeepSeq::new(scale.config(aggregator, scheme));
        train(&mut model, &train_set, &scale.train_options());
        let metrics = evaluate(&model, &test_set);
        eprintln!(
            "[table2] {model_name}/{agg_name}: PE_TR {:.4} PE_LG {:.4} ({:.1}s)",
            metrics.pe_tr,
            metrics.pe_lg,
            start.elapsed().as_secs_f64()
        );
        rows.push(vec![
            model_name.to_string(),
            agg_name.to_string(),
            fmt_pe(metrics.pe_tr),
            fmt_pe(metrics.pe_lg),
            fmt_pe(paper_tr),
            fmt_pe(paper_lg),
        ]);
    }

    print_table(
        "Table II: performance comparison with baseline GNN models",
        &[
            "Model",
            "Aggregation",
            "Avg. PE (TTR)",
            "Avg. PE (TLG)",
            "Paper TTR",
            "Paper TLG",
        ],
        &rows,
    );
    println!("(shape to check: ConvGNN worst, RecGNN better, DeepSeq best on both tasks)");
}
