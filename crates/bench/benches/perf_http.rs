//! Criterion benchmarks of the HTTP serving edge: full loopback
//! round-trips through a real [`HttpServer`](deepseq_serve::HttpServer) —
//! accept, parse, admission, engine, JSON, socket teardown. The
//! `serve_http_*` ids land in `BENCH_serve.json` next to the in-process
//! engine numbers of `perf_serve`, so the trajectory separates protocol
//! overhead (`healthz`, `embed_hit`) from compute (`embed_miss`) and
//! records a small concurrent burst.
//!
//! The engine is pinned to a 1-thread pool (connection handlers then run
//! on dedicated threads, the server's no-worker fallback) so the numbers
//! isolate the serial edge and stay comparable across measurement hosts,
//! like the rest of the committed trajectory.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_http`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_netlist::write_aiger;
use deepseq_nn::Pool;
use deepseq_serve::{Engine, EngineOptions, HttpServer, InferenceModel, ServerOptions};

/// One `Connection: close` exchange; returns the status code.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    text.lines()
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .expect("status line")
}

/// The `rand200`-scale stand-in of this bench: a 24-bit ripple counter
/// (sequential depth plus a few hundred gates), in ASCII AIGER.
fn counter_aiger() -> String {
    let mut aig = deepseq_netlist::SeqAig::new("counter24");
    let enable = aig.add_pi("enable");
    let ffs: Vec<_> = (0..24)
        .map(|b| aig.add_ff(format!("q{b}"), b % 2 == 0))
        .collect();
    let mut carry = enable;
    for (b, &ff) in ffs.iter().enumerate() {
        let nq = aig.add_not(ff);
        let ncarry = aig.add_not(carry);
        let l = aig.add_and(ff, ncarry);
        let r = aig.add_and(nq, carry);
        let nl = aig.add_not(l);
        let nr = aig.add_not(r);
        let nxor = aig.add_and(nl, nr);
        let next = aig.add_not(nxor);
        let new_carry = aig.add_and(ff, carry);
        aig.connect_ff(ff, next).expect("ff wiring");
        aig.set_output(ff, format!("count{b}"));
        carry = new_carry;
    }
    write_aiger(&aig)
}

fn boot() -> HttpServer {
    let model = DeepSeq::new(DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    });
    let engine = Engine::with_pool(
        InferenceModel::from_model(&model).expect("canonical params"),
        EngineOptions {
            workers: 1,
            cache_capacity: 64,
            ..EngineOptions::default()
        },
        Arc::new(Pool::new(1)),
    );
    HttpServer::bind(engine, ServerOptions::default()).expect("bind loopback")
}

fn bench_http(c: &mut Criterion) {
    let server = boot();
    let addr = server.local_addr();
    let circuit = counter_aiger();

    // Protocol floor: no admission, no engine — parse + route + respond.
    c.bench_function("serve_http_healthz_rtt", |b| {
        b.iter(|| assert_eq!(exchange(addr, "GET", "/healthz", b""), 200))
    });

    // Cache-hit round-trip: admission + hash + LRU + JSON over the wire.
    assert_eq!(
        exchange(addr, "POST", "/v1/embed?seed=0", circuit.as_bytes()),
        200,
        "cache warm-up"
    );
    c.bench_function("serve_http_embed_hit_counter24_d32_t4", |b| {
        b.iter(|| {
            assert_eq!(
                exchange(addr, "POST", "/v1/embed?seed=0", circuit.as_bytes()),
                200
            )
        })
    });

    // Cache-miss round-trip: a fresh init seed per request forces the
    // full forward pass on an unchanged circuit.
    let mut seed = 1u64;
    c.bench_function("serve_http_embed_miss_counter24_d32_t4", |b| {
        b.iter(|| {
            let path = format!("/v1/embed?seed={seed}");
            seed += 1;
            assert_eq!(exchange(addr, "POST", &path, circuit.as_bytes()), 200)
        })
    });

    // A 16-wide concurrent burst of cache hits: accept fan-out, admission
    // contention, and 16 full round-trips per iteration.
    c.bench_function("serve_http_burst16_hit_counter24_d32_t4", |b| {
        b.iter(|| {
            let clients: Vec<_> = (0..16)
                .map(|_| {
                    let circuit = circuit.clone();
                    std::thread::spawn(move || {
                        exchange(addr, "POST", "/v1/embed?seed=0", circuit.as_bytes())
                    })
                })
                .collect();
            for client in clients {
                assert_eq!(client.join().expect("client"), 200);
            }
        })
    });

    let report = server.shutdown();
    assert_eq!(report.connections_abandoned, 0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_http
}
criterion_main!(benches);
