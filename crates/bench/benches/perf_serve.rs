//! Criterion benchmarks of the serving subsystem: the autograd-tape forward
//! pass vs. the tape-free [`InferenceModel`] vs. the content-addressed
//! cache-hit path, on the synthetic design suite and a training-scale
//! random circuit. These back the PR-2 acceptance criterion (tape-free
//! measurably faster than tape; cache hit faster still) and feed the
//! `BENCH_serve.json` perf-trajectory artifact collected in CI.
//!
//! The tape-free and engine benches are pinned to 1-thread pools so the
//! committed trajectory isolates the serial path and stays comparable
//! across measurement hosts (`perf_threads` owns the scaling story); the
//! tape benches inherit the global pool, so run this with
//! `DEEPSEQ_THREADS=1` (CI does) when refreshing `BENCH_serve.json`.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_serve`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_data::designs::ptc;
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_netlist::{lower_to_aig, SeqAig};
use deepseq_nn::{Kernel, Matrix, Pool};
use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest, Workspace};
use deepseq_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    tag: &'static str,
    aig: SeqAig,
    model: DeepSeq,
    frozen: InferenceModel,
    graph: CircuitGraph,
    h0: Matrix,
}

fn fixture(tag: &'static str, aig: SeqAig, config: DeepSeqConfig) -> Fixture {
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_model(&model).expect("canonical params");
    let graph = CircuitGraph::build(&aig);
    let workload = Workload::uniform(aig.num_pis(), 0.5);
    let h0 = initial_states(&aig, &workload, config.hidden_dim, 0);
    Fixture {
        tag,
        aig,
        model,
        frozen,
        graph,
        h0,
    }
}

fn fixtures() -> Vec<Fixture> {
    let mut rng = StdRng::seed_from_u64(0);
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let random = random_circuit("rand200", &CircuitSpec::default(), &mut rng);
    let suite = lower_to_aig(&ptc()).expect("valid design").aig;
    vec![
        fixture("rand200_d32_t4", random, config),
        fixture("ptc_d32_t4", suite, config),
    ]
}

fn bench_tape_forward(c: &mut Criterion) {
    for f in fixtures() {
        c.bench_function(&format!("serve_tape_forward_{}", f.tag), |b| {
            b.iter(|| f.model.predict(&f.graph, &f.h0))
        });
    }
}

fn bench_tapefree_forward(c: &mut Criterion) {
    for f in fixtures() {
        // The serving default kernel on a pinned 1-thread pool — this id is
        // the long-running tape-free trajectory entry in BENCH_serve.json.
        let mut ws = Workspace::with_pool(Kernel::for_serve(), Arc::new(Pool::new(1)));
        c.bench_function(&format!("serve_tapefree_forward_{}", f.tag), |b| {
            b.iter(|| f.frozen.run(&f.graph, &f.h0, &mut ws))
        });
    }
}

/// The same tape-free forward pass pinned to each GEMM kernel, so
/// `BENCH_serve.json` records the per-kernel end-to-end numbers alongside
/// the raw GEMM microbenches of `perf_kernels`.
fn bench_tapefree_per_kernel(c: &mut Criterion) {
    for f in fixtures() {
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Simd]) {
            let mut ws = Workspace::with_pool(kernel, Arc::new(Pool::new(1)));
            c.bench_function(
                &format!("serve_tapefree_{}_{}", kernel.name(), f.tag),
                |b| b.iter(|| f.frozen.run(&f.graph, &f.h0, &mut ws)),
            );
        }
    }
}

fn bench_cache_hit(c: &mut Criterion) {
    for f in fixtures() {
        let engine = Engine::with_pool(
            f.frozen.clone(),
            EngineOptions {
                workers: 1,
                cache_capacity: 8,
            },
            Arc::new(Pool::new(1)),
        );
        let make = |id| ServeRequest {
            id,
            aig: f.aig.clone(),
            workload: Workload::uniform(f.aig.num_pis(), 0.5),
            init_seed: 0,
        };
        // Warm the cache, then measure the full hit path (structural hash +
        // key lookup + channel round-trip).
        let warm = engine.serve_batch(vec![make(0)]);
        assert!(!warm[0].result.as_ref().expect("serves").cache_hit);
        let mut id = 1u64;
        c.bench_function(&format!("serve_cache_hit_{}", f.tag), |b| {
            b.iter(|| {
                id += 1;
                let r = engine.serve_batch(vec![make(id)]);
                assert!(r[0].result.as_ref().expect("serves").cache_hit);
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tape_forward, bench_tapefree_forward, bench_tapefree_per_kernel, bench_cache_hit
}
criterion_main!(benches);
