//! Criterion benchmarks of the serving subsystem: the autograd-tape forward
//! pass vs. the tape-free [`InferenceModel`] vs. the content-addressed
//! cache-hit path, on the synthetic design suite and a training-scale
//! random circuit. These back the PR-2 acceptance criterion (tape-free
//! measurably faster than tape; cache hit faster still) and feed the
//! `BENCH_serve.json` perf-trajectory artifact collected in CI.
//!
//! The tape-free and engine benches are pinned to 1-thread pools so the
//! committed trajectory isolates the serial path and stays comparable
//! across measurement hosts (`perf_threads` owns the scaling story); the
//! tape benches inherit the global pool, so run this with
//! `DEEPSEQ_THREADS=1` (CI does) when refreshing `BENCH_serve.json`.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_serve`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_data::designs::ptc;
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_netlist::{lower_to_aig, structural_hash, SeqAig};
use deepseq_nn::{Kernel, Matrix, Pool};
use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest, ShardRouter, Workspace};
use deepseq_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    tag: &'static str,
    aig: SeqAig,
    model: DeepSeq,
    frozen: InferenceModel,
    graph: CircuitGraph,
    h0: Matrix,
}

fn fixture(tag: &'static str, aig: SeqAig, config: DeepSeqConfig) -> Fixture {
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_model(&model).expect("canonical params");
    let graph = CircuitGraph::build(&aig);
    let workload = Workload::uniform(aig.num_pis(), 0.5);
    let h0 = initial_states(&aig, &workload, config.hidden_dim, 0);
    Fixture {
        tag,
        aig,
        model,
        frozen,
        graph,
        h0,
    }
}

fn fixtures() -> Vec<Fixture> {
    let mut rng = StdRng::seed_from_u64(0);
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let random = random_circuit("rand200", &CircuitSpec::default(), &mut rng);
    let suite = lower_to_aig(&ptc()).expect("valid design").aig;
    vec![
        fixture("rand200_d32_t4", random, config),
        fixture("ptc_d32_t4", suite, config),
    ]
}

fn bench_tape_forward(c: &mut Criterion) {
    for f in fixtures() {
        c.bench_function(&format!("serve_tape_forward_{}", f.tag), |b| {
            b.iter(|| f.model.predict(&f.graph, &f.h0))
        });
    }
}

fn bench_tapefree_forward(c: &mut Criterion) {
    for f in fixtures() {
        // The serving default kernel on a pinned 1-thread pool — this id is
        // the long-running tape-free trajectory entry in BENCH_serve.json.
        let mut ws = Workspace::with_pool(Kernel::for_serve(), Arc::new(Pool::new(1)));
        c.bench_function(&format!("serve_tapefree_forward_{}", f.tag), |b| {
            b.iter(|| f.frozen.run(&f.graph, &f.h0, &mut ws))
        });
    }
}

/// The same tape-free forward pass pinned to each GEMM kernel, so
/// `BENCH_serve.json` records the per-kernel end-to-end numbers alongside
/// the raw GEMM microbenches of `perf_kernels`.
fn bench_tapefree_per_kernel(c: &mut Criterion) {
    for f in fixtures() {
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Simd]) {
            let mut ws = Workspace::with_pool(kernel, Arc::new(Pool::new(1)));
            c.bench_function(
                &format!("serve_tapefree_{}_{}", kernel.name(), f.tag),
                |b| b.iter(|| f.frozen.run(&f.graph, &f.h0, &mut ws)),
            );
        }
    }
}

fn bench_cache_hit(c: &mut Criterion) {
    for f in fixtures() {
        let engine = Engine::with_pool(
            f.frozen.clone(),
            EngineOptions {
                workers: 1,
                cache_capacity: 8,
                cone_capacity: 0,
            },
            Arc::new(Pool::new(1)),
        );
        let make = |id| ServeRequest {
            id,
            aig: f.aig.clone(),
            workload: Workload::uniform(f.aig.num_pis(), 0.5),
            init_seed: 0,
        };
        // Warm the cache, then measure the full hit path (structural hash +
        // key lookup + channel round-trip).
        let warm = engine.serve_batch(vec![make(0)]);
        assert!(!warm[0].result.as_ref().expect("serves").cache_hit);
        let mut id = 1u64;
        c.bench_function(&format!("serve_cache_hit_{}", f.tag), |b| {
            b.iter(|| {
                id += 1;
                let r = engine.serve_batch(vec![make(id)]);
                assert!(r[0].result.as_ref().expect("serves").cache_hit);
            })
        });
    }
}

/// A circuit of `blocks` self-contained blocks (one PI, one FF, `gates`
/// gates each, fanins drawn only within the block) — `blocks`
/// weakly-connected components, the reuse unit of the cone memo. `variant`
/// reseeds the last block only, producing the near-duplicate edit the
/// memo is built for.
fn blocky_aig(blocks: usize, gates: usize, variant: u64) -> SeqAig {
    let mut aig = SeqAig::new("blocky");
    for b in 0..blocks {
        let mut state = if b + 1 == blocks {
            (b as u64).wrapping_add(variant << 32) | 1
        } else {
            b as u64 | 1
        };
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let pi = aig.add_pi(format!("b{b}pi"));
        let ff = aig.add_ff(format!("b{b}ff"), next(2) == 1);
        let mut nodes = vec![pi, ff];
        for _ in 0..gates {
            let a = nodes[next(nodes.len())];
            let c = nodes[next(nodes.len())];
            nodes.push(if next(3) == 0 {
                aig.add_not(a)
            } else {
                aig.add_and(a, c)
            });
        }
        aig.connect_ff(ff, *nodes.last().unwrap())
            .expect("ff connect");
    }
    aig
}

/// Near-duplicate serving: a 16-component circuit warms the cone memo,
/// then a one-component edit of it is served with the memo
/// (`serve_cone_hit_*`: unchanged components splice their memoized
/// final-state rows) and without (`serve_cone_full_*`: full recompute).
/// The derived `cone_speedup_blocks16` ratio is the acceptance number for
/// cone-granularity caching; the exact-match cache is disabled in both so
/// the comparison isolates the cone path.
fn bench_cone_reuse(c: &mut Criterion) {
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let model = DeepSeq::new(config);
    let frozen = InferenceModel::from_model(&model).expect("canonical params");
    let base = blocky_aig(16, 24, 0);
    let edited = blocky_aig(16, 24, 1);
    let make = |aig: &SeqAig, id| ServeRequest {
        id,
        aig: aig.clone(),
        workload: Workload::uniform(aig.num_pis(), 0.5),
        init_seed: 0,
    };
    for (name, cones) in [
        ("serve_cone_hit_blocks16", 4096),
        ("serve_cone_full_blocks16", 0),
    ] {
        let engine = Engine::with_pool(
            frozen.clone(),
            EngineOptions {
                workers: 1,
                cache_capacity: 0,
                cone_capacity: cones,
            },
            Arc::new(Pool::new(1)),
        );
        engine.serve_batch(vec![make(&base, 0)]); // warm (no-op without memo)
        let mut id = 1u64;
        c.bench_function(name, |b| {
            b.iter(|| {
                id += 1;
                let r = engine.serve_batch(vec![make(&edited, id)]);
                let served = r[0].result.as_ref().expect("serves");
                assert_eq!(served.cones_reused > 0, cones > 0);
            })
        });
    }
}

/// The shard router's cache-hit path through 1 and 4 shards: the delta is
/// pure routing overhead (structural hash → home, ring state, per-shard
/// counters), pinned near 1.0× by the derived `shard_hit_ratio_s4_*`.
fn bench_shard_hit(c: &mut Criterion) {
    let f = fixtures().pop().expect("ptc fixture");
    for shards in [1usize, 4] {
        let engine = Engine::with_pool(
            f.frozen.clone(),
            EngineOptions {
                workers: 1,
                cache_capacity: 8,
                cone_capacity: 0,
            },
            Arc::new(Pool::new(1)),
        );
        let router = ShardRouter::new(engine, shards);
        let hash = structural_hash(&f.aig);
        let make = |id| ServeRequest {
            id,
            aig: f.aig.clone(),
            workload: Workload::uniform(f.aig.num_pis(), 0.5),
            init_seed: 0,
        };
        // Warm the home shard's cache, then measure route + hit.
        let home = router.home(hash);
        router.engine(home).serve_batch(vec![make(0)]);
        let mut id = 1u64;
        c.bench_function(&format!("serve_shard_hit_s{shards}_{}", f.tag), |b| {
            b.iter(|| {
                id += 1;
                let decision = router.route(hash).expect("no shard degraded");
                let r = router.engine(decision.shard).serve_batch(vec![make(id)]);
                assert!(r[0].result.as_ref().expect("serves").cache_hit);
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tape_forward, bench_tapefree_forward, bench_tapefree_per_kernel, bench_cache_hit,
        bench_cone_reuse, bench_shard_hit
}
criterion_main!(benches);
