//! Criterion benchmarks of the data-parallel training layer: one full
//! training epoch (grouped optimizer steps, gradients fanned across the
//! pool) and one evaluation sweep, measured on worker pools of 1, 2, 4 and
//! 8 threads. Training is bitwise identical at every pool size (see
//! `crates/core/tests/training_determinism.rs`), so — like `perf_threads`
//! — these are pure speedup measurements: the `t1` entries are the
//! baselines the `train_speedup_*` derived ratios in `BENCH_serve.json`
//! divide by (see `collect_bench`).
//!
//! Bench ids follow `serve_train_<what>_t<N>_<rest>` so `collect_bench`
//! folds them into the committed `BENCH_serve.json` next to the serving
//! trajectory. On a single-core host the >1-thread numbers measure
//! scheduling overhead, not speedup; the committed trajectory records
//! whatever the measurement host provides.
//!
//! Run with `DEEPSEQ_THREADS=1` (as CI does): the explicit pools here only
//! drive the *sample-level* fan-out, while the GEMMs inside each forward
//! pass dispatch on the global pool — pinning that to 1 keeps the `t1`
//! entry genuinely serial and the `t{N}` entries a pure measurement of the
//! data-parallel training layer on any host.
//!
//! Run: `DEEPSEQ_THREADS=1 cargo bench -p deepseq-bench --bench perf_train`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepseq_core::{evaluate_on, train_on, DeepSeq, DeepSeqConfig, TrainOptions, TrainSample};
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_nn::Pool;
use deepseq_sim::{SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pool sizes the trajectory tracks (1 = the single-threaded baseline).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Samples per epoch; also the optimizer-step group size, so one epoch is
/// one fully-parallel gradient fan-out per step.
const SAMPLES: usize = 8;

fn fixture() -> (DeepSeqConfig, Vec<TrainSample>) {
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0);
    let samples = (0..SAMPLES)
        .map(|i| {
            let aig = random_circuit(&format!("rand200_{i}"), &CircuitSpec::default(), &mut rng);
            let workload = Workload::random(aig.num_pis(), &mut rng);
            TrainSample::generate(
                &aig,
                &workload,
                config.hidden_dim,
                &SimOptions {
                    cycles: 64,
                    warmup: 4,
                    seed: i as u64,
                },
                i as u64,
            )
        })
        .collect();
    (config, samples)
}

/// One data-parallel training epoch (8 samples, one grouped ADAM step of 8)
/// per pool size: `serve_train_epoch_t{N}_rand200x8_d32`.
fn bench_train_epoch(c: &mut Criterion) {
    let (config, samples) = fixture();
    let opts = TrainOptions {
        epochs: 1,
        samples_per_step: SAMPLES,
        ..TrainOptions::default()
    };
    for threads in THREADS {
        let pool = Pool::new(threads);
        c.bench_function(
            &format!("serve_train_epoch_t{threads}_rand200x8_d32"),
            |b| {
                b.iter_batched(
                    || DeepSeq::new(config),
                    |mut model| train_on(&pool, &mut model, &samples, &opts),
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

/// The evaluation sweep (per-sample inference fan-out) per pool size:
/// `serve_train_eval_t{N}_rand200x8_d32`.
fn bench_evaluate(c: &mut Criterion) {
    let (config, samples) = fixture();
    let model = DeepSeq::new(config);
    for threads in THREADS {
        let pool = Pool::new(threads);
        c.bench_function(&format!("serve_train_eval_t{threads}_rand200x8_d32"), |b| {
            b.iter(|| evaluate_on(&pool, &model, &samples))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_epoch, bench_evaluate
}
criterion_main!(benches);
