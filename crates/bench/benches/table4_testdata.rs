//! Table IV — statistics of the six large test designs.
//!
//! Builds the structural analogs of the OpenCores designs, lowers them to
//! AIGs without optimization and prints node counts next to the paper's.
//!
//! Run: `cargo bench -p deepseq-bench --bench table4_testdata`

use deepseq_bench::print_table;
use deepseq_data::designs::{all_designs, paper_node_count};
use deepseq_netlist::{lower_to_aig, CircuitStats};

fn main() {
    let descriptions = [
        ("noc_router", "Network-on-Chip router"),
        ("pll", "Phase locked loop"),
        ("ptc", "PWM/Timer/Counter IP core"),
        ("rtcclock", "Real-time clock core"),
        ("ac97_ctrl", "Audio Codec 97 controller"),
        ("mem_ctrl", "Memory controller"),
    ];
    let mut rows = Vec::new();
    for netlist in all_designs() {
        let lowered = lower_to_aig(&netlist).expect("designs are valid");
        let stats = CircuitStats::of(&lowered.aig);
        let description = descriptions
            .iter()
            .find(|(n, _)| *n == netlist.name())
            .map(|(_, d)| *d)
            .unwrap_or("");
        let paper = paper_node_count(netlist.name()).unwrap_or(0);
        rows.push(vec![
            netlist.name().to_string(),
            description.to_string(),
            stats.nodes.to_string(),
            paper.to_string(),
            format!("{:.2}", stats.nodes as f64 / paper as f64),
            netlist.len().to_string(),
            stats.ffs.to_string(),
            stats.depth.to_string(),
        ]);
    }
    print_table(
        "Table IV: statistics of the test data",
        &[
            "Design Name",
            "Description",
            "# Nodes (AIG)",
            "Paper # Nodes",
            "Ratio",
            "# Gates (netlist)",
            "# FFs",
            "Depth",
        ],
        &rows,
    );
}
