//! Extension ablation — sensitivity to the recurrence depth `T`.
//!
//! Section IV-B1 attributes DAG-ConvGNN's poor accuracy to "a single
//! propagation through the circuit graph" and the paper fixes `T = 10` for
//! the recurrent models. This sweep quantifies the claim: the same DeepSeq
//! model trained with `T ∈ {1, 2, 3, 5}` should improve monotonically (with
//! diminishing returns) on both tasks.
//!
//! Run: `cargo bench -p deepseq-bench --bench ablation_iterations`

use std::time::Instant;

use deepseq_bench::{build_samples, fmt_pe, print_table, Scale};
use deepseq_core::train::{evaluate, train};
use deepseq_core::{Aggregator, DeepSeq, PropagationScheme};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_T] scale: {scale:?}");
    let (train_set, test_set) = build_samples(&scale, scale.hidden);

    let sweep = [1usize, 2, 3];
    let mut rows = Vec::new();
    for t in sweep {
        let start = Instant::now();
        let mut config = scale.config(Aggregator::DualAttention, PropagationScheme::Custom);
        config.iterations = t;
        let mut model = DeepSeq::new(config);
        train(&mut model, &train_set, &scale.train_options());
        let metrics = evaluate(&model, &test_set);
        let secs = start.elapsed().as_secs_f64();
        eprintln!(
            "[ablation_T] T={t}: PE_TR {:.4} PE_LG {:.4} ({secs:.1}s)",
            metrics.pe_tr, metrics.pe_lg
        );
        rows.push(vec![
            t.to_string(),
            fmt_pe(metrics.pe_tr),
            fmt_pe(metrics.pe_lg),
            format!("{secs:.1}s"),
        ]);
    }
    print_table(
        "Ablation: propagation iterations T (DeepSeq, dual attention)",
        &["T", "Avg. PE (TTR)", "Avg. PE (TLG)", "train time"],
        &rows,
    );
    println!("(shape to check: error decreases with T, diminishing returns — Section IV-B1)");
}
