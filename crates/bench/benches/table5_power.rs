//! Table V — power estimation on the six large test designs.
//!
//! Reproduces the Fig. 3 pipeline: ground-truth logic simulation, the
//! probabilistic baseline [27], fine-tuned Grannite [18] and fine-tuned
//! DeepSeq each produce a SAIF file, which the power model evaluates with a
//! 90 nm-class cell library.
//!
//! Expected shape (paper): Probabilistic worst (16.35% avg error), Grannite
//! middle (8.48%), DeepSeq best (3.19%).
//!
//! Run: `cargo bench -p deepseq-bench --bench table5_power`

use std::time::Instant;

use deepseq_bench::{build_samples, fmt_mw, fmt_pct, pretrained_deepseq, print_table, Scale};
use deepseq_core::train::train;
use deepseq_data::designs::all_designs;
use deepseq_netlist::lower_to_aig;
use deepseq_power::{
    finetune_samples, run_pipeline, train_grannite, Grannite, GranniteConfig, GranniteSample,
    GranniteTrainOptions, PipelineConfig,
};
use deepseq_sim::{simulate, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table5] scale: {scale:?}");
    let (train_set, _) = build_samples(&scale, scale.hidden);
    let pretrained = pretrained_deepseq(&scale, &train_set);

    // Pre-train Grannite on the same corpus (paper Section V-A2: "we keep
    // the same training data for Grannite").
    let corpus = deepseq_data::dataset::Corpus::generate(scale.circuits, 11);
    let mut rng = StdRng::seed_from_u64(29);
    let grannite_samples: Vec<GranniteSample> = corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            let r = simulate(aig, &w, &scale.sim_options(300 + i as u64));
            GranniteSample::new(aig, &r.probs)
        })
        .collect();
    let mut grannite = Grannite::new(GranniteConfig {
        hidden_dim: scale.hidden,
        seed: 5,
    });
    let g_start = Instant::now();
    train_grannite(
        &mut grannite,
        &grannite_samples,
        &GranniteTrainOptions {
            epochs: scale.epochs,
            lr: scale.lr,
            seed: 0,
        },
    );
    eprintln!(
        "[table5] pre-trained Grannite in {:.1}s",
        g_start.elapsed().as_secs_f64()
    );

    let pipeline_config = PipelineConfig {
        sim: scale.sim_options(999),
        ..PipelineConfig::default()
    };

    let mut rows = Vec::new();
    let mut errors = (0.0f64, 0.0f64, 0.0f64);
    let paper_rows: &[(&str, f64, f64, f64)] = &[
        ("noc_router", 6.58, 1.85, 1.53),
        ("pll", 19.12, 11.41, 2.56),
        ("ptc", 25.55, 10.20, 3.24),
        ("rtcclock", 12.84, 5.72, 4.54),
        ("ac97_ctrl", 26.22, 17.60, 2.74),
        ("mem_ctrl", 7.77, 4.10, 4.54),
    ];

    let designs = all_designs();
    for netlist in &designs {
        let design_start = Instant::now();
        let lowered = lower_to_aig(netlist).expect("designs are valid");
        let n_pis = netlist.inputs().len();
        let mut w_rng = StdRng::seed_from_u64(hash_name(netlist.name()));
        let test_workload = Workload::random(n_pis, &mut w_rng);

        // Budget-aware fine-tuning: large designs get fewer steps so the
        // default run stays tractable (full scale: DEEPSEQ_SCALE=full).
        let size_factor = (6_000.0 / lowered.aig.len() as f64).clamp(0.25, 1.0);
        let ft_workloads = ((scale.ft_workloads as f64 * size_factor).round() as usize).max(2);
        let ft_epochs = ((scale.ft_epochs as f64 * size_factor).round() as usize).max(1);

        // Fine-tune DeepSeq on this design under fresh random workloads
        // (Section V-A1).
        let ft_wl: Vec<Workload> = (0..ft_workloads)
            .map(|_| Workload::random(n_pis, &mut w_rng))
            .collect();
        let ft_samples = finetune_samples(
            &lowered.aig,
            &ft_wl,
            scale.hidden,
            &scale.sim_options(1234),
            77,
        );
        let mut deepseq_ft = pretrained.clone();
        let mut ft_opts = scale.train_options();
        ft_opts.epochs = ft_epochs;
        ft_opts.lr = scale.ft_lr;
        train(&mut deepseq_ft, &ft_samples, &ft_opts);

        // Fine-tune Grannite on the same workloads.
        let g_samples: Vec<GranniteSample> = ft_wl
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let r = simulate(&lowered.aig, w, &scale.sim_options(1234 + i as u64));
                GranniteSample::new(&lowered.aig, &r.probs)
            })
            .collect();
        let mut grannite_ft = grannite.clone();
        train_grannite(
            &mut grannite_ft,
            &g_samples,
            &GranniteTrainOptions {
                epochs: ft_epochs,
                lr: scale.ft_lr,
                seed: 1,
            },
        );

        let result = run_pipeline(
            netlist,
            &test_workload,
            Some(&grannite_ft),
            Some(&deepseq_ft),
            &pipeline_config,
        );
        let g = result.grannite.expect("grannite supplied");
        let d = result.deepseq.expect("deepseq supplied");
        errors.0 += result.probabilistic.error_pct;
        errors.1 += g.error_pct;
        errors.2 += d.error_pct;
        let paper = paper_rows
            .iter()
            .find(|(n, _, _, _)| *n == netlist.name())
            .copied()
            .unwrap_or((netlist.name(), 0.0, 0.0, 0.0));
        eprintln!(
            "[table5] {}: GT {:.3} mW, prob {:.2}%, grannite {:.2}%, deepseq {:.2}% ({:.0}s)",
            netlist.name(),
            result.gt_mw,
            result.probabilistic.error_pct,
            g.error_pct,
            d.error_pct,
            design_start.elapsed().as_secs_f64()
        );
        rows.push(vec![
            result.design.clone(),
            fmt_mw(result.gt_mw),
            fmt_mw(result.probabilistic.mw),
            fmt_pct(result.probabilistic.error_pct),
            fmt_mw(g.mw),
            fmt_pct(g.error_pct),
            fmt_mw(d.mw),
            fmt_pct(d.error_pct),
            format!("{:.1}/{:.1}/{:.1}", paper.1, paper.2, paper.3),
        ]);
    }
    let n = designs.len() as f64;
    rows.push(vec![
        "Avg.".into(),
        String::new(),
        String::new(),
        fmt_pct(errors.0 / n),
        String::new(),
        fmt_pct(errors.1 / n),
        String::new(),
        fmt_pct(errors.2 / n),
        "16.4/8.5/3.2".into(),
    ]);

    print_table(
        "Table V: power estimation on 6 large-scale circuits",
        &[
            "Design Name",
            "GT (mW)",
            "Prob. (mW)",
            "Error",
            "Grannite (mW)",
            "Error",
            "DeepSeq (mW)",
            "Error",
            "Paper err (P/G/D)",
        ],
        &rows,
    );
    println!("(shape to check: probabilistic worst, Grannite middle, DeepSeq best on average)");
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}
