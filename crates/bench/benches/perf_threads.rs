//! Criterion benchmarks of the multi-threaded execution layer: the same
//! GEMM, tape-free forward pass and engine batch measured on worker pools
//! of 1, 2, 4 and 8 threads. Because every parallel path is bitwise equal
//! to single-threaded, these benches are pure speedup measurements — the
//! `t1` entries are the baselines the `mt_speedup_*` derived ratios in
//! `BENCH_serve.json` divide by (see `collect_bench`).
//!
//! Bench ids follow `serve_mt_<what>_t<N>_<rest>` so `collect_bench` folds
//! them into the committed `BENCH_serve.json` and derives the per-thread
//! ratios. Note that on a single-core host the >1-thread numbers measure
//! scheduling overhead, not speedup; the committed trajectory records
//! whatever the measurement host provides.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_threads`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_data::designs::ptc;
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_netlist::{lower_to_aig, SeqAig};
use deepseq_nn::{Kernel, Matrix, Pool};
use deepseq_serve::{Engine, EngineOptions, InferenceModel, ServeRequest, Workspace};
use deepseq_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pool sizes the trajectory tracks (1 = the single-threaded baseline).
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn filled(rows: usize, cols: usize, seed: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f32).sin() * seed + (r as f32 - c as f32) * 0.01
    })
}

/// The acceptance-criterion GEMM (`256×256 · 256×64`, blocked kernel) on
/// each pool size: `serve_mt_gemm_t{N}_256x256x64`.
fn bench_mt_gemm(c: &mut Criterion) {
    let (m, k, n) = (256, 256, 64);
    let a = filled(m, k, 0.6);
    let b = filled(k, n, -0.4);
    for threads in THREADS {
        let pool = Pool::new(threads);
        let mut out = Matrix::default();
        c.bench_function(&format!("serve_mt_gemm_t{threads}_{m}x{k}x{n}"), |bch| {
            bch.iter(|| Kernel::Blocked.matmul_into_on(&pool, &a, &b, &mut out))
        });
    }
}

struct Fixture {
    tag: &'static str,
    aig: SeqAig,
    frozen: InferenceModel,
    graph: CircuitGraph,
    h0: Matrix,
}

fn fixtures() -> Vec<Fixture> {
    let mut rng = StdRng::seed_from_u64(0);
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let make = |tag: &'static str, aig: SeqAig| {
        let model = DeepSeq::new(config);
        let frozen = InferenceModel::from_model(&model).expect("canonical params");
        let graph = CircuitGraph::build(&aig);
        let workload = Workload::uniform(aig.num_pis(), 0.5);
        let h0 = initial_states(&aig, &workload, config.hidden_dim, 0);
        Fixture {
            tag,
            aig,
            frozen,
            graph,
            h0,
        }
    };
    vec![
        make(
            "rand200_d32_t4",
            random_circuit("rand200", &CircuitSpec::default(), &mut rng),
        ),
        make(
            "ptc_d32_t4",
            lower_to_aig(&ptc()).expect("valid design").aig,
        ),
    ]
}

/// The tape-free forward pass (level-parallel) per pool size:
/// `serve_mt_tapefree_t{N}_{design}`.
fn bench_mt_tapefree(c: &mut Criterion) {
    for f in fixtures() {
        for threads in THREADS {
            let pool = Arc::new(Pool::new(threads));
            let mut ws = Workspace::with_pool(Kernel::for_serve(), pool);
            c.bench_function(&format!("serve_mt_tapefree_t{threads}_{}", f.tag), |b| {
                b.iter(|| f.frozen.run(&f.graph, &f.h0, &mut ws))
            });
        }
    }
}

/// End-to-end engine throughput on the design suite: an 8-request batch of
/// distinct circuits (cache disabled so every request computes) per pool
/// size: `serve_mt_batch_t{N}_{design}`.
fn bench_mt_batch(c: &mut Criterion) {
    for f in fixtures() {
        for threads in THREADS {
            let engine = Engine::with_pool(
                f.frozen.clone(),
                EngineOptions {
                    workers: threads,
                    cache_capacity: 0,
                    cone_capacity: 0,
                },
                Arc::new(Pool::new(threads)),
            );
            let requests: Vec<ServeRequest> = (0..8)
                .map(|id| ServeRequest {
                    id,
                    aig: f.aig.clone(),
                    workload: Workload::uniform(f.aig.num_pis(), 0.5),
                    // Distinct seeds keep requests distinct even with a
                    // cache; capacity 0 disables it anyway.
                    init_seed: id,
                })
                .collect();
            c.bench_function(&format!("serve_mt_batch_t{threads}_{}", f.tag), |b| {
                b.iter(|| {
                    let responses = engine.serve_batch(requests.clone());
                    assert!(responses.iter().all(|r| r.result.is_ok()));
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mt_gemm, bench_mt_tapefree, bench_mt_batch
}
criterion_main!(benches);
