//! Table VI — power estimation on `ac97_ctrl` under five different
//! workloads (W0–W4).
//!
//! A single fine-tuned model per method must generalize to *unseen*
//! workloads of the same circuit (paper Section V-A3b).
//!
//! Run: `cargo bench -p deepseq-bench --bench table6_workloads`

use deepseq_bench::{build_samples, fmt_mw, fmt_pct, pretrained_deepseq, print_table, Scale};
use deepseq_core::train::train;
use deepseq_data::designs::ac97_ctrl;
use deepseq_netlist::lower_to_aig;
use deepseq_power::{
    finetune_samples, run_pipeline, train_grannite, Grannite, GranniteConfig, GranniteSample,
    GranniteTrainOptions, PipelineConfig,
};
use deepseq_sim::{simulate, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table6] scale: {scale:?}");
    let (train_set, _) = build_samples(&scale, scale.hidden);
    let pretrained = pretrained_deepseq(&scale, &train_set);

    let netlist = ac97_ctrl();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    let n_pis = netlist.inputs().len();
    let mut rng = StdRng::seed_from_u64(606);

    // Fine-tune both models once on this circuit.
    let size_factor = (6_000.0 / lowered.aig.len() as f64).clamp(0.25, 1.0);
    let ft_workloads = ((scale.ft_workloads as f64 * size_factor).round() as usize).max(2);
    let ft_epochs = ((scale.ft_epochs as f64 * size_factor).round() as usize).max(1);
    let ft_wl: Vec<Workload> = (0..ft_workloads)
        .map(|_| Workload::random(n_pis, &mut rng))
        .collect();
    let ft_samples = finetune_samples(
        &lowered.aig,
        &ft_wl,
        scale.hidden,
        &scale.sim_options(4321),
        88,
    );
    let mut deepseq_ft = pretrained.clone();
    let mut ft_opts = scale.train_options();
    ft_opts.epochs = ft_epochs;
    ft_opts.lr = scale.ft_lr;
    train(&mut deepseq_ft, &ft_samples, &ft_opts);

    let g_samples: Vec<GranniteSample> = ft_wl
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let r = simulate(&lowered.aig, w, &scale.sim_options(4321 + i as u64));
            GranniteSample::new(&lowered.aig, &r.probs)
        })
        .collect();
    let mut grannite = Grannite::new(GranniteConfig {
        hidden_dim: scale.hidden,
        seed: 5,
    });
    train_grannite(
        &mut grannite,
        &g_samples,
        &GranniteTrainOptions {
            epochs: ft_epochs.max(2),
            lr: scale.ft_lr,
            seed: 1,
        },
    );

    // Five unseen workloads W0–W4.
    let pipeline_config = PipelineConfig {
        sim: scale.sim_options(888),
        ..PipelineConfig::default()
    };
    let paper: [(f64, f64, f64); 5] = [
        (26.22, 17.60, 2.74),
        (7.97, 6.93, 3.88),
        (17.73, 2.47, 2.21),
        (13.15, 6.62, 2.69),
        (12.49, 3.49, 1.33),
    ];
    let mut rows = Vec::new();
    let mut errors = (0.0f64, 0.0f64, 0.0f64);
    for (i, paper_row) in paper.iter().enumerate() {
        let workload = Workload::random(n_pis, &mut rng);
        let result = run_pipeline(
            &netlist,
            &workload,
            Some(&grannite),
            Some(&deepseq_ft),
            &pipeline_config,
        );
        let g = result.grannite.expect("grannite supplied");
        let d = result.deepseq.expect("deepseq supplied");
        errors.0 += result.probabilistic.error_pct;
        errors.1 += g.error_pct;
        errors.2 += d.error_pct;
        eprintln!(
            "[table6] W{i}: GT {:.3} mW, prob {:.2}%, grannite {:.2}%, deepseq {:.2}%",
            result.gt_mw, result.probabilistic.error_pct, g.error_pct, d.error_pct
        );
        rows.push(vec![
            format!("W{i}"),
            fmt_mw(result.gt_mw),
            fmt_mw(result.probabilistic.mw),
            fmt_pct(result.probabilistic.error_pct),
            fmt_mw(g.mw),
            fmt_pct(g.error_pct),
            fmt_mw(d.mw),
            fmt_pct(d.error_pct),
            format!("{:.1}/{:.1}/{:.1}", paper_row.0, paper_row.1, paper_row.2),
        ]);
    }
    rows.push(vec![
        "Avg.".into(),
        String::new(),
        String::new(),
        fmt_pct(errors.0 / 5.0),
        String::new(),
        fmt_pct(errors.1 / 5.0),
        String::new(),
        fmt_pct(errors.2 / 5.0),
        "15.5/7.4/2.6".into(),
    ]);

    print_table(
        "Table VI: power estimation on ac97_ctrl with different workloads",
        &[
            "Workload ID",
            "GT (mW)",
            "Prob. (mW)",
            "Error",
            "Grannite (mW)",
            "Error",
            "DeepSeq (mW)",
            "Error",
            "Paper err (P/G/D)",
        ],
        &rows,
    );
    println!("(shape to check: DeepSeq error lowest and stable across workloads)");
}
