//! Criterion benchmarks of the GEMM kernel variants (`deepseq_nn::Kernel`)
//! on the shapes the serving hot path actually sees: per-level gathers times
//! weight matrices, and the fused GRU gate `act(x·W + h·U + b)`.
//!
//! Bench ids carry the `serve_` prefix so `collect_bench` folds them into
//! the committed `BENCH_serve.json` perf trajectory; the PR-3 acceptance
//! criterion (blocked ≥ 1.5× naive on `256×256 · 256×64`) reads
//! `serve_kernel_blocked_256x256x64` against `serve_kernel_naive_256x256x64`
//! there.
//!
//! All products are pinned to a 1-thread pool: these benches isolate
//! kernel arithmetic, so their trajectory must not depend on the
//! measurement host's core count (`perf_threads` owns the scaling story).
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_kernels`

use criterion::{criterion_group, criterion_main, Criterion};
use deepseq_nn::{Act, Kernel, Matrix, Pool};

/// `(m, k, n)` product shapes from the serve path: the acceptance shape, a
/// level-batch × GRU-gate shape (`input_dim = 2d + 4` node types at
/// `d = 32`), and a wide-hidden shape where packing starts to pay.
const SHAPES: [(usize, usize, usize); 3] = [(256, 256, 64), (512, 68, 32), (128, 128, 128)];

fn filled(rows: usize, cols: usize, seed: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f32).sin() * seed + (r as f32 - c as f32) * 0.01
    })
}

fn bench_gemm(c: &mut Criterion) {
    eprintln!(
        "simd acceleration: {}",
        if deepseq_nn::simd_accelerated() {
            "avx2+fma"
        } else {
            "portable fused fallback"
        }
    );
    let serial = Pool::new(1);
    for &(m, k, n) in &SHAPES {
        let a = filled(m, k, 0.6);
        let b = filled(k, n, -0.4);
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Simd]) {
            let mut out = Matrix::default();
            c.bench_function(
                &format!("serve_kernel_{}_{m}x{k}x{n}", kernel.name()),
                |bch| bch.iter(|| kernel.matmul_into_on(&serial, &a, &b, &mut out)),
            );
        }
    }
}

fn bench_fused_gate(c: &mut Criterion) {
    // One GRU gate at serve scale: 256-node level batch, d = 32,
    // input_dim = 2d + 4.
    let (batch, d) = (256, 32);
    let x = filled(batch, 2 * d + 4, 0.5);
    let w = filled(2 * d + 4, d, -0.3);
    let h = filled(batch, d, 0.8);
    let u = filled(d, d, 0.2);
    let bias = filled(1, d, 0.05);
    let serial = Pool::new(1);
    for kernel in Kernel::ALL.into_iter().chain([Kernel::Simd]) {
        let mut out = Matrix::default();
        let mut tmp = Matrix::default();
        c.bench_function(&format!("serve_fused_gate_{}_d{d}", kernel.name()), |bch| {
            bch.iter(|| {
                kernel.matmul_bias_act_on(
                    &serial,
                    &x,
                    &w,
                    Some((&h, &u)),
                    Some(&bias),
                    Act::Sigmoid,
                    &mut out,
                    &mut tmp,
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_fused_gate
}
criterion_main!(benches);
