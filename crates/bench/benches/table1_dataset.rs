//! Table I — statistics of the training dataset.
//!
//! Regenerates the three-family corpus and prints subcircuit counts and
//! node-count mean ± std next to the paper's numbers.
//!
//! Run: `cargo bench -p deepseq-bench --bench table1_dataset`

use deepseq_bench::{print_table, Scale};
use deepseq_data::dataset::{Corpus, Family};

fn main() {
    let scale = Scale::from_env();
    let corpus = Corpus::generate(scale.circuits, 11);
    let stats = corpus.stats();

    let mut rows = Vec::new();
    for (family, stat) in Family::all().iter().zip(&stats) {
        let (paper_mean, paper_std) = family.size_distribution();
        rows.push(vec![
            family.name().to_string(),
            stat.count.to_string(),
            format!("{:.2} ± {:.2}", stat.mean_nodes, stat.std_nodes),
            family.paper_count().to_string(),
            format!("{paper_mean:.2} ± {paper_std:.2}"),
        ]);
    }
    print_table(
        "Table I: statistics of the training dataset",
        &[
            "Benchmark",
            "# Subcircuits",
            "# Nodes (avg ± std)",
            "Paper #",
            "Paper nodes",
        ],
        &rows,
    );
    println!(
        "(counts scaled to {} total circuits; distributions match Table I; \
         set DEEPSEQ_SCALE=full for paper-scale counts)",
        corpus.len()
    );
}
