//! Section VI runtime claim — DeepSeq inference vs. parallel logic
//! simulation.
//!
//! The paper notes that DeepSeq is "3× to 4× slower than the commercial
//! simulation tool that employs many parallelization techniques ... because
//! DeepSeq performs the message passing in a levelized, sequential manner".
//! This harness measures both on every test design: the 64-lane bit-parallel
//! simulator (standing in for the parallel commercial tool) against model
//! inference, and prints the slowdown ratio.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_runtime`

use std::time::Instant;

use deepseq_bench::{print_table, Scale};
use deepseq_core::encoding::initial_states;
use deepseq_core::{CircuitGraph, DeepSeq};
use deepseq_data::designs::all_designs;
use deepseq_netlist::lower_to_aig;
use deepseq_sim::{simulate, Workload};

fn main() {
    let scale = Scale::from_env();
    let config = scale.config(
        deepseq_core::Aggregator::DualAttention,
        deepseq_core::PropagationScheme::Custom,
    );
    let model = DeepSeq::new(config);
    // ≈ the paper's 10 000-cycle workload (157 bit-parallel cycles × 64).
    let sim_opts = deepseq_sim::SimOptions {
        cycles: 157,
        warmup: 8,
        seed: 0,
    };

    let mut rows = Vec::new();
    for netlist in all_designs() {
        let lowered = lower_to_aig(&netlist).expect("designs are valid");
        let aig = &lowered.aig;
        let workload = Workload::uniform(aig.num_pis(), 0.5);

        let t0 = Instant::now();
        let _sim = simulate(aig, &workload, &sim_opts);
        let sim_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let graph = CircuitGraph::build(aig);
        let h0 = initial_states(aig, &workload, config.hidden_dim, 0);
        let _preds = model.predict(&graph, &h0);
        let infer_time = t1.elapsed().as_secs_f64();

        rows.push(vec![
            netlist.name().to_string(),
            aig.len().to_string(),
            format!("{:.1} ms", sim_time * 1e3),
            format!("{:.1} ms", infer_time * 1e3),
            format!("{:.1}x", infer_time / sim_time.max(1e-9)),
        ]);
    }
    print_table(
        "Runtime: DeepSeq inference vs. parallel logic simulation (Section VI)",
        &[
            "Design",
            "# Nodes",
            "Simulation (10k cycles)",
            "DeepSeq inference",
            "Slowdown",
        ],
        &rows,
    );
    println!(
        "(paper reports 3–4× slower than a commercial parallel simulator; \
         levelized sequential message passing is the bottleneck in both cases)"
    );
}
