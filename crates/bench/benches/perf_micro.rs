//! Criterion micro-benchmarks of the substrate crates: simulation
//! throughput, graph preprocessing, AIG lowering, autograd forward/backward
//! and the dual-attention aggregation. These back the engineering claims in
//! DESIGN.md and catch performance regressions.
//!
//! Run: `cargo bench -p deepseq-bench --bench perf_micro`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepseq_core::encoding::initial_states;
use deepseq_core::train::{train, TrainOptions, TrainSample};
use deepseq_core::{CircuitGraph, DeepSeq, DeepSeqConfig};
use deepseq_data::designs::ptc;
use deepseq_data::random::{random_circuit, CircuitSpec};
use deepseq_netlist::{lower_to_aig, Levels};
use deepseq_nn::Matrix;
use deepseq_sim::{simulate, SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulation(c: &mut Criterion) {
    let netlist = ptc();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    let workload = Workload::uniform(lowered.aig.num_pis(), 0.5);
    let opts = SimOptions {
        cycles: 64,
        warmup: 4,
        seed: 0,
    };
    c.bench_function("simulate_ptc_64cycles_x64lanes", |b| {
        b.iter(|| simulate(&lowered.aig, &workload, &opts))
    });
}

fn bench_lowering(c: &mut Criterion) {
    let netlist = ptc();
    c.bench_function("lower_ptc_to_aig", |b| b.iter(|| lower_to_aig(&netlist)));
}

fn bench_levelization(c: &mut Criterion) {
    let netlist = ptc();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    c.bench_function("levelize_ptc", |b| b.iter(|| Levels::build(&lowered.aig)));
}

fn bench_graph_build(c: &mut Criterion) {
    let netlist = ptc();
    let lowered = lower_to_aig(&netlist).expect("valid design");
    c.bench_function("circuit_graph_build_ptc", |b| {
        b.iter(|| CircuitGraph::build(&lowered.aig))
    });
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let aig = random_circuit("m", &CircuitSpec::default(), &mut rng);
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let model = DeepSeq::new(config);
    let graph = CircuitGraph::build(&aig);
    let workload = Workload::uniform(aig.num_pis(), 0.5);
    let h0 = initial_states(&aig, &workload, 32, 0);
    c.bench_function("deepseq_inference_200node_d32_t4", |b| {
        b.iter(|| model.predict(&graph, &h0))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let aig = random_circuit("m", &CircuitSpec::default(), &mut rng);
    let config = DeepSeqConfig {
        hidden_dim: 32,
        iterations: 4,
        ..DeepSeqConfig::default()
    };
    let workload = Workload::uniform(aig.num_pis(), 0.5);
    let sample = TrainSample::generate(
        &aig,
        &workload,
        32,
        &SimOptions {
            cycles: 64,
            warmup: 4,
            seed: 0,
        },
        0,
    );
    c.bench_function("deepseq_train_step_200node_d32_t4", |b| {
        b.iter_batched(
            || DeepSeq::new(config),
            |mut model| {
                train(
                    &mut model,
                    std::slice::from_ref(&sample),
                    &TrainOptions {
                        epochs: 1,
                        ..TrainOptions::default()
                    },
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(128, 64, |r, col| ((r * 7 + col) % 13) as f32 * 0.1);
    let b = Matrix::from_fn(64, 64, |r, col| ((r + col * 3) % 17) as f32 * 0.1);
    c.bench_function("matmul_128x64x64", |bch| bch.iter(|| a.matmul(&b)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_lowering, bench_levelization,
              bench_graph_build, bench_inference, bench_train_step, bench_matmul
}
criterion_main!(benches);
