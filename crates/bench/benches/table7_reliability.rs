//! Table VII — reliability analysis on the six large test designs.
//!
//! Ground truth comes from Monte-Carlo fault injection (0.05 % error rate;
//! paper: 1 000 patterns × 100 cycles). The analytical baseline [32] and a
//! DeepSeq model fine-tuned on the Table I corpus (with error-probability
//! supervision, Section V-B1) are compared on circuit reliability.
//!
//! Expected shape (paper): analytical ≈ 2.7% avg error, DeepSeq ≈ 0.3%.
//!
//! Run: `cargo bench -p deepseq-bench --bench table7_reliability`

use std::time::Instant;

use deepseq_bench::{build_samples, fmt_pct, pretrained_deepseq, print_table, Scale};
use deepseq_core::train::{train, TrainSample};
use deepseq_data::dataset::Corpus;
use deepseq_data::designs::all_designs;
use deepseq_netlist::lower_to_aig;
use deepseq_power::percent_error;
use deepseq_reliability::{analyze, predict_reliability, reliability_sample, AnalyticalOptions};
use deepseq_sim::{inject_faults, FaultOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table7] scale: {scale:?}");
    let (train_set, _) = build_samples(&scale, scale.hidden);
    let pretrained = pretrained_deepseq(&scale, &train_set);

    // Fine-tune on the Table I corpus with fault-injection labels.
    let corpus = Corpus::generate(scale.circuits, 11);
    let fault_opts = FaultOptions {
        error_rate: 0.0005,
        patterns: 512,
        cycles_per_pattern: 100,
        seed: 3,
    };
    let mut rng = StdRng::seed_from_u64(71);
    let ft_start = Instant::now();
    let ft_samples: Vec<TrainSample> = corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let w = Workload::random(aig.num_pis(), &mut rng);
            reliability_sample(aig, &w, &fault_opts, scale.hidden, 500 + i as u64)
        })
        .collect();
    let mut model = pretrained.clone();
    let mut ft_opts = scale.train_options();
    ft_opts.epochs = scale.ft_epochs.max(2);
    ft_opts.lr = scale.ft_lr;
    train(&mut model, &ft_samples, &ft_opts);
    eprintln!(
        "[table7] reliability fine-tuning on {} circuits in {:.1}s",
        ft_samples.len(),
        ft_start.elapsed().as_secs_f64()
    );

    let paper: &[(&str, f64, f64, f64)] = &[
        ("noc_router", 0.9876, 2.72, 0.63),
        ("pll", 0.9792, 3.95, 0.35),
        ("ptc", 0.9970, 3.15, 0.42),
        ("rtcclock", 0.9985, 1.73, 0.16),
        ("ac97_ctrl", 0.9953, 2.50, 0.10),
        ("mem_ctrl", 0.9958, 1.92, 0.22),
    ];

    let mut rows = Vec::new();
    let mut err_analytical = 0.0f64;
    let mut err_deepseq = 0.0f64;
    let designs = all_designs();
    for netlist in &designs {
        let start = Instant::now();
        let lowered = lower_to_aig(netlist).expect("designs are valid");
        let mut w_rng = StdRng::seed_from_u64(77);
        let workload = Workload::random(netlist.inputs().len(), &mut w_rng);

        let gt = inject_faults(&lowered.aig, &workload, &fault_opts);
        let analytical = analyze(
            &lowered.aig,
            &workload,
            &AnalyticalOptions {
                error_rate: fault_opts.error_rate,
                ..AnalyticalOptions::default()
            },
        );
        let prediction = predict_reliability(&model, &lowered.aig, &workload, 42);

        let e_a = percent_error(analytical.output_reliability, gt.output_reliability);
        let e_d = percent_error(prediction.output_reliability, gt.output_reliability);
        err_analytical += e_a;
        err_deepseq += e_d;
        let paper_row = paper
            .iter()
            .find(|(n, _, _, _)| *n == netlist.name())
            .copied()
            .unwrap_or((netlist.name(), 0.0, 0.0, 0.0));
        eprintln!(
            "[table7] {}: GT {:.4}, analytical {:.4} ({:.2}%), deepseq {:.4} ({:.2}%) ({:.0}s)",
            netlist.name(),
            gt.output_reliability,
            analytical.output_reliability,
            e_a,
            prediction.output_reliability,
            e_d,
            start.elapsed().as_secs_f64()
        );
        rows.push(vec![
            netlist.name().to_string(),
            format!("{:.4}", gt.output_reliability),
            format!("{:.4}", analytical.output_reliability),
            fmt_pct(e_a),
            format!("{:.4}", prediction.output_reliability),
            fmt_pct(e_d),
            format!("{:.4}/{:.1}%/{:.1}%", paper_row.1, paper_row.2, paper_row.3),
        ]);
    }
    let n = designs.len() as f64;
    rows.push(vec![
        "Avg.".into(),
        String::new(),
        String::new(),
        fmt_pct(err_analytical / n),
        String::new(),
        fmt_pct(err_deepseq / n),
        "-/2.7%/0.3%".into(),
    ]);

    print_table(
        "Table VII: reliability analysis on 6 large-scale circuits",
        &[
            "Design Name",
            "GT",
            "Probabilistic",
            "Error",
            "DeepSeq",
            "Error",
            "Paper (GT/P/D)",
        ],
        &rows,
    );
    println!("(shape to check: fine-tuned DeepSeq closer to GT than the analytical method)");
}
