//! Shared harness utilities for the table-regeneration benches.
//!
//! Every table and figure of the paper has a `[[bench]]` target (run
//! `cargo bench -p deepseq-bench`), so the whole evaluation regenerates
//! from one command. Because the original experiments trained for days on
//! GPUs, each harness is **scaled** by default and scalable via environment
//! variables:
//!
//! | Variable | Effect |
//! |---|---|
//! | `DEEPSEQ_SCALE` | `smoke`, `default` or `full` preset |
//! | `DEEPSEQ_CIRCUITS` | total pre-training circuits |
//! | `DEEPSEQ_EPOCHS` | pre-training epochs |
//! | `DEEPSEQ_HIDDEN` | hidden dimension |
//! | `DEEPSEQ_T` | propagation iterations |
//! | `DEEPSEQ_SIM_CYCLES` | simulation cycles per workload |
//! | `DEEPSEQ_FT_WORKLOADS` | fine-tuning workloads per design |
//! | `DEEPSEQ_FT_EPOCHS` | fine-tuning epochs |
//! | `DEEPSEQ_FT_LR` | fine-tuning learning rate |
//!
//! The `full` preset reproduces the paper's settings (d=64, T=10,
//! 50 epochs, 10 534 circuits, 1 000 fine-tuning workloads) and is intended
//! for long unattended runs.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use deepseq_core::train::{train, TrainOptions, TrainSample};
use deepseq_core::{DeepSeq, DeepSeqConfig};
use deepseq_data::dataset::Corpus;
use deepseq_sim::{SimOptions, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment scale knobs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Total pre-training circuits across the three families.
    pub circuits: usize,
    /// Pre-training epochs.
    pub epochs: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Propagation iterations `T`.
    pub iterations: usize,
    /// Simulation cycles per workload (64 lanes each).
    pub sim_cycles: usize,
    /// Fine-tuning workloads per test design.
    pub ft_workloads: usize,
    /// Fine-tuning epochs.
    pub ft_epochs: usize,
    /// Learning rate for (pre-)training.
    pub lr: f32,
    /// Learning rate for per-design fine-tuning (downstream tasks need to
    /// adapt quickly within a small step budget).
    pub ft_lr: f32,
}

impl Scale {
    /// Tiny settings for CI smoke runs (seconds).
    pub fn smoke() -> Self {
        Scale {
            circuits: 9,
            epochs: 2,
            hidden: 8,
            iterations: 2,
            sim_cycles: 64,
            ft_workloads: 2,
            ft_epochs: 1,
            lr: 3e-3,
            ft_lr: 5e-3,
        }
    }

    /// CPU-budget default (minutes per table).
    pub fn default_scale() -> Self {
        Scale {
            circuits: 160,
            epochs: 40,
            hidden: 24,
            iterations: 3,
            sim_cycles: 160,
            ft_workloads: 12,
            ft_epochs: 25,
            lr: 2e-3,
            ft_lr: 2e-2,
        }
    }

    /// The paper's settings (days of CPU time).
    pub fn full() -> Self {
        Scale {
            circuits: 10_534,
            epochs: 50,
            hidden: 64,
            iterations: 10,
            sim_cycles: 157, // 157 × 64 lanes ≈ the paper's 10 000 cycles
            ft_workloads: 1_000,
            ft_epochs: 50,
            lr: 1e-4,
            ft_lr: 1e-4,
        }
    }

    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        let mut scale = match env::var("DEEPSEQ_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("full") => Scale::full(),
            _ => Scale::default_scale(),
        };
        let read = |key: &str| -> Option<usize> { env::var(key).ok()?.parse().ok() };
        if let Some(v) = read("DEEPSEQ_CIRCUITS") {
            scale.circuits = v;
        }
        if let Some(v) = read("DEEPSEQ_EPOCHS") {
            scale.epochs = v;
        }
        if let Some(v) = read("DEEPSEQ_HIDDEN") {
            scale.hidden = v;
        }
        if let Some(v) = read("DEEPSEQ_T") {
            scale.iterations = v;
        }
        if let Some(v) = read("DEEPSEQ_SIM_CYCLES") {
            scale.sim_cycles = v;
        }
        if let Some(v) = read("DEEPSEQ_FT_WORKLOADS") {
            scale.ft_workloads = v;
        }
        if let Some(v) = read("DEEPSEQ_FT_EPOCHS") {
            scale.ft_epochs = v;
        }
        if let Ok(v) = env::var("DEEPSEQ_FT_LR") {
            if let Ok(v) = v.parse() {
                scale.ft_lr = v;
            }
        }
        scale
    }

    /// Model configuration at this scale for a given aggregator/scheme.
    pub fn config(
        &self,
        aggregator: deepseq_core::Aggregator,
        scheme: deepseq_core::PropagationScheme,
    ) -> DeepSeqConfig {
        DeepSeqConfig {
            hidden_dim: self.hidden,
            iterations: self.iterations,
            aggregator,
            scheme,
            seed: 7,
        }
    }

    /// Simulation options at this scale.
    pub fn sim_options(&self, seed: u64) -> SimOptions {
        SimOptions {
            cycles: self.sim_cycles,
            warmup: (self.sim_cycles / 10).max(4),
            seed,
        }
    }

    /// Training options at this scale.
    pub fn train_options(&self) -> TrainOptions {
        TrainOptions {
            epochs: self.epochs,
            lr: self.lr,
            ..TrainOptions::default()
        }
    }
}

/// Generates the pre-training corpus and simulated samples at a scale.
/// Returns `(train, test)` split 85/15 as in the evaluation protocol.
pub fn build_samples(scale: &Scale, hidden_dim: usize) -> (Vec<TrainSample>, Vec<TrainSample>) {
    let corpus = Corpus::generate(scale.circuits, 11);
    let mut rng = StdRng::seed_from_u64(13);
    let samples: Vec<TrainSample> = corpus
        .circuits()
        .iter()
        .enumerate()
        .map(|(i, aig)| {
            let workload = Workload::random(aig.num_pis(), &mut rng);
            TrainSample::generate(
                aig,
                &workload,
                hidden_dim,
                &scale.sim_options(100 + i as u64),
                200 + i as u64,
            )
        })
        .collect();
    deepseq_core::train_test_split(samples, 0.15, 17)
}

/// Cache key for the pre-trained checkpoint at a scale. Anchored at the
/// workspace `target/` directory regardless of the bench CWD.
fn cache_path(scale: &Scale) -> PathBuf {
    let dir = match env::var("CARGO_TARGET_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
    }
    .join("deepseq_cache");
    let _ = fs::create_dir_all(&dir);
    dir.join(format!(
        "pretrained_h{}_t{}_c{}_e{}.txt",
        scale.hidden, scale.iterations, scale.circuits, scale.epochs
    ))
}

/// Returns a pre-trained DeepSeq model at this scale, training (and caching
/// a checkpoint under `target/deepseq_cache/`) on first use.
pub fn pretrained_deepseq(scale: &Scale, samples: &[TrainSample]) -> DeepSeq {
    let path = cache_path(scale);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(model) = DeepSeq::from_checkpoint(&text) {
            eprintln!(
                "[deepseq-bench] loaded cached checkpoint {}",
                path.display()
            );
            return model;
        }
    }
    let config = scale.config(
        deepseq_core::Aggregator::DualAttention,
        deepseq_core::PropagationScheme::Custom,
    );
    let mut model = DeepSeq::new(config);
    let start = Instant::now();
    train(&mut model, samples, &scale.train_options());
    eprintln!(
        "[deepseq-bench] pre-trained DeepSeq on {} circuits × {} epochs in {:.1}s",
        samples.len(),
        scale.epochs,
        start.elapsed().as_secs_f64()
    );
    let _ = fs::write(&path, model.save_to_string());
    model
}

/// Prints a formatted table row list with a title banner (the harnesses all
/// report in the paper's row format).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("=== {title} ===");
    // Column widths.
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, width) in widths.iter_mut().enumerate().take(cols) {
            if let Some(cell) = row.get(c) {
                *width = (*width).max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    println!();
}

/// Formats a probability-scale error.
pub fn fmt_pe(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Formats milliwatts.
pub fn fmt_mw(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_defaults() {
        let s = Scale::default_scale();
        assert!(s.circuits > 0 && s.epochs > 0);
        let full = Scale::full();
        assert_eq!(full.hidden, 64);
        assert_eq!(full.iterations, 10);
        assert_eq!(full.circuits, 10_534);
    }

    #[test]
    fn build_samples_split() {
        let s = Scale::smoke();
        let (train, test) = build_samples(&s, s.hidden);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pe(0.028), "0.028");
        assert_eq!(fmt_pct(16.349), "16.35%");
        assert_eq!(fmt_mw(0.6531), "0.653");
    }
}
