//! Collects `target/criterion/*/estimates.json` into one perf-trajectory
//! file (default `BENCH_serve.json`), so CI runs and local runs produce a
//! single committed-artifact snapshot instead of a directory tree.
//!
//! ```text
//! cargo run -p deepseq-bench --bin collect_bench -- \
//!     [--criterion-dir target/criterion] [--filter serve_] [--out BENCH_serve.json]
//! ```
//!
//! Each matching benchmark's `estimates.json` is already a JSON object
//! (`id`, `unit`, `mean`, `median`, `min`, `max`, …), so the output simply
//! embeds them verbatim under their benchmark ids, sorted for stable diffs.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut criterion_dir = PathBuf::from("target/criterion");
    let mut filter = String::from("serve_");
    let mut out_path = PathBuf::from("BENCH_serve.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--criterion-dir" => match it.next() {
                Some(v) => criterion_dir = PathBuf::from(v),
                None => return usage("--criterion-dir needs a value"),
            },
            "--filter" => match it.next() {
                Some(v) => filter = v.clone(),
                None => return usage("--filter needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut entries: Vec<(String, String)> = Vec::new();
    let dir = match fs::read_dir(&criterion_dir) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!(
                "error: cannot read {} ({e}); run `cargo bench` first",
                criterion_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with(&filter) {
            continue;
        }
        let estimates = entry.path().join("estimates.json");
        match fs::read_to_string(&estimates) {
            Ok(content) => entries.push((name, content.trim().to_string())),
            Err(_) => eprintln!("warning: {} has no estimates.json, skipped", name),
        }
    }
    entries.sort();

    if entries.is_empty() {
        eprintln!(
            "error: no benchmarks matching `{filter}*` under {}",
            criterion_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut json = String::from("{\n  \"schema\": \"deepseq-bench v1\",\n  \"benches\": {\n");
    for (i, (name, content)) in entries.iter().enumerate() {
        let indented = content.replace('\n', "\n    ");
        json.push_str(&format!("    \"{name}\": {indented}"));
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!("error: writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!(
        "wrote {} ({} benches matching `{filter}*`)",
        out_path.display(),
        entries.len()
    );
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "error: {msg}\nusage: collect_bench [--criterion-dir DIR] [--filter PREFIX] [--out FILE]"
    );
    ExitCode::from(1)
}
