//! Collects `target/criterion/*/estimates.json` into one perf-trajectory
//! file (default `BENCH_serve.json`) and regenerates the README bench table
//! from it, so CI runs, local runs and the committed docs all read from a
//! single snapshot instead of a directory tree or hand-copied numbers.
//!
//! ```text
//! # fold criterion estimates into the snapshot
//! cargo run -p deepseq-bench --bin collect_bench -- \
//!     [--criterion-dir target/criterion] [--filter serve_] [--out BENCH_serve.json]
//!
//! # rewrite the generated table in README.md from the snapshot
//! cargo run -p deepseq-bench --bin collect_bench -- --readme [README.md]
//! ```
//!
//! Each matching benchmark's `estimates.json` is already a JSON object
//! (`id`, `unit`, `mean`, `median`, `min`, `max`, …), so the output embeds
//! them verbatim under their benchmark ids, sorted for stable diffs. A
//! `derived` section adds the ratios the acceptance criteria and the README
//! table read: tape → tape-free speedup per design, naive →
//! blocked/packed/simd kernel speedup per GEMM shape and for the fused GRU
//! gate, full-recompute → cone-memo speedup on near-duplicate circuits
//! (`cone_speedup_*`), the 1-shard → N-shard routed-hit ratio
//! (`shard_hit_ratio_s<N>_*`), and the
//! 1-thread → N-thread speedups of the `perf_threads` and `perf_train`
//! entries (`serve_mt_<what>_t<N>_<rest>` → `mt_speedup_<what>_t<N>_<rest>`,
//! `serve_train_<what>_t<N>_<rest>` → `train_speedup_<what>_t<N>_<rest>`).
//!
//! `--readme` replaces everything between the `<!-- bench-table:begin -->`
//! and `<!-- bench-table:end -->` markers with a table generated from the
//! snapshot; it touches nothing else in the file.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// Marker opening the generated README section.
const TABLE_BEGIN: &str = "<!-- bench-table:begin -->";
/// Marker closing the generated README section.
const TABLE_END: &str = "<!-- bench-table:end -->";

fn main() -> ExitCode {
    let mut criterion_dir = PathBuf::from("target/criterion");
    let mut filter = String::from("serve_");
    let mut out_path = PathBuf::from("BENCH_serve.json");
    let mut readme_path: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--criterion-dir" => match it.next() {
                Some(v) => criterion_dir = PathBuf::from(v),
                None => return usage("--criterion-dir needs a value"),
            },
            "--filter" => match it.next() {
                Some(v) => filter = v.clone(),
                None => return usage("--filter needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            "--readme" => {
                let next_is_value = it.peek().is_some_and(|v| !v.starts_with("--"));
                readme_path = Some(if next_is_value {
                    PathBuf::from(it.next().expect("peeked"))
                } else {
                    PathBuf::from("README.md")
                });
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(readme) = readme_path {
        return regenerate_readme(&out_path, &readme);
    }
    collect(&criterion_dir, &filter, &out_path)
}

fn collect(criterion_dir: &PathBuf, filter: &str, out_path: &PathBuf) -> ExitCode {
    let mut entries: Vec<(String, String)> = Vec::new();
    let dir = match fs::read_dir(criterion_dir) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!(
                "error: cannot read {} ({e}); run `cargo bench` first",
                criterion_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with(filter) {
            continue;
        }
        let estimates = entry.path().join("estimates.json");
        match fs::read_to_string(&estimates) {
            Ok(content) => entries.push((name, content.trim().to_string())),
            Err(_) => eprintln!("warning: {} has no estimates.json, skipped", name),
        }
    }
    entries.sort();

    if entries.is_empty() {
        eprintln!(
            "error: no benchmarks matching `{filter}*` under {}",
            criterion_dir.display()
        );
        return ExitCode::from(2);
    }

    let means: Vec<(String, f64)> = entries
        .iter()
        .filter_map(|(name, content)| extract_number(content, "mean").map(|m| (name.clone(), m)))
        .collect();
    let derived = derive_speedups(&means);

    let mut json = String::from("{\n  \"schema\": \"deepseq-bench v1\",\n  \"benches\": {\n");
    for (i, (name, content)) in entries.iter().enumerate() {
        let indented = content.replace('\n', "\n    ");
        json.push_str(&format!("    \"{name}\": {indented}"));
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n  \"derived\": {\n");
    for (i, (name, value)) in derived.iter().enumerate() {
        json.push_str(&format!("    \"{name}\": {value:.3}"));
        json.push_str(if i + 1 < derived.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    if let Err(e) = fs::write(out_path, &json) {
        eprintln!("error: writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!(
        "wrote {} ({} benches matching `{filter}*`, {} derived ratios)",
        out_path.display(),
        entries.len(),
        derived.len()
    );
    ExitCode::SUCCESS
}

/// Speedup ratios between related benchmark ids, from their means.
fn derive_speedups(means: &[(String, f64)]) -> Vec<(String, f64)> {
    let mean_of = |id: &str| -> Option<f64> {
        means
            .iter()
            .find(|(name, _)| name == id)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let mut out = Vec::new();
    for (name, mean) in means {
        if *mean <= 0.0 {
            continue;
        }
        // Tape → tape-free (serving-default kernel), per design tag.
        if let Some(tag) = name.strip_prefix("serve_tapefree_forward_") {
            if let Some(tape) = mean_of(&format!("serve_tape_forward_{tag}")) {
                out.push((format!("tapefree_speedup_{tag}"), tape / mean));
            }
        }
        // Naive → blocked/packed/simd GEMM, per shape.
        for kernel in ["blocked", "packed", "simd"] {
            if let Some(rest) = name.strip_prefix(&format!("serve_kernel_{kernel}_")) {
                if let Some(naive) = mean_of(&format!("serve_kernel_naive_{rest}")) {
                    out.push((format!("kernel_speedup_{kernel}_{rest}"), naive / mean));
                }
            }
            if let Some(rest) = name.strip_prefix(&format!("serve_fused_gate_{kernel}_")) {
                if let Some(naive) = mean_of(&format!("serve_fused_gate_naive_{rest}")) {
                    out.push((format!("fused_gate_speedup_{kernel}_{rest}"), naive / mean));
                }
            }
            if let Some(rest) = name.strip_prefix(&format!("serve_tapefree_{kernel}_")) {
                if let Some(naive) = mean_of(&format!("serve_tapefree_naive_{rest}")) {
                    out.push((
                        format!("tapefree_kernel_speedup_{kernel}_{rest}"),
                        naive / mean,
                    ));
                }
            }
        }
        // Full recompute → cone-memo near-duplicate, per fixture.
        if let Some(rest) = name.strip_prefix("serve_cone_hit_") {
            if let Some(full) = mean_of(&format!("serve_cone_full_{rest}")) {
                out.push((format!("cone_speedup_{rest}"), full / mean));
            }
        }
        // 1-shard → N-shard routed cache hit (routing overhead; ~1.0×).
        if let Some(rest) = name.strip_prefix("serve_shard_hit_s") {
            if let Some((shards, tail)) = rest.split_once('_') {
                if shards != "1" {
                    if let Some(s1) = mean_of(&format!("serve_shard_hit_s1_{tail}")) {
                        out.push((format!("shard_hit_ratio_s{shards}_{tail}"), s1 / mean));
                    }
                }
            }
        }
        // 1-thread → N-thread, per perf_threads / perf_train entry.
        for (prefix, ratio_prefix) in [
            ("serve_mt_", "mt_speedup_"),
            ("serve_train_", "train_speedup_"),
        ] {
            if let Some((what, threads, rest)) = split_threaded_id(name, prefix) {
                if threads != 1 {
                    if let Some(t1) = mean_of(&format!("{prefix}{what}_t1_{rest}")) {
                        out.push((format!("{ratio_prefix}{what}_t{threads}_{rest}"), t1 / mean));
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Splits a `<prefix><what>_t<N>_<rest>` bench id into its parts; `None`
/// for ids of any other family.
fn split_threaded_id<'a>(name: &'a str, prefix: &str) -> Option<(&'a str, usize, &'a str)> {
    let body = name.strip_prefix(prefix)?;
    let (what, tail) = body.split_once("_t")?;
    let (digits, rest) = tail.split_once('_')?;
    let threads: usize = digits.parse().ok()?;
    Some((what, threads, rest))
}

fn regenerate_readme(snapshot: &PathBuf, readme: &PathBuf) -> ExitCode {
    let json = match fs::read_to_string(snapshot) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: cannot read {} ({e}); run the collect step first",
                snapshot.display()
            );
            return ExitCode::from(2);
        }
    };
    let benches = parse_benches(&json);
    let derived = parse_derived(&json);
    if benches.is_empty() {
        eprintln!("error: no benches found in {}", snapshot.display());
        return ExitCode::from(2);
    }

    let mut table = String::new();
    table.push_str(TABLE_BEGIN);
    table.push_str(
        "\n<!-- Generated from BENCH_serve.json by\n     \
         `cargo run -p deepseq-bench --bin collect_bench -- --readme`.\n     \
         Do not edit by hand: rerun the benches + collect step instead. -->\n",
    );
    table.push_str("\n| benchmark | mean/iter |\n|---|---:|\n");
    for (name, mean) in &benches {
        table.push_str(&format!("| `{name}` | {} |\n", format_ns(*mean)));
    }
    if !derived.is_empty() {
        table.push_str("\n| derived ratio | speedup |\n|---|---:|\n");
        for (name, value) in &derived {
            table.push_str(&format!("| `{name}` | {value:.2}× |\n"));
        }
    }
    table.push_str(TABLE_END);

    let content = match fs::read_to_string(readme) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {} ({e})", readme.display());
            return ExitCode::from(2);
        }
    };
    let (Some(begin), Some(end)) = (content.find(TABLE_BEGIN), content.find(TABLE_END)) else {
        eprintln!(
            "error: {} lacks the `{TABLE_BEGIN}` / `{TABLE_END}` markers",
            readme.display()
        );
        return ExitCode::from(2);
    };
    if end < begin {
        eprintln!("error: bench-table markers are out of order");
        return ExitCode::from(2);
    }
    let mut updated = String::with_capacity(content.len());
    updated.push_str(&content[..begin]);
    updated.push_str(&table);
    updated.push_str(&content[end + TABLE_END.len()..]);
    if let Err(e) = fs::write(readme, &updated) {
        eprintln!("error: writing {}: {e}", readme.display());
        return ExitCode::from(2);
    }
    println!(
        "updated {} ({} bench rows, {} derived ratios)",
        readme.display(),
        benches.len(),
        derived.len()
    );
    ExitCode::SUCCESS
}

/// Extracts `(id, mean)` pairs from the snapshot's `benches` section by
/// scanning for the `"id"`/`"mean"` fields this tool itself wrote — no JSON
/// dependency needed for a format we control end to end.
fn parse_benches(json: &str) -> Vec<(String, f64)> {
    let body = match json.find("\"benches\"") {
        Some(at) => &json[at..],
        None => return Vec::new(),
    };
    let body = body
        .find("\"derived\"")
        .map_or(body, |derived_at| &body[..derived_at]);
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(at) = rest.find("\"id\": \"") {
        rest = &rest[at + 7..];
        let Some(name_end) = rest.find('"') else {
            break;
        };
        let name = rest[..name_end].to_string();
        if let Some(mean) = extract_number(rest, "mean") {
            out.push((name, mean));
        }
    }
    out
}

/// Extracts `(name, value)` pairs from the snapshot's `derived` section.
fn parse_derived(json: &str) -> Vec<(String, f64)> {
    let Some(at) = json.find("\"derived\"") else {
        return Vec::new();
    };
    let body = &json[at..];
    let Some(open) = body.find('{') else {
        return Vec::new();
    };
    let Some(close) = body.find('}') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in body[open + 1..close].lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Finds `"field": <number>` after the current position and parses it.
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)?;
    let rest = json[at + key.len()..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Human-readable duration from nanoseconds.
fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "error: {msg}\nusage: collect_bench [--criterion-dir DIR] [--filter PREFIX] [--out FILE]\n       collect_bench --readme [README] [--out SNAPSHOT]"
    );
    ExitCode::from(1)
}
