//! Internal probe: fine-tuning strength vs. power-estimation error on one
//! design. Used to calibrate the default scale; not part of the evaluation.
//!
//! Run: `cargo run --release -p deepseq-bench --bin probe_ft [design] [workloads] [epochs] [lr]`

use deepseq_bench::Scale;
use deepseq_core::train::{train, TrainOptions};
use deepseq_core::DeepSeq;
use deepseq_data::designs::design_by_name;
use deepseq_netlist::lower_to_aig;
use deepseq_power::{finetune_samples, run_pipeline, PipelineConfig};
use deepseq_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let design = args.get(1).map(String::as_str).unwrap_or("ptc");
    let workloads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let epochs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);
    let lr: f32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8e-3);

    let scale = Scale::from_env();
    let netlist = design_by_name(design).expect("known design");
    let lowered = lower_to_aig(&netlist).unwrap();
    let n_pis = netlist.inputs().len();
    println!(
        "probe: {design} ({} nodes), {workloads} workloads × {epochs} epochs, lr {lr}",
        lowered.aig.len()
    );

    let mut rng = StdRng::seed_from_u64(99);
    let ft_wl: Vec<Workload> = (0..workloads)
        .map(|_| Workload::random(n_pis, &mut rng))
        .collect();
    let t0 = Instant::now();
    let ft = finetune_samples(&lowered.aig, &ft_wl, scale.hidden, &scale.sim_options(1), 7);
    println!("label generation: {:.1}s", t0.elapsed().as_secs_f64());

    let mut model = if args.get(5).map(String::as_str) == Some("pretrained") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/deepseq_cache/pretrained_h24_t3_c160_e40.txt"
        );
        let text = std::fs::read_to_string(path).expect("cached checkpoint");
        println!("starting from pretrained checkpoint");
        DeepSeq::from_checkpoint(&text).expect("valid checkpoint")
    } else {
        DeepSeq::new(scale.config(
            deepseq_core::Aggregator::DualAttention,
            deepseq_core::PropagationScheme::Custom,
        ))
    };
    let t1 = Instant::now();
    let history = train(
        &mut model,
        &ft,
        &TrainOptions {
            epochs,
            lr,
            ..TrainOptions::default()
        },
    );
    println!(
        "fine-tune: {:.1}s, loss {:.4} -> {:.4}",
        t1.elapsed().as_secs_f64(),
        history.first().map(|e| e.loss).unwrap_or(0.0),
        history.last().map(|e| e.loss).unwrap_or(0.0)
    );

    let test_workload = Workload::random(n_pis, &mut rng);
    let result = run_pipeline(
        &netlist,
        &test_workload,
        None,
        Some(&model),
        &PipelineConfig {
            sim: scale.sim_options(2),
            ..PipelineConfig::default()
        },
    );
    println!(
        "GT {:.4} mW | probabilistic {:.4} mW ({:.2}%) | deepseq {:.4} mW ({:.2}%)",
        result.gt_mw,
        result.probabilistic.mw,
        result.probabilistic.error_pct,
        result.deepseq.as_ref().unwrap().mw,
        result.deepseq.as_ref().unwrap().error_pct
    );
}
