//! Property-based tests for the reliability crate: analytical estimates
//! must be bounded, monotone in the error rate, and agree with Monte-Carlo
//! ground truth within sampling tolerance on independent structures.

use deepseq_netlist::{NodeId, SeqAig};
use deepseq_reliability::{analyze, AnalyticalOptions};
use deepseq_sim::{inject_faults, FaultOptions, Workload};
use proptest::prelude::*;

fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..5, 0usize..4, 1usize..25, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                aig.add_not(NodeId(next(len) as u32));
            } else {
                aig.add_and(NodeId(next(len) as u32), NodeId(next(len) as u32));
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            aig.connect_ff(ff, NodeId(next(len) as u32)).unwrap();
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

fn opts(rate: f64) -> AnalyticalOptions {
    AnalyticalOptions {
        error_rate: rate,
        ..AnalyticalOptions::default()
    }
}

/// Feed-forward variant (no FFs): the analytical method is only
/// well-behaved without feedback — free-running FF loops drive its error
/// fixed point toward 0.5 regardless of rate (the very weakness on "cyclic
/// FFs" the paper exploits), which breaks monotonicity and MC agreement.
fn arb_comb_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..5, 1usize..25, any::<u64>()).prop_map(|(n_pi, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("comb");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                aig.add_not(NodeId(next(len) as u32));
            } else {
                aig.add_and(NodeId(next(len) as u32), NodeId(next(len) as u32));
            }
        }
        let len = aig.len();
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn analytical_errors_are_probabilities(aig in arb_seq_aig(), rate in 0.0f64..0.2) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let r = analyze(&aig, &w, &opts(rate));
        for v in 0..aig.len() {
            prop_assert!((0.0..=1.0).contains(&r.error[v]), "error[{v}] = {}", r.error[v]);
            prop_assert!((0.0..=1.0).contains(&r.p1[v]));
        }
        prop_assert!((0.0..=1.0).contains(&r.output_reliability));
    }

    #[test]
    fn reliability_monotone_in_rate_feedforward(aig in arb_comb_aig()) {
        // Restricted to feed-forward circuits and small rates: node error
        // probabilities stay below 0.5, where XOR error composition is
        // monotone. (Proptest found genuine FF-feedback counterexamples —
        // a property of the method, documented in arb_comb_aig.)
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let lo = analyze(&aig, &w, &opts(0.0005));
        let hi = analyze(&aig, &w, &opts(0.01));
        prop_assert!(hi.output_reliability <= lo.output_reliability + 1e-9,
            "reliability must fall with the error rate: {} vs {}",
            lo.output_reliability, hi.output_reliability);
    }

    #[test]
    fn pis_are_error_free(aig in arb_seq_aig(), rate in 0.0f64..0.1) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let r = analyze(&aig, &w, &opts(rate));
        for pi in aig.pis() {
            prop_assert_eq!(r.error[pi.index()], 0.0);
        }
    }

    #[test]
    fn analytical_tracks_monte_carlo_on_feedforward(aig in arb_comb_aig()) {
        // Without feedback the independence assumption errs only at
        // reconvergent fanout, so the analytical estimate must stay within
        // a loose band of the Monte-Carlo truth.
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let rate = 0.002;
        let analytical = analyze(&aig, &w, &opts(rate));
        let mc = inject_faults(&aig, &w, &FaultOptions {
            error_rate: rate,
            patterns: 512,
            cycles_per_pattern: 40,
            seed: 7,
        });
        let gap = (analytical.output_reliability - mc.output_reliability).abs();
        prop_assert!(gap < 0.15, "gap {gap} too large: analytical {} vs MC {}",
            analytical.output_reliability, mc.output_reliability);
    }

    #[test]
    fn deterministic(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.4);
        prop_assert_eq!(analyze(&aig, &w, &opts(0.001)), analyze(&aig, &w, &opts(0.001)));
    }
}
