//! DeepSeq fine-tuning for reliability (paper Section V-B).
//!
//! The pre-trained model is fine-tuned with per-node supervision: a 2-d
//! vector of `0→1` and `1→0` error probabilities (in the `TR` head slot,
//! which has exactly that shape) and, in the `LG` slot, the node's
//! probability of being *correct* — so the fine-tuned `LG` head reads out
//! node reliability directly and the circuit-level estimate is the mean
//! over primary outputs, matching the ground-truth metric of
//! [`FaultResult::output_reliability`](deepseq_sim::FaultResult).

use deepseq_core::encoding::{initial_states, pair_targets};
use deepseq_core::{CircuitGraph, DeepSeq, TrainSample};
use deepseq_netlist::SeqAig;
use deepseq_nn::Matrix;
use deepseq_sim::{inject_faults, FaultOptions, Workload};

/// Builds a reliability fine-tuning sample by Monte-Carlo fault injection
/// (the paper's ground-truth recipe: fault-free + faulty simulation of the
/// same patterns).
pub fn reliability_sample(
    aig: &SeqAig,
    workload: &Workload,
    fault_opts: &FaultOptions,
    hidden_dim: usize,
    init_seed: u64,
) -> TrainSample {
    let faults = inject_faults(aig, workload, fault_opts);
    let tr_target = pair_targets(&faults.e01, &faults.e10);
    let lg_target = Matrix::from_fn(aig.len(), 1, |r, _| faults.node_reliability[r] as f32);
    TrainSample::from_parts(
        CircuitGraph::build(aig),
        initial_states(aig, workload, hidden_dim, init_seed),
        tr_target,
        lg_target,
    )
}

/// Per-node and circuit-level reliability predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityPrediction {
    /// Predicted `0→1` error probability per node.
    pub e01: Vec<f64>,
    /// Predicted `1→0` error probability per node.
    pub e10: Vec<f64>,
    /// Predicted `P(correct)` per node.
    pub node_reliability: Vec<f64>,
    /// Circuit reliability: mean over primary outputs of `P(correct)`.
    pub output_reliability: f64,
}

/// Runs a fine-tuned model on a circuit and derives reliability estimates.
pub fn predict_reliability(
    model: &DeepSeq,
    aig: &SeqAig,
    workload: &Workload,
    init_seed: u64,
) -> ReliabilityPrediction {
    let graph = CircuitGraph::build(aig);
    let h0 = initial_states(aig, workload, model.config().hidden_dim, init_seed);
    let preds = model.predict(&graph, &h0);
    let n = aig.len();
    let e01: Vec<f64> = (0..n).map(|r| preds.tr.get(r, 0) as f64).collect();
    let e10: Vec<f64> = (0..n).map(|r| preds.tr.get(r, 1) as f64).collect();
    let node_reliability: Vec<f64> = (0..n).map(|r| preds.lg.get(r, 0) as f64).collect();
    let outputs = aig.outputs();
    let output_reliability = if outputs.is_empty() {
        1.0
    } else {
        outputs
            .iter()
            .map(|(po, _)| node_reliability[po.index()])
            .sum::<f64>()
            / outputs.len() as f64
    };
    ReliabilityPrediction {
        e01,
        e10,
        node_reliability,
        output_reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_core::train::{train, TrainOptions};
    use deepseq_core::DeepSeqConfig;

    fn sample_circuit() -> SeqAig {
        let mut aig = SeqAig::new("s");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", false);
        let g2 = aig.add_and(q, n);
        aig.connect_ff(q, g2).unwrap();
        aig.set_output(g2, "y");
        aig
    }

    fn fault_opts() -> FaultOptions {
        FaultOptions {
            error_rate: 0.01,
            patterns: 256,
            cycles_per_pattern: 40,
            seed: 4,
        }
    }

    #[test]
    fn sample_shapes_match_heads() {
        let aig = sample_circuit();
        let s = reliability_sample(&aig, &Workload::uniform(2, 0.5), &fault_opts(), 8, 0);
        assert_eq!(s.tr_target.shape(), (6, 2));
        assert_eq!(s.lg_target.shape(), (6, 1));
        // Node reliability targets near 1 for a low error rate.
        assert!(s.lg_target.data().iter().all(|&v| v > 0.5));
    }

    #[test]
    fn prediction_bounds() {
        let aig = sample_circuit();
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        let p = predict_reliability(&model, &aig, &Workload::uniform(2, 0.5), 0);
        assert!((0.0..=1.0).contains(&p.output_reliability));
        assert!(p.e01.iter().all(|e| (0.0..=1.0).contains(e)));
        assert!(p.node_reliability.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn finetuning_improves_reliability_estimate() {
        let aig = sample_circuit();
        let w = Workload::uniform(2, 0.5);
        let gt = inject_faults(&aig, &w, &fault_opts());
        let sample = reliability_sample(&aig, &w, &fault_opts(), 8, 0);
        let mut model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        let before = predict_reliability(&model, &aig, &w, 0);
        train(
            &mut model,
            std::slice::from_ref(&sample),
            &TrainOptions {
                epochs: 25,
                lr: 5e-3,
                ..TrainOptions::default()
            },
        );
        let after = predict_reliability(&model, &aig, &w, 0);
        let err_before = (before.output_reliability - gt.output_reliability).abs();
        let err_after = (after.output_reliability - gt.output_reliability).abs();
        assert!(
            err_after < err_before,
            "reliability error {err_before} -> {err_after}"
        );
    }
}
