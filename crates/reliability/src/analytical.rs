//! Analytical reliability baseline (Jahanirad-style \[32\], SPRA family).
//!
//! Per-node error probabilities are propagated through the logic under a
//! *spatial independence* assumption. Each gate output can be wrong either
//! because propagated input errors flip it (logic masking accounted for via
//! signal probabilities) or because the gate itself suffers an intrinsic
//! transient fault (`error_rate`). Flip-flop error state is iterated to a
//! fixed point. Like the probabilistic power baseline, the method is fast
//! but degrades on correlated signals and reconvergent fanout — the paper's
//! motivation for a learned approach.

use deepseq_netlist::aig::{AigNode, SeqAig};
use deepseq_sim::Workload;

/// Options for the analytical propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalOptions {
    /// Intrinsic per-gate flip probability (paper: 0.0005).
    pub error_rate: f64,
    /// FF fixed-point iterations.
    pub max_iterations: usize,
    /// Convergence tolerance.
    pub tolerance: f64,
}

impl Default for AnalyticalOptions {
    fn default() -> Self {
        AnalyticalOptions {
            error_rate: 0.0005,
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

/// Result of the analytical analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalResult {
    /// Per-node signal probability (independence-propagated).
    pub p1: Vec<f64>,
    /// Per-node error probability `P(faulty ≠ correct)`.
    pub error: Vec<f64>,
    /// Circuit reliability: mean over primary outputs of `1 − error`.
    pub output_reliability: f64,
}

/// Runs the analytical reliability analysis.
pub fn analyze(aig: &SeqAig, workload: &Workload, opts: &AnalyticalOptions) -> AnalyticalResult {
    let n = aig.len();
    let mut p1 = vec![0.5f64; n];
    let mut err = vec![0.0f64; n];
    let eps = opts.error_rate.clamp(0.0, 1.0);

    let pis = aig.pis();
    for (i, &pi) in pis.iter().enumerate() {
        p1[pi.index()] = workload.p1(i).clamp(0.0, 1.0);
        err[pi.index()] = 0.0; // inputs assumed correct
    }
    let ffs = aig.ffs();
    for &ff in &ffs {
        if let AigNode::Ff { init, .. } = aig.node(ff) {
            p1[ff.index()] = if *init { 1.0 } else { 0.0 };
        }
    }

    for _ in 0..opts.max_iterations {
        for (id, node) in aig.iter() {
            match *node {
                AigNode::And(a, b) => {
                    let (pa, pb) = (p1[a.index()], p1[b.index()]);
                    let (ea, eb) = (err[a.index()], err[b.index()]);
                    p1[id.index()] = pa * pb;
                    // Propagated error by case analysis over golden values.
                    let prop = pa * pb * (1.0 - (1.0 - ea) * (1.0 - eb))
                        + pa * (1.0 - pb) * (1.0 - ea) * eb
                        + (1.0 - pa) * pb * ea * (1.0 - eb)
                        + (1.0 - pa) * (1.0 - pb) * ea * eb;
                    err[id.index()] = xor_prob(prop, eps);
                }
                AigNode::Not(a) => {
                    p1[id.index()] = 1.0 - p1[a.index()];
                    err[id.index()] = xor_prob(err[a.index()], eps);
                }
                AigNode::Pi | AigNode::Ff { .. } => {}
            }
        }
        let mut delta: f64 = 0.0;
        for &ff in &ffs {
            let d = aig.ff_fanin(ff).expect("validated AIG");
            let new_p = p1[d.index()];
            // FFs are fault sites too: intrinsic flip at capture.
            let new_e = xor_prob(err[d.index()], eps);
            delta = delta
                .max((p1[ff.index()] - new_p).abs())
                .max((err[ff.index()] - new_e).abs());
            p1[ff.index()] = new_p;
            err[ff.index()] = new_e;
        }
        if delta < opts.tolerance {
            break;
        }
    }

    let outputs = aig.outputs();
    let output_reliability = if outputs.is_empty() {
        1.0
    } else {
        outputs
            .iter()
            .map(|(po, _)| 1.0 - err[po.index()])
            .sum::<f64>()
            / outputs.len() as f64
    };
    AnalyticalResult {
        p1,
        error: err,
        output_reliability,
    }
}

/// Probability that exactly one of two independent error events occurs
/// (errors cancel when both fire).
fn xor_prob(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::{inject_faults, FaultOptions};

    fn opts(rate: f64) -> AnalyticalOptions {
        AnalyticalOptions {
            error_rate: rate,
            ..AnalyticalOptions::default()
        }
    }

    fn pipeline() -> SeqAig {
        let mut aig = SeqAig::new("p");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, g).unwrap();
        let n = aig.add_not(q);
        aig.set_output(n, "y");
        aig
    }

    #[test]
    fn zero_rate_is_fully_reliable() {
        let aig = pipeline();
        let r = analyze(&aig, &Workload::uniform(2, 0.5), &opts(0.0));
        assert_eq!(r.output_reliability, 1.0);
        assert!(r.error.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn reliability_decreases_with_rate() {
        let aig = pipeline();
        let lo = analyze(&aig, &Workload::uniform(2, 0.5), &opts(0.0005));
        let hi = analyze(&aig, &Workload::uniform(2, 0.5), &opts(0.01));
        assert!(lo.output_reliability > hi.output_reliability);
        assert!(lo.output_reliability < 1.0);
    }

    #[test]
    fn error_grows_with_depth() {
        // A chain of inverters accumulates intrinsic faults.
        let mut aig = SeqAig::new("chain");
        let a = aig.add_pi("a");
        let mut prev = a;
        let mut nodes = Vec::new();
        for _ in 0..10 {
            prev = aig.add_not(prev);
            nodes.push(prev);
        }
        aig.set_output(prev, "y");
        let r = analyze(&aig, &Workload::uniform(1, 0.5), &opts(0.001));
        assert!(r.error[nodes[9].index()] > r.error[nodes[0].index()]);
    }

    #[test]
    fn close_to_monte_carlo_on_simple_circuit() {
        // On a shallow uncorrelated circuit the analytical method should be
        // within ~1 percentage point of Monte-Carlo ground truth.
        let aig = pipeline();
        let w = Workload::uniform(2, 0.5);
        let analytical = analyze(&aig, &w, &opts(0.005));
        let mc = inject_faults(
            &aig,
            &w,
            &FaultOptions {
                error_rate: 0.005,
                patterns: 2048,
                cycles_per_pattern: 50,
                seed: 1,
            },
        );
        assert!(
            (analytical.output_reliability - mc.output_reliability).abs() < 0.01,
            "analytical {} vs MC {}",
            analytical.output_reliability,
            mc.output_reliability
        );
    }

    #[test]
    fn reconvergence_biases_the_method() {
        // y = AND(q, NOT q) is constant-0 and immune to single input errors
        // flowing down both branches (they cancel); independence assumes
        // they don't. The analytical result must differ from Monte Carlo,
        // demonstrating the weakness the paper exploits.
        let mut aig = SeqAig::new("rc");
        let a = aig.add_pi("a");
        let q = aig.add_ff("q", false);
        aig.connect_ff(q, a).unwrap();
        let nq = aig.add_not(q);
        let g = aig.add_and(q, nq);
        aig.set_output(g, "y");
        let w = Workload::uniform(1, 0.5);
        let rate = 0.02;
        let analytical = analyze(&aig, &w, &opts(rate));
        let mc = inject_faults(
            &aig,
            &w,
            &FaultOptions {
                error_rate: rate,
                patterns: 4096,
                cycles_per_pattern: 50,
                seed: 2,
            },
        );
        let gap = (analytical.output_reliability - mc.output_reliability).abs();
        assert!(gap > 0.005, "expected reconvergence bias, gap {gap}");
    }

    #[test]
    fn xor_prob_properties() {
        assert_eq!(xor_prob(0.0, 0.0), 0.0);
        assert!((xor_prob(0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!((xor_prob(1.0, 1.0)).abs() < 1e-12); // double error cancels
    }
}
