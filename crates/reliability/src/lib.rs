//! Reliability analysis — downstream task 2 of the DeepSeq paper
//! (Section V-B, Table VII).
//!
//! Three estimators of circuit reliability under transient faults are
//! compared:
//!
//! 1. **GT** — Monte-Carlo fault injection
//!    ([`deepseq_sim::inject_faults`]): fault-free and faulty simulation of
//!    the same patterns (paper: 1 000 patterns × 100 cycles, 0.05 % error
//!    rate);
//! 2. **Analytical** — an SPRA-style propagation baseline \[32\]
//!    ([`analytical`]);
//! 3. **DeepSeq** — the pre-trained model fine-tuned with per-node
//!    `0→1`/`1→0` error probabilities ([`finetune`]).
//!
//! The circuit-level metric is the mean over primary outputs of the
//! probability that the output is correct.
//!
//! # Example
//!
//! ```
//! use deepseq_netlist::SeqAig;
//! use deepseq_reliability::{analyze, AnalyticalOptions};
//! use deepseq_sim::Workload;
//!
//! let mut aig = SeqAig::new("demo");
//! let a = aig.add_pi("a");
//! let n = aig.add_not(a);
//! aig.set_output(n, "y");
//! let r = analyze(&aig, &Workload::uniform(1, 0.5), &AnalyticalOptions::default());
//! assert!(r.output_reliability > 0.99 && r.output_reliability < 1.0);
//! ```

#![warn(missing_docs)]

pub mod analytical;
pub mod finetune;

pub use analytical::{analyze, AnalyticalOptions, AnalyticalResult};
pub use finetune::{predict_reliability, reliability_sample, ReliabilityPrediction};
