//! Floating-point comparison primitives for the two-mode numerics
//! contract.
//!
//! Bitwise mode needs no tooling — `assert_eq!` is the whole contract.
//! Fast mode ([`Kernel::Simd`](crate::Kernel::Simd)) promises *bounded*
//! divergence from the reference kernels, and these are the primitives
//! the property suites (and serve-side equivalence tests) state those
//! bounds with: relative error against a reference, and ULP distance —
//! "how many representable floats apart" — which is the right unit for
//! "almost the same rounding". The shared test harness in
//! `crates/nn/tests/util` wraps these in assertion helpers; serve/core
//! suites use them directly.

/// Distance between two `f32`s in units-in-the-last-place: the number of
/// representable values strictly between them (0 when bitwise-equal, and
/// also 0 for `+0.0` vs `-0.0`, which are numerically identical).
/// `u64::MAX` if either value is NaN — NaN is never "close" to anything.
///
/// Works across the zero crossing by mapping the IEEE-754 bit patterns
/// onto a monotonic signed line first.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Order-preserving map of f32 onto i64: negatives mirror below zero.
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7FFF_FFFF) as i64)
        } else {
            bits as i64
        }
    }
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// The largest [`ulp_distance`] over two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_ulp_distance(a: &[f32], b: &[f32]) -> u64 {
    assert_eq!(a.len(), b.len(), "max_ulp_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_distance(x, y))
        .max()
        .unwrap_or(0)
}

/// Relative error of `got` against `want`, with the denominator clamped
/// to at least 1 so tiny references don't blow the ratio up:
/// `|got − want| / max(1, |want|)`. NaN propagates (and therefore fails
/// any `<= eps` comparison).
pub fn rel_err(got: f32, want: f32) -> f32 {
    (got - want).abs() / want.abs().max(1.0)
}

/// The largest [`rel_err`] over two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_rel_err(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len(), "max_rel_err length mismatch");
    got.iter()
        .zip(want)
        .map(|(&g, &w)| rel_err(g, w))
        .fold(0.0, f32::max)
}

/// Is every element of `got` within relative error `eps` of `want`
/// (clamped denominator, see [`rel_err`])? `Err` carries the first
/// offending index with both values — ready to bubble into a proptest or
/// assertion message.
// `!(err <= eps)` rather than `err > eps`: NaN must fail the comparison.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn close_rel(got: &[f32], want: &[f32], eps: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "length mismatch: got {} vs want {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let err = rel_err(g, w);
        if !(err <= eps) {
            return Err(format!(
                "element {i}: got {g:e}, want {w:e} (rel err {err:e} > {eps:e})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(
            ulp_distance(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)),
            1
        );
        // Crossing zero: one step either side of ±0.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(1.0, f32::NAN), u64::MAX);
    }

    #[test]
    fn rel_err_clamps_denominator() {
        assert_eq!(rel_err(1.0, 1.0), 0.0);
        assert!((rel_err(1.1, 1.0) - 0.1).abs() < 1e-6);
        // |want| < 1 → absolute error.
        assert_eq!(rel_err(0.001, 0.0), 0.001);
        assert!((rel_err(101.0, 100.0) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn close_rel_reports_first_offender() {
        assert!(close_rel(&[1.0, 2.0], &[1.0, 2.0], 0.0).is_ok());
        assert!(close_rel(&[1.0], &[1.0, 2.0], 0.5).is_err());
        let err = close_rel(&[1.0, 9.0], &[1.0, 2.0], 0.1).unwrap_err();
        assert!(err.contains("element 1"), "{err}");
        // NaN never passes.
        assert!(close_rel(&[f32::NAN], &[1.0], 1e9).is_err());
    }

    #[test]
    fn max_helpers_scan_whole_slices() {
        assert_eq!(max_ulp_distance(&[], &[]), 0);
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, f32::from_bits(2.0f32.to_bits() + 3), 3.0];
        assert_eq!(max_ulp_distance(&a, &b), 3);
        assert!((max_rel_err(&[1.0, 2.2], &[1.0, 2.0]) - 0.1).abs() < 1e-6);
    }
}
