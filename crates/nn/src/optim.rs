//! Optimizers. The paper trains every model with ADAM at learning rate
//! `1e-4` (Section IV-A3); [`Adam`] implements the standard bias-corrected
//! variant, with optional global-norm gradient clipping.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamId, Params};

/// The ADAM optimizer (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip_norm: Option<f32>,
    m: HashMap<ParamId, Matrix>,
    v: HashMap<ParamId, Matrix>,
    t: u32,
}

impl Adam {
    /// ADAM with the usual defaults (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            m: HashMap::new(),
            v: HashMap::new(),
            t: 0,
        }
    }

    /// Enables global-norm gradient clipping.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (e.g. for fine-tuning schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// Applies one update from `grads` to `params`. Parameters without
    /// gradients are untouched.
    pub fn step(&mut self, params: &mut Params, grads: &GradStore) {
        let mut grads_scale = 1.0f32;
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.global_norm();
            if norm > max_norm && norm > 0.0 {
                grads_scale = max_norm / norm;
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let Some(grad) = grads.get(id) else { continue };
            let (rows, cols) = params.get(id).shape();
            let m = self
                .m
                .entry(id)
                .or_insert_with(|| Matrix::zeros(rows, cols));
            let v = self
                .v
                .entry(id)
                .or_insert_with(|| Matrix::zeros(rows, cols));
            let value = params.get_mut(id);
            for i in 0..rows * cols {
                let g = grad.data()[i] * grads_scale;
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes |w - 3| from w = 0; ADAM must converge close to 3.
    #[test]
    fn adam_converges_on_scalar_l1() {
        let mut params = Params::new();
        let w = params.register("w", Matrix::zeros(1, 1));
        let target = Matrix::full(1, 1, 3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let loss = tape.l1_loss(wv, &target);
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        let final_w = params.get(w).get(0, 0);
        assert!((final_w - 3.0).abs() < 0.2, "w = {final_w}");
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn adam_fits_linear_regression() {
        // y = x * [2, -1]^T; fit with L1.
        let mut params = Params::new();
        let w = params.register("w", Matrix::zeros(2, 1));
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
        let y = Matrix::from_rows(&[&[2.0], &[-1.0], &[1.0], &[3.0]]);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let wv = tape.param(&params, w);
            let pred = tape.matmul(xv, wv);
            let loss = tape.l1_loss(pred, &y);
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        assert!((params.get(w).get(0, 0) - 2.0).abs() < 0.15);
        assert!((params.get(w).get(1, 0) + 1.0).abs() < 0.15);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut params = Params::new();
        let w = params.register("w", Matrix::zeros(1, 1));
        let mut grads = GradStore::new();
        grads.accumulate(w, &Matrix::full(1, 1, 1e6));
        let mut opt = Adam::new(0.1).with_clip_norm(1.0);
        opt.step(&mut params, &grads);
        // First ADAM step magnitude is bounded by lr regardless, but the
        // clipped gradient also keeps moments sane.
        assert!(params.get(w).get(0, 0).abs() <= 0.11);
    }

    #[test]
    fn untouched_params_stay_put() {
        let mut params = Params::new();
        let a = params.register("a", Matrix::full(1, 1, 7.0));
        let b = params.register("b", Matrix::full(1, 1, 9.0));
        let mut grads = GradStore::new();
        grads.accumulate(a, &Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut params, &grads);
        assert_ne!(params.get(a).get(0, 0), 7.0);
        assert_eq!(params.get(b).get(0, 0), 9.0);
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.001);
        assert_eq!(opt.lr(), 0.001);
    }
}
