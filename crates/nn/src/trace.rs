//! Lock-cheap span tracing for whole-stack profiles.
//!
//! Every hot stage of the system — queue wait at the HTTP edge, cache
//! lookups, per-level chunks inside the recurrence, GEMM dispatch,
//! response serialization, socket writes, training steps — can record a
//! [`SpanRecord`] into a thread-local ring buffer. Recording is **off by
//! default** and costs one relaxed atomic load per would-be span when
//! disabled: no clock reads, no allocation, no locks. When enabled (via
//! the `DEEPSEQ_TRACE` environment variable or [`set_enabled`]) the spans
//! are bitwise-neutral to every computation — they only observe the
//! monotonic clock around existing work.
//!
//! Spans carry a *trace id* (a per-request id minted at the HTTP edge, or
//! zero for work outside any request). The current trace id lives in
//! thread-local storage and is forwarded across [`crate::pool::Pool`]
//! task boundaries, so a request's spans are collectible even when its
//! levels fan out across workers.
//!
//! Export surfaces:
//! - [`collect`] returns raw records for one trace (the serve crate's
//!   `GET /debug/trace` renders them as a span tree),
//! - [`chrome_trace_json`] renders everything recorded so far in
//!   chrome://tracing "trace event" format,
//! - [`stage_stats`] aggregates per-stage latency histograms that feed
//!   the `deepseq_stage_seconds` Prometheus family — the stats are
//!   *always* queryable (all zeros when tracing is off), so the metrics
//!   contract does not depend on the tracing switch.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The stage of the pipeline a span measures.
///
/// The discriminants are stable indices into [`SpanKind::ALL`]; new kinds
/// append at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole `/v1/embed` request, parse to socket flush.
    Request = 0,
    /// Request body parse + validation (AIGER → graph inputs).
    Parse = 1,
    /// Time blocked in the admission gate before a compute slot freed.
    QueueWait = 2,
    /// Embedding-cache probe (hit or miss) under the cache lock.
    CacheLookup = 3,
    /// One full forward pass of the inference model.
    Forward = 4,
    /// One node-range chunk of one level batch (the pool fan-out unit).
    LevelChunk = 5,
    /// One GEMM dispatch; detail packs the `m×k×n` shape.
    Gemm = 6,
    /// Regressor-head evaluation after the recurrence.
    Head = 7,
    /// Response-body JSON serialization.
    Serialize = 8,
    /// Writing the response bytes to the client socket.
    SocketWrite = 9,
    /// One training epoch inside `train_on`.
    TrainEpoch = 10,
    /// One optimizer step (a group of sample passes + Adam update).
    TrainStep = 11,
}

impl SpanKind {
    /// Every kind, in discriminant order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Request,
        SpanKind::Parse,
        SpanKind::QueueWait,
        SpanKind::CacheLookup,
        SpanKind::Forward,
        SpanKind::LevelChunk,
        SpanKind::Gemm,
        SpanKind::Head,
        SpanKind::Serialize,
        SpanKind::SocketWrite,
        SpanKind::TrainEpoch,
        SpanKind::TrainStep,
    ];

    /// Stable lowercase name used in JSON exports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Parse => "parse",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Forward => "forward",
            SpanKind::LevelChunk => "level_chunk",
            SpanKind::Gemm => "gemm",
            SpanKind::Head => "head",
            SpanKind::Serialize => "serialize",
            SpanKind::SocketWrite => "socket_write",
            SpanKind::TrainEpoch => "train_epoch",
            SpanKind::TrainStep => "train_step",
        }
    }

    /// Index into [`SpanKind::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One completed span. `Copy` and fixed-size so ring buffers never chase
/// pointers.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Trace (request) id the span belongs to; 0 = outside any request.
    pub trace: u64,
    /// Pipeline stage.
    pub kind: SpanKind,
    /// Kind-specific payload (GEMM shape, chunk width, epoch index, …).
    pub detail: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread's registration number (stable per thread).
    pub thread: u64,
}

// ---------------------------------------------------------------------------
// Enable state
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static ENV_OUTPUT: OnceLock<Option<String>> = OnceLock::new();

#[cold]
fn init_slow() -> bool {
    // First caller resolves DEEPSEQ_TRACE; racing callers may both run
    // this, but they compute the same answer from the same environment.
    let value = std::env::var("DEEPSEQ_TRACE").unwrap_or_default();
    let (on, path) = match value.trim() {
        "" | "0" | "false" | "off" => (false, None),
        "1" | "true" | "on" => (true, None),
        path => (true, Some(path.to_string())),
    };
    let _ = ENV_OUTPUT.set(path);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Is span recording on? One relaxed load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_slow(),
    }
}

/// Force recording on or off, overriding `DEEPSEQ_TRACE` (used by the
/// serve CLI's `--trace-out` and by tests).
pub fn set_enabled(on: bool) {
    let _ = ENV_OUTPUT.set(None); // keep env parsing from racing later
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Output path carried by `DEEPSEQ_TRACE` when its value is a file path
/// (any value other than a plain on/off token).
pub fn env_output_path() -> Option<String> {
    enabled(); // ensure the env var has been parsed
    ENV_OUTPUT.get().cloned().flatten()
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Thread-local ring buffers + global registry
// ---------------------------------------------------------------------------

/// Per-thread span capacity. Oldest records are overwritten when full;
/// [`dropped_spans`] counts the overwrites.
const RING_CAPACITY: usize = 32_768;

struct Ring {
    records: Vec<SpanRecord>,
    /// Overwrite cursor once `records` is full (points at the oldest).
    head: usize,
    dropped: u64,
}

struct ThreadBuf {
    thread: u64,
    ring: Mutex<Ring>,
}

impl ThreadBuf {
    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.records.len() < RING_CAPACITY {
            ring.records.push(record);
        } else {
            let at = ring.head;
            ring.records[at] = record;
            ring.head = (at + 1) % RING_CAPACITY;
            ring.dropped += 1;
        }
    }
}

static REGISTRY: Mutex<Vec<std::sync::Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL_BUF: OnceCell<std::sync::Arc<ThreadBuf>> = const { OnceCell::new() };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

fn push_with_thread(mut record: SpanRecord) {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = std::sync::Arc::new(ThreadBuf {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring {
                    records: Vec::with_capacity(RING_CAPACITY.min(1024)),
                    head: 0,
                    dropped: 0,
                }),
            });
            REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(std::sync::Arc::clone(&buf));
            buf
        });
        record.thread = buf.thread;
        buf.push(record);
    });
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh process-unique trace id (never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's current trace id (0 outside any traced request).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard restoring the previous trace id on drop; see [`scope`].
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|cell| cell.set(self.prev));
    }
}

/// Make `trace` the calling thread's current trace id until the returned
/// guard drops. Nested scopes restore in LIFO order.
pub fn scope(trace: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|cell| cell.replace(trace));
    TraceScope { prev }
}

// ---------------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------------

/// In-flight span; records itself (ring buffer + stage histogram) on drop.
/// Inert — a single bool check on drop — when tracing was disabled at
/// construction.
pub struct Span {
    kind: SpanKind,
    detail: u64,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// Attach or replace the kind-specific detail payload.
    pub fn set_detail(&mut self, detail: u64) {
        self.detail = detail;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        let record = SpanRecord {
            trace: current_trace(),
            kind: self.kind,
            detail: self.detail,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            thread: 0, // filled by the ring below
        };
        observe_stage(self.kind, record.dur_ns);
        push_with_thread(record);
    }
}

/// Start a span of `kind`. Returns an inert guard when tracing is off.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    span_with(kind, 0)
}

/// Start a span of `kind` carrying a detail payload.
#[inline]
pub fn span_with(kind: SpanKind, detail: u64) -> Span {
    if !enabled() {
        return Span {
            kind,
            detail,
            start_ns: 0,
            armed: false,
        };
    }
    Span {
        kind,
        detail,
        start_ns: now_ns(),
        armed: true,
    }
}

/// Pack a GEMM shape into a span detail (`m`, `k`, `n` each capped at
/// 2²⁰−1; serving shapes are far smaller). Bits 60–63 are left free for
/// the kernel tag of [`pack_gemm`].
pub fn pack_dims(m: usize, k: usize, n: usize) -> u64 {
    const MASK: u64 = (1 << 20) - 1;
    ((m as u64 & MASK) << 40) | ((k as u64 & MASK) << 20) | (n as u64 & MASK)
}

/// Inverse of [`pack_dims`] (the kernel-tag bits of [`pack_gemm`] details
/// are ignored).
pub fn unpack_dims(detail: u64) -> (usize, usize, usize) {
    const MASK: u64 = (1 << 20) - 1;
    (
        ((detail >> 40) & MASK) as usize,
        ((detail >> 20) & MASK) as usize,
        (detail & MASK) as usize,
    )
}

/// Pack a GEMM shape *and* the concrete kernel that computed it (as a
/// [`kernel_tag_name`] tag in the four bits [`pack_dims`] leaves free), so
/// `/debug/trace` can tell simd work from scalar work per span.
pub fn pack_gemm(m: usize, k: usize, n: usize, kernel_tag: u8) -> u64 {
    pack_dims(m, k, n) | ((kernel_tag as u64 & 0xF) << 60)
}

/// The kernel tag carried by a [`pack_gemm`] detail (0 on details packed
/// by plain [`pack_dims`], i.e. "kernel unknown").
pub fn unpack_kernel_tag(detail: u64) -> u8 {
    ((detail >> 60) & 0xF) as u8
}

/// The kernel name a [`pack_gemm`] tag stands for; `None` for the
/// untagged value 0 and anything out of range. Tags are assigned by
/// `Kernel::trace_tag` in [`crate::kernels`].
pub fn kernel_tag_name(tag: u8) -> Option<&'static str> {
    match tag {
        1 => Some("naive"),
        2 => Some("blocked"),
        3 => Some("packed"),
        4 => Some("simd"),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// Snapshot the records of one trace across every thread's ring buffer,
/// sorted by start time (ties: longer span first, so parents precede
/// children). `trace == 0` returns every record.
pub fn collect(trace: u64) -> Vec<SpanRecord> {
    let buffers: Vec<_> = REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut out = Vec::new();
    for buf in buffers {
        let ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(
            ring.records
                .iter()
                .filter(|r| trace == 0 || r.trace == trace)
                .copied(),
        );
    }
    out.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.thread.cmp(&b.thread))
    });
    out
}

/// Total spans overwritten in full ring buffers since process start.
pub fn dropped_spans() -> u64 {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|buf| buf.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

// ---------------------------------------------------------------------------
// Stage histograms
// ---------------------------------------------------------------------------

/// Histogram bucket upper bounds for stage durations, in nanoseconds
/// (1 µs … 5 s; an implicit +Inf bucket follows).
pub const STAGE_BUCKET_BOUNDS_NS: [u64; 14] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

struct StageCell {
    buckets: [AtomicU64; STAGE_BUCKET_BOUNDS_NS.len()],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const STAGE_ZERO: StageCell = StageCell {
    buckets: [ZERO; STAGE_BUCKET_BOUNDS_NS.len()],
    overflow: ZERO,
    count: ZERO,
    sum_ns: ZERO,
};

static STAGES: [StageCell; SpanKind::ALL.len()] = [STAGE_ZERO; SpanKind::ALL.len()];

fn observe_stage(kind: SpanKind, dur_ns: u64) {
    let cell = &STAGES[kind.index()];
    match STAGE_BUCKET_BOUNDS_NS.iter().position(|&b| dur_ns <= b) {
        Some(i) => cell.buckets[i].fetch_add(1, Ordering::Relaxed),
        None => cell.overflow.fetch_add(1, Ordering::Relaxed),
    };
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum_ns.fetch_add(dur_ns, Ordering::Relaxed);
}

/// Aggregated duration histogram for one [`SpanKind`].
#[derive(Clone, Debug)]
pub struct StageStats {
    /// The stage.
    pub kind: SpanKind,
    /// Per-bucket (non-cumulative) counts, aligned with
    /// [`STAGE_BUCKET_BOUNDS_NS`].
    pub buckets: [u64; STAGE_BUCKET_BOUNDS_NS.len()],
    /// Spans above the last finite bound.
    pub overflow: u64,
    /// Total spans observed.
    pub count: u64,
    /// Total duration observed, nanoseconds.
    pub sum_ns: u64,
}

impl StageStats {
    /// Approximate quantile (`q` in `[0, 1]`) in **seconds**, linearly
    /// interpolated within the containing bucket. Zero when empty; the
    /// last finite bound when the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut lower = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let upper = STAGE_BUCKET_BOUNDS_NS[i];
            if seen + n >= target {
                let into = (target - seen) as f64 / n.max(1) as f64;
                let ns = lower as f64 + into * (upper - lower) as f64;
                return ns / 1e9;
            }
            seen += n;
            lower = upper;
        }
        *STAGE_BUCKET_BOUNDS_NS.last().expect("non-empty bounds") as f64 / 1e9
    }
}

/// Snapshot every stage histogram (one entry per [`SpanKind::ALL`] member,
/// all zeros for stages never observed — presence is unconditional).
pub fn stage_stats() -> Vec<StageStats> {
    SpanKind::ALL
        .iter()
        .map(|&kind| {
            let cell = &STAGES[kind.index()];
            let mut buckets = [0u64; STAGE_BUCKET_BOUNDS_NS.len()];
            for (out, b) in buckets.iter_mut().zip(cell.buckets.iter()) {
                *out = b.load(Ordering::Relaxed);
            }
            StageStats {
                kind,
                buckets,
                overflow: cell.overflow.load(Ordering::Relaxed),
                count: cell.count.load(Ordering::Relaxed),
                sum_ns: cell.sum_ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// chrome://tracing export
// ---------------------------------------------------------------------------

/// Render every recorded span as a chrome://tracing "trace event" JSON
/// document (`{"traceEvents": [...]}` with `"X"` complete events and
/// `"M"` thread-name metadata). Load it at chrome://tracing or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let records = collect(0);
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut out = String::with_capacity(records.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{thread},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"deepseq-{thread}\"}}}}"
        ));
    }
    for r in &records {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = r.start_ns as f64 / 1e3;
        let dur_us = r.dur_ns as f64 / 1e3;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
             \"name\":\"{}\",\"args\":{{\"trace\":{},\"detail\":{}}}}}",
            r.thread,
            ts_us,
            dur_us,
            r.kind.name(),
            r.trace,
            r.detail
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests here share one process with the rest of the `nn` unit
    // tests; they enable tracing globally (bitwise-neutral, so only the
    // other tests' speed is affected) and always filter on their own
    // minted trace ids.

    #[test]
    fn disabled_spans_record_nothing() {
        // Must run before anything enables tracing in this process to be
        // meaningful, but is correct either way: an unarmed span never
        // records.
        let span = Span {
            kind: SpanKind::Gemm,
            detail: 0,
            start_ns: 0,
            armed: false,
        };
        let trace = next_trace_id();
        let _scope = scope(trace);
        drop(span);
        assert!(collect(trace).is_empty());
    }

    #[test]
    fn spans_record_and_collect_by_trace() {
        set_enabled(true);
        let trace = next_trace_id();
        {
            let _scope = scope(trace);
            let _outer = span(SpanKind::Request);
            std::thread::sleep(std::time::Duration::from_micros(200));
            {
                let _inner = span_with(SpanKind::Gemm, pack_dims(3, 4, 5));
            }
        }
        let records = collect(trace);
        assert_eq!(records.len(), 2, "{records:?}");
        // Sorted parent-first: request starts first (ties broken longest
        // first).
        assert_eq!(records[0].kind, SpanKind::Request);
        assert_eq!(records[1].kind, SpanKind::Gemm);
        assert_eq!(unpack_dims(records[1].detail), (3, 4, 5));
        assert!(records[0].dur_ns >= records[1].dur_ns);
        assert!(records[0].start_ns <= records[1].start_ns);
    }

    #[test]
    fn scope_nests_and_restores() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_eq!(current_trace(), 0);
        {
            let _outer = scope(a);
            assert_eq!(current_trace(), a);
            {
                let _inner = scope(b);
                assert_eq!(current_trace(), b);
            }
            assert_eq!(current_trace(), a);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn stage_stats_cover_all_kinds_and_quantiles_interpolate() {
        let stats = stage_stats();
        assert_eq!(stats.len(), SpanKind::ALL.len());
        for (stat, kind) in stats.iter().zip(SpanKind::ALL) {
            assert_eq!(stat.kind, kind);
            let spread: u64 = stat.buckets.iter().sum::<u64>() + stat.overflow;
            assert_eq!(spread, stat.count, "bucket sum != count for {kind:?}");
        }

        let mut synthetic = StageStats {
            kind: SpanKind::Gemm,
            buckets: [0; STAGE_BUCKET_BOUNDS_NS.len()],
            overflow: 0,
            count: 0,
            sum_ns: 0,
        };
        assert_eq!(synthetic.quantile(0.5), 0.0);
        synthetic.buckets[0] = 100; // all ≤ 1 µs
        synthetic.count = 100;
        let p50 = synthetic.quantile(0.5);
        assert!(p50 > 0.0 && p50 <= 1e-6, "p50 {p50}");
        synthetic.overflow = 1_000_000;
        synthetic.count += 1_000_000;
        assert_eq!(synthetic.quantile(0.99), 5.0);
    }

    #[test]
    fn chrome_export_is_wellformed_and_contains_recorded_span() {
        set_enabled(true);
        let trace = next_trace_id();
        {
            let _scope = scope(trace);
            let _span = span(SpanKind::Serialize);
        }
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains(&format!("\"trace\":{trace}")));
        assert!(json.contains("\"name\":\"serialize\""));
        // Balanced braces — a cheap structural check without a parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn pack_dims_roundtrip() {
        assert_eq!(unpack_dims(pack_dims(0, 0, 0)), (0, 0, 0));
        assert_eq!(unpack_dims(pack_dims(1, 2, 3)), (1, 2, 3));
        assert_eq!(
            unpack_dims(pack_dims(1 << 19, 1234, (1 << 20) - 1)),
            (1 << 19, 1234, (1 << 20) - 1)
        );
    }

    #[test]
    fn kernel_tags_ride_alongside_dims() {
        for tag in 0..=4u8 {
            let detail = pack_gemm(7, 1234, (1 << 20) - 1, tag);
            assert_eq!(unpack_dims(detail), (7, 1234, (1 << 20) - 1));
            assert_eq!(unpack_kernel_tag(detail), tag);
        }
        // Plain pack_dims details are untagged.
        assert_eq!(unpack_kernel_tag(pack_dims(3, 4, 5)), 0);
        assert_eq!(kernel_tag_name(0), None);
        assert_eq!(kernel_tag_name(4), Some("simd"));
        assert_eq!(kernel_tag_name(15), None);
    }
}
